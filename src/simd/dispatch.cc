#include "src/simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "src/core/status.h"
#include "src/obs/counters.h"
#include "src/simd/kernels.h"

namespace dlsys {
namespace simd {
namespace {

/// True when the running CPU can execute the given table's code. The
/// compiled-in check already happened (a missing TU returns nullptr), so
/// this is purely the runtime probe.
bool CpuCanRun(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0;
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* CompiledTable(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return GetScalarTable();
    case Isa::kAvx2:
      return GetAvx2Table();
    case Isa::kAvx512:
      return GetAvx512Table();
  }
  return nullptr;
}

const KernelTable* SupportedTable(Isa isa) {
  const KernelTable* table = CompiledTable(isa);
  return (table != nullptr && CpuCanRun(isa)) ? table : nullptr;
}

/// Resolves the startup table once: DLSYS_ISA if set (abort on an unknown
/// or unsupported request — a forced path must never silently fall back),
/// else the best table this binary+CPU pair can run.
const KernelTable* ResolveStartupTable() {
  if (const char* env = std::getenv("DLSYS_ISA");
      env != nullptr && env[0] != '\0') {
    Isa requested = Isa::kScalar;
    DLSYS_CHECK(ParseIsa(env, &requested),
                "DLSYS_ISA must be scalar, avx2, or avx512");
    const KernelTable* table = SupportedTable(requested);
    DLSYS_CHECK(table != nullptr,
                "DLSYS_ISA requests an ISA this build/CPU cannot run");
    return table;
  }
  for (int i = kNumIsas - 1; i >= 0; --i) {
    if (const KernelTable* table = SupportedTable(static_cast<Isa>(i))) {
      return table;
    }
  }
  return GetScalarTable();  // unreachable: scalar is always registered
}

std::atomic<const KernelTable*>& ActiveTableCell() {
  static std::atomic<const KernelTable*> cell{ResolveStartupTable()};
  return cell;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseIsa(const char* name, Isa* out) {
  const std::string s(name != nullptr ? name : "");
  for (int i = 0; i < kNumIsas; ++i) {
    if (s == IsaName(static_cast<Isa>(i))) {
      *out = static_cast<Isa>(i);
      return true;
    }
  }
  return false;
}

bool IsaSupported(Isa isa) { return SupportedTable(isa) != nullptr; }

Isa BestSupportedIsa() {
  for (int i = kNumIsas - 1; i >= 0; --i) {
    if (IsaSupported(static_cast<Isa>(i))) return static_cast<Isa>(i);
  }
  return Isa::kScalar;
}

Isa ActiveIsa() {
  return ActiveTableCell().load(std::memory_order_acquire)->isa;
}

void SetIsa(Isa isa) {
  const KernelTable* table = SupportedTable(isa);
  DLSYS_CHECK(table != nullptr,
              "SetIsa: requested ISA not supported by this build/CPU");
  ActiveTableCell().store(table, std::memory_order_release);
}

const KernelTable& ActiveKernels() {
  return *ActiveTableCell().load(std::memory_order_acquire);
}

void CountDispatch(const KernelTable& table) {
#if DLSYS_OBS
  // One pre-resolved counter per ISA; the hot path is one sharded
  // relaxed fetch_add, same cost class as every other DLSYS_COUNTER_ADD.
  static obs::Counter* const counters[kNumIsas] = {
      obs::CounterRegistry::Global().counter("kernel.dispatch.scalar"),
      obs::CounterRegistry::Global().counter("kernel.dispatch.avx2"),
      obs::CounterRegistry::Global().counter("kernel.dispatch.avx512"),
  };
  counters[static_cast<int>(table.isa)]->Add(1);
#else
  (void)table;
#endif
}

}  // namespace simd
}  // namespace dlsys
