#ifndef DLSYS_SIMD_DISPATCH_H_
#define DLSYS_SIMD_DISPATCH_H_

#include <cstdint>

/// \file dispatch.h
/// \brief Runtime CPU-feature dispatch for the hot GEMM microkernels.
///
/// The binary carries one kernel table per instruction set — scalar
/// (always), AVX2, and AVX-512 (F+BW+VL+DQ) — each compiled in its own
/// translation unit with exactly the target flags it needs. At first use
/// the registry probes the CPU (GCC/Clang __builtin_cpu_supports) and
/// selects the best table the machine can run; every public kernel entry
/// point in src/tensor then fetches the active table and hands its range
/// functions to ParallelFor.
///
/// ## Forcing a path
///
/// - `DLSYS_ISA=scalar|avx2|avx512` (environment, read once at first
///   dispatch) forces that table; requesting an ISA the CPU or the build
///   cannot run aborts with a clear message — a forced path that silently
///   fell back would invalidate any parity or perf conclusion drawn from
///   the run.
/// - SetIsa() is the API equivalent for tests and benches; call it between
///   kernels (like RuntimeConfig::SetThreads), not inside a ParallelFor.
/// - Building with -DDLSYS_SIMD=OFF compiles the AVX translation units to
///   stubs: only the scalar table exists, and because the scalar kernels
///   are the pre-dispatch sources compiled with the same flags, that build
///   is bitwise identical to the tree before this layer existed.
///
/// ## Observability
///
/// Each dispatched kernel launch tags its trace span with the ISA-specific
/// category ("kernel.scalar" / "kernel.avx2" / "kernel.avx512") and bumps
/// the `kernel.dispatch.<isa>` counter, so an exported Perfetto trace or a
/// registry snapshot shows which microkernel actually ran.
///
/// Determinism: dispatch never changes results. fp32 kernels are bitwise
/// identical across every ISA (see src/simd/kernels.h for the contract);
/// integer kernels are exact. DLSYS_ISA is a speed knob, not a numerics
/// knob, and tests enforce that.

#ifndef DLSYS_SIMD
#define DLSYS_SIMD 1
#endif

namespace dlsys {
namespace simd {

/// \brief Instruction sets the dispatcher knows, in ascending preference.
enum class Isa : int {
  kScalar = 0,  ///< reference kernels; always available
  kAvx2 = 1,    ///< 256-bit float + vpmaddwd integer kernels
  kAvx512 = 2,  ///< 512-bit kernels (requires F+BW+VL+DQ)
};

inline constexpr int kNumIsas = 3;

/// \brief Lowercase name, e.g. "avx512"; also the DLSYS_ISA spelling.
const char* IsaName(Isa isa);

/// \brief One ISA's full set of range microkernels.
///
/// Function pointers, not virtuals: the table is selected once and the hot
/// path pays one pointer load per kernel launch (not per range). All
/// members are always non-null within a registered table.
struct KernelTable {
  Isa isa = Isa::kScalar;
  /// Trace-span category literal ("kernel.<isa>"); pointer-stable for the
  /// process lifetime as TraceSpan requires.
  const char* span_cat = "kernel.scalar";

  /// C[i0:i1, :] += A(MxK) * B(KxN) rows (C rows pre-zeroed by caller).
  void (*matmul_range)(const float* a, const float* b, float* c, int64_t i0,
                       int64_t i1, int64_t k, int64_t n) = nullptr;
  /// C[i0:i1, :] += A(KxM)^T * B(KxN) rows.
  void (*matmul_ta_range)(const float* a, const float* b, float* c,
                          int64_t i0, int64_t i1, int64_t k, int64_t m,
                          int64_t n) = nullptr;
  /// C[i0:i1, :] = A(MxK) * B(NxK)^T rows (double accumulation).
  void (*matmul_tb_range)(const float* a, const float* b, float* c,
                          int64_t i0, int64_t i1, int64_t k,
                          int64_t n) = nullptr;
  /// C[:, j0:j1) = bias + A(MxK) * B(NxK)^T columns (conv epilogue order).
  void (*conv_gemm_bias_cols)(const float* a, const float* b,
                              const float* bias, float* c, int64_t m,
                              int64_t k, int64_t n, int64_t j0,
                              int64_t j1) = nullptr;
  /// C[i0:i1, :] = A(MxK) * B(NxK)^T over int8, exact int32 accumulation.
  void (*int8_gemm_rows)(const int8_t* a, const int8_t* b, int32_t* c,
                         int64_t i0, int64_t i1, int64_t k,
                         int64_t n) = nullptr;
  /// Fused block-dequant q8 x q8 GEMM rows (see int8_gemm.h).
  void (*q8_gemm_rows)(const int8_t* a, const float* a_scales,
                       const int8_t* b, const float* b_scales, float* c,
                       int64_t i0, int64_t i1, int64_t kp,
                       int64_t n) = nullptr;
  /// Fused block-dequant q8 x q4 GEMM rows (B nibble-packed).
  void (*q4_gemm_rows)(const int8_t* a, const float* a_scales,
                       const uint8_t* b, const float* b_scales, float* c,
                       int64_t i0, int64_t i1, int64_t kp,
                       int64_t n) = nullptr;
  /// C[i0:i1, :] = act(A(MxK) * B(KxN) + bias(N)) rows (C rows pre-zeroed
  /// by caller; act = relu when relu != 0, else identity). The fused
  /// dense epilogue the graph compiler's fusion pass dispatches: the GEMM
  /// op sequence is untouched, the bias add and activation run while the
  /// rows are still cache-hot instead of as separate output passes.
  void (*matmul_bias_act_range)(const float* a, const float* b,
                                const float* bias, float* c, int64_t i0,
                                int64_t i1, int64_t k, int64_t n,
                                int relu) = nullptr;
  /// conv_gemm_bias_cols with the activation fused into the column pass
  /// (relu != 0 applies max(x, 0) to each finished output element).
  void (*conv_gemm_bias_act_cols)(const float* a, const float* b,
                                  const float* bias, float* c, int64_t m,
                                  int64_t k, int64_t n, int64_t j0,
                                  int64_t j1, int relu) = nullptr;
};

/// \brief True when \p isa is both compiled into this binary and runnable
/// on this CPU. kScalar is always true.
bool IsaSupported(Isa isa);

/// \brief Best supported ISA on this machine (the startup default unless
/// DLSYS_ISA overrides it).
Isa BestSupportedIsa();

/// \brief The currently dispatched ISA. First call resolves DLSYS_ISA,
/// else BestSupportedIsa().
Isa ActiveIsa();

/// \brief Forces \p isa for all subsequent kernel launches. Aborts
/// (DLSYS_CHECK) when unsupported — a forced path must never silently
/// fall back. Call between kernels, not inside a ParallelFor body.
void SetIsa(Isa isa);

/// \brief Parses a DLSYS_ISA spelling ("scalar"/"avx2"/"avx512") into
/// \p out; returns false on an unknown spelling.
bool ParseIsa(const char* name, Isa* out);

/// \brief The active ISA's kernel table (never null).
const KernelTable& ActiveKernels();

/// \brief Bumps kernel.dispatch.<isa> for one kernel launch. Compiled to
/// nothing with -DDLSYS_OBS=0.
void CountDispatch(const KernelTable& table);

}  // namespace simd
}  // namespace dlsys

#endif  // DLSYS_SIMD_DISPATCH_H_
