#include "src/simd/dispatch.h"
#include "src/simd/kernels.h"

/// \file kernels_avx2.cc
/// \brief AVX2 microkernels. Compiled with -mavx2 -O3 -ffp-contract=off
/// (no -mfma: the parity contract forbids contraction). Self-guarded so a
/// -DDLSYS_SIMD=OFF or non-x86 build compiles only the nullptr stub.
///
/// fp32 kernels vectorize across independent output columns and keep each
/// element's mul-then-add chain in ascending p, so they are bitwise
/// identical to the scalar reference. Integer kernels accumulate in int32
/// (associative — exact in any lane order) via sign-extend + vpmaddwd.

#if DLSYS_SIMD && (defined(__x86_64__) || defined(__i386__)) && \
    defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

namespace dlsys {
namespace simd {
namespace {

// ---------------------------------------------------------------- fp32

constexpr int64_t kMr = 4;   // C rows per register tile
constexpr int64_t kNr = 16;  // C columns per register tile (2 ymm)

void MatMulRangeAvx2(const float* a, const float* b, float* c, int64_t i0,
                     int64_t i1, int64_t k, int64_t n) {
  int64_t i = i0;
  for (; i + kMr <= i1; i += kMr) {
    const float* a0 = a + (i + 0) * k;
    const float* a1 = a + (i + 1) * k;
    const float* a2 = a + (i + 2) * k;
    const float* a3 = a + (i + 3) * k;
    int64_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
      __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
      __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
      __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = b + p * n + j;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        __m256 av = _mm256_set1_ps(a0[p]);
        c00 = _mm256_add_ps(c00, _mm256_mul_ps(av, b0));
        c01 = _mm256_add_ps(c01, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a1[p]);
        c10 = _mm256_add_ps(c10, _mm256_mul_ps(av, b0));
        c11 = _mm256_add_ps(c11, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a2[p]);
        c20 = _mm256_add_ps(c20, _mm256_mul_ps(av, b0));
        c21 = _mm256_add_ps(c21, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a3[p]);
        c30 = _mm256_add_ps(c30, _mm256_mul_ps(av, b0));
        c31 = _mm256_add_ps(c31, _mm256_mul_ps(av, b1));
      }
      float* crow = c + i * n + j;
      _mm256_storeu_ps(crow, c00);
      _mm256_storeu_ps(crow + 8, c01);
      _mm256_storeu_ps(crow + n, c10);
      _mm256_storeu_ps(crow + n + 8, c11);
      _mm256_storeu_ps(crow + 2 * n, c20);
      _mm256_storeu_ps(crow + 2 * n + 8, c21);
      _mm256_storeu_ps(crow + 3 * n, c30);
      _mm256_storeu_ps(crow + 3 * n + 8, c31);
    }
    if (j < n) {
      // Column tail: plain ascending-p loops onto the pre-zeroed C.
      for (int64_t ii = 0; ii < kMr; ++ii) {
        const float* arow = a + (i + ii) * k;
        float* crow = c + (i + ii) * n;
        for (int64_t p = 0; p < k; ++p) {
          const float av = arow[p];
          const float* brow = b + p * n;
          for (int64_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
        }
      }
    }
  }
  if (i < i1) MatMulRangeScalar(a, b, c, i, i1, k, n);
}

void MatMulTransARangeAvx2(const float* a, const float* b, float* c,
                           int64_t i0, int64_t i1, int64_t k, int64_t m,
                           int64_t n) {
  int64_t i = i0;
  for (; i + kMr <= i1; i += kMr) {
    int64_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
      __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
      __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
      __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = b + p * n + j;
        const float* acol = a + p * m + i;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        __m256 av = _mm256_set1_ps(acol[0]);
        c00 = _mm256_add_ps(c00, _mm256_mul_ps(av, b0));
        c01 = _mm256_add_ps(c01, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(acol[1]);
        c10 = _mm256_add_ps(c10, _mm256_mul_ps(av, b0));
        c11 = _mm256_add_ps(c11, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(acol[2]);
        c20 = _mm256_add_ps(c20, _mm256_mul_ps(av, b0));
        c21 = _mm256_add_ps(c21, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(acol[3]);
        c30 = _mm256_add_ps(c30, _mm256_mul_ps(av, b0));
        c31 = _mm256_add_ps(c31, _mm256_mul_ps(av, b1));
      }
      float* crow = c + i * n + j;
      _mm256_storeu_ps(crow, c00);
      _mm256_storeu_ps(crow + 8, c01);
      _mm256_storeu_ps(crow + n, c10);
      _mm256_storeu_ps(crow + n + 8, c11);
      _mm256_storeu_ps(crow + 2 * n, c20);
      _mm256_storeu_ps(crow + 2 * n + 8, c21);
      _mm256_storeu_ps(crow + 3 * n, c30);
      _mm256_storeu_ps(crow + 3 * n + 8, c31);
    }
    if (j < n) {
      for (int64_t ii = 0; ii < kMr; ++ii) {
        float* crow = c + (i + ii) * n;
        for (int64_t p = 0; p < k; ++p) {
          const float av = a[p * m + i + ii];
          const float* brow = b + p * n;
          for (int64_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
        }
      }
    }
  }
  if (i < i1) MatMulTransARangeScalar(a, b, c, i, i1, k, m, n);
}

/// Four dot products A[row] . B[j..j+3] with the scalar reference's exact
/// chain: float multiply, widen, double add, ascending p. The 4x4
/// transpose turns row-major B loads into per-p column vectors; each
/// _mm256_add_pd advances every column's chain by exactly one p.
inline void DotCols4Avx2(const float* arow, const float* b0, const float* b1,
                         const float* b2, const float* b3, int64_t k,
                         double init, float* out) {
  __m256d acc = _mm256_set1_pd(init);
  int64_t p = 0;
  for (; p + 4 <= k; p += 4) {
    __m128 r0 = _mm_loadu_ps(b0 + p);
    __m128 r1 = _mm_loadu_ps(b1 + p);
    __m128 r2 = _mm_loadu_ps(b2 + p);
    __m128 r3 = _mm_loadu_ps(b3 + p);
    _MM_TRANSPOSE4_PS(r0, r1, r2, r3);
    acc = _mm256_add_pd(
        acc, _mm256_cvtps_pd(_mm_mul_ps(_mm_set1_ps(arow[p + 0]), r0)));
    acc = _mm256_add_pd(
        acc, _mm256_cvtps_pd(_mm_mul_ps(_mm_set1_ps(arow[p + 1]), r1)));
    acc = _mm256_add_pd(
        acc, _mm256_cvtps_pd(_mm_mul_ps(_mm_set1_ps(arow[p + 2]), r2)));
    acc = _mm256_add_pd(
        acc, _mm256_cvtps_pd(_mm_mul_ps(_mm_set1_ps(arow[p + 3]), r3)));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  for (; p < k; ++p) {
    const float av = arow[p];
    s[0] += av * b0[p];
    s[1] += av * b1[p];
    s[2] += av * b2[p];
    s[3] += av * b3[p];
  }
  out[0] = static_cast<float>(s[0]);
  out[1] = static_cast<float>(s[1]);
  out[2] = static_cast<float>(s[2]);
  out[3] = static_cast<float>(s[3]);
}

void MatMulTransBRangeAvx2(const float* a, const float* b, float* c,
                           int64_t i0, int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      DotCols4Avx2(arow, b + (j + 0) * k, b + (j + 1) * k, b + (j + 2) * k,
                   b + (j + 3) * k, k, 0.0, c + i * n + j);
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      c[i * n + j] = static_cast<float>(s);
    }
  }
}

void ConvGemmBiasColsAvx2(const float* a, const float* b, const float* bias,
                          float* c, int64_t m, int64_t k, int64_t n,
                          int64_t j0, int64_t j1) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const double bias_i = static_cast<double>(bias[i]);
    int64_t j = j0;
    for (; j + 4 <= j1; j += 4) {
      DotCols4Avx2(arow, b + (j + 0) * k, b + (j + 1) * k, b + (j + 2) * k,
                   b + (j + 3) * k, k, bias_i, c + i * n + j);
    }
    for (; j < j1; ++j) {
      const float* brow = b + j * k;
      double s = bias_i;
      for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      c[i * n + j] = static_cast<float>(s);
    }
  }
}

// ------------------------------------------------------ fused epilogues
//
// GEMM body untouched; bias + optional relu applied to the stored rows.
// Store/reload of a float is the identical bit pattern, and
// _mm256_max_ps(v, 0) with zero as the SECOND operand returns the second
// operand on NaN and on the -0/+0 tie, matching the scalar
// `v > 0.0f ? v : 0.0f` exactly — so fusion stays bitwise neutral.

void MatMulBiasActRangeAvx2(const float* a, const float* b, const float* bias,
                            float* c, int64_t i0, int64_t i1, int64_t k,
                            int64_t n, int relu) {
  MatMulRangeAvx2(a, b, c, i0, i1, k, n);
  const __m256 zero = _mm256_setzero_ps();
  for (int64_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256 v = _mm256_add_ps(_mm256_loadu_ps(crow + j),
                               _mm256_loadu_ps(bias + j));
      if (relu != 0) v = _mm256_max_ps(v, zero);
      _mm256_storeu_ps(crow + j, v);
    }
    for (; j < n; ++j) {
      const float v = crow[j] + bias[j];
      crow[j] = relu != 0 ? (v > 0.0f ? v : 0.0f) : v;
    }
  }
}

void ConvGemmBiasActColsAvx2(const float* a, const float* b,
                             const float* bias, float* c, int64_t m,
                             int64_t k, int64_t n, int64_t j0, int64_t j1,
                             int relu) {
  ConvGemmBiasColsAvx2(a, b, bias, c, m, k, n, j0, j1);
  if (relu == 0) return;
  const __m256 zero = _mm256_setzero_ps();
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    int64_t j = j0;
    for (; j + 8 <= j1; j += 8) {
      _mm256_storeu_ps(crow + j,
                       _mm256_max_ps(_mm256_loadu_ps(crow + j), zero));
    }
    for (; j < j1; ++j) crow[j] = crow[j] > 0.0f ? crow[j] : 0.0f;
  }
}

// ---------------------------------------------------------------- int8

inline int32_t HorizontalSumI32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// Exact int32 dot of two int8 vectors: sign-extend to int16 and
/// vpmaddwd (products <= 127*127, pair sums fit int16 range * 2 — well
/// inside int32). Lane order differs from scalar but int32 addition is
/// associative mod 2^32, so the result is identical.
inline int32_t DotInt8Avx2(const int8_t* a, const int8_t* b, int64_t k) {
  __m256i acc = _mm256_setzero_si256();
  int64_t p = 0;
  for (; p + 32 <= k; p += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + p));
    const __m256i a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
    const __m256i a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
    const __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
    const __m256i b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
  }
  for (; p + 16 <= k; p += 16) {
    const __m256i a16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p)));
    const __m256i b16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
  }
  int32_t dot = HorizontalSumI32(acc);
  for (; p < k; ++p) {
    dot += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return dot;
}

void Int8GemmRowsAvx2(const int8_t* a, const int8_t* b, int32_t* c,
                      int64_t i0, int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* arow = a + i * k;
    for (int64_t j = 0; j < n; ++j) {
      c[i * n + j] = DotInt8Avx2(arow, b + j * k, k);
    }
  }
}

// ------------------------------------------------------- block-quantized

/// Exact int32 dot of one 32-element q8 block pair.
inline int32_t DotQ8BlockAvx2(const int8_t* a, const int8_t* b) {
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  const __m256i a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
  const __m256i a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
  const __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
  const __m256i b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
  const __m256i acc = _mm256_add_epi32(_mm256_madd_epi16(a_lo, b_lo),
                                       _mm256_madd_epi16(a_hi, b_hi));
  return HorizontalSumI32(acc);
}

void Q8GemmRowsAvx2(const int8_t* a, const float* a_scales, const int8_t* b,
                    const float* b_scales, float* c, int64_t i0, int64_t i1,
                    int64_t kp, int64_t n) {
  const int64_t nb = kp / 32;
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* arow = a + i * kp;
    const float* as = a_scales + i * nb;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* brow = b + j * kp;
      const float* bs = b_scales + j * nb;
      float sum = 0.0f;
      for (int64_t bb = 0; bb < nb; ++bb) {
        const int32_t dot = DotQ8BlockAvx2(arow + bb * 32, brow + bb * 32);
        sum += static_cast<float>(dot) * (as[bb] * bs[bb]);
      }
      c[i * n + j] = sum;
    }
  }
}

/// Exact int32 dot of a q8 activation block against a nibble-packed q4
/// weight block: byte t = element t (low nibble) and 16+t (high nibble),
/// code = q + 8.
inline int32_t DotQ4BlockAvx2(const int8_t* a, const uint8_t* b) {
  const __m128i packed = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  const __m128i mask = _mm_set1_epi8(0x0F);
  const __m128i lo = _mm_and_si128(packed, mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi16(packed, 4), mask);
  const __m256i eight = _mm256_set1_epi16(8);
  const __m256i b_lo = _mm256_sub_epi16(_mm256_cvtepu8_epi16(lo), eight);
  const __m256i b_hi = _mm256_sub_epi16(_mm256_cvtepu8_epi16(hi), eight);
  const __m256i a_lo = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(a)));
  const __m256i a_hi = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + 16)));
  const __m256i acc = _mm256_add_epi32(_mm256_madd_epi16(a_lo, b_lo),
                                       _mm256_madd_epi16(a_hi, b_hi));
  return HorizontalSumI32(acc);
}

void Q4GemmRowsAvx2(const int8_t* a, const float* a_scales, const uint8_t* b,
                    const float* b_scales, float* c, int64_t i0, int64_t i1,
                    int64_t kp, int64_t n) {
  const int64_t nb = kp / 32;
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* arow = a + i * kp;
    const float* as = a_scales + i * nb;
    for (int64_t j = 0; j < n; ++j) {
      const uint8_t* brow = b + j * (kp / 2);
      const float* bs = b_scales + j * nb;
      float sum = 0.0f;
      for (int64_t bb = 0; bb < nb; ++bb) {
        const int32_t dot = DotQ4BlockAvx2(arow + bb * 32, brow + bb * 16);
        sum += static_cast<float>(dot) * (as[bb] * bs[bb]);
      }
      c[i * n + j] = sum;
    }
  }
}

const KernelTable kAvx2Table = {
    Isa::kAvx2,
    "kernel.avx2",
    &MatMulRangeAvx2,
    &MatMulTransARangeAvx2,
    &MatMulTransBRangeAvx2,
    &ConvGemmBiasColsAvx2,
    &Int8GemmRowsAvx2,
    &Q8GemmRowsAvx2,
    &Q4GemmRowsAvx2,
    &MatMulBiasActRangeAvx2,
    &ConvGemmBiasActColsAvx2,
};

}  // namespace

const KernelTable* GetAvx2Table() { return &kAvx2Table; }

}  // namespace simd
}  // namespace dlsys

#else  // stub: SIMD off, non-x86 (NEON backend not yet written), or no AVX2

namespace dlsys {
namespace simd {
const KernelTable* GetAvx2Table() { return nullptr; }
}  // namespace simd
}  // namespace dlsys

#endif
