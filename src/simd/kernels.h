#ifndef DLSYS_SIMD_KERNELS_H_
#define DLSYS_SIMD_KERNELS_H_

#include <cstdint>

/// \file kernels.h
/// \brief Internal per-ISA microkernel declarations behind the dispatch
/// registry (src/simd/dispatch.h). Not part of the public API: callers go
/// through src/tensor/ops.h and src/tensor/int8_gemm.h, which fetch the
/// active KernelTable and hand these range kernels to ParallelFor.
///
/// ## Parity contract (the reason these signatures look the way they do)
///
/// Every kernel computes a *range* of output elements — rows [i0, i1) or
/// columns [j0, j1) — so the runtime's static partition decides only which
/// worker runs a range, never the arithmetic inside it. Within a range:
///
/// - fp32 kernels reproduce the scalar reference's per-element operation
///   sequence exactly: one float multiply then one add (or one float
///   multiply, widen, double add for the TransB/conv family) per p, in
///   ascending p. SIMD variants vectorize across *independent output
///   elements* only, never across the reduction, and are compiled with
///   -ffp-contract=off, so they are **bitwise identical** to the scalar
///   kernels — no FMA, no reassociation, no tolerance needed.
/// - integer kernels (int8, q8/q4 block) accumulate in int32, which is
///   associative: any vector order is exact, so they are bit-exact by
///   construction. The per-block float epilogue of the q8/q4 kernels
///   follows the scalar chain (ascending block index, float(dot) *
///   (a_scale * b_scale)) element-for-element.
///
/// Each ISA translation unit is compiled with exactly the target flags it
/// needs (-mavx2 / -mavx512*) and self-guards, so the binary stays safe to
/// load on any CPU: AVX code only executes after runtime detection.
/// Non-x86 builds (e.g. aarch64/NEON, currently a stub) fall back to the
/// scalar table.

namespace dlsys {
namespace simd {

struct KernelTable;

/// Scalar reference table: always available, bitwise identical to the
/// pre-dispatch kernels (same source moved verbatim, same build flags).
const KernelTable* GetScalarTable();
/// AVX2 table, or nullptr when not compiled into this binary.
const KernelTable* GetAvx2Table();
/// AVX-512 (F+BW+VL+DQ) table, or nullptr when not compiled in.
const KernelTable* GetAvx512Table();

// ------------------------------------------------------ scalar kernels
// Bodies are the pre-SIMD kernels from src/tensor/ops.cc and
// src/tensor/int8_gemm.cc, moved verbatim; see kernels_scalar.cc.

void MatMulRangeScalar(const float* a, const float* b, float* c, int64_t i0,
                       int64_t i1, int64_t k, int64_t n);
void MatMulTransARangeScalar(const float* a, const float* b, float* c,
                             int64_t i0, int64_t i1, int64_t k, int64_t m,
                             int64_t n);
void MatMulTransBRangeScalar(const float* a, const float* b, float* c,
                             int64_t i0, int64_t i1, int64_t k, int64_t n);
void ConvGemmBiasColsScalar(const float* a, const float* b, const float* bias,
                            float* c, int64_t m, int64_t k, int64_t n,
                            int64_t j0, int64_t j1);
void Int8GemmRowsScalar(const int8_t* a, const int8_t* b, int32_t* c,
                        int64_t i0, int64_t i1, int64_t k, int64_t n);
void Q8GemmRowsScalar(const int8_t* a, const float* a_scales, const int8_t* b,
                      const float* b_scales, float* c, int64_t i0, int64_t i1,
                      int64_t kp, int64_t n);
void Q4GemmRowsScalar(const int8_t* a, const float* a_scales,
                      const uint8_t* b, const float* b_scales, float* c,
                      int64_t i0, int64_t i1, int64_t kp, int64_t n);
void MatMulBiasActRangeScalar(const float* a, const float* b,
                              const float* bias, float* c, int64_t i0,
                              int64_t i1, int64_t k, int64_t n, int relu);
void ConvGemmBiasActColsScalar(const float* a, const float* b,
                               const float* bias, float* c, int64_t m,
                               int64_t k, int64_t n, int64_t j0, int64_t j1,
                               int relu);

}  // namespace simd
}  // namespace dlsys

#endif  // DLSYS_SIMD_KERNELS_H_
