#include "src/data/synthetic.h"

#include <cmath>
#include <vector>

#include "src/core/status.h"

namespace dlsys {

Dataset MakeGaussianBlobs(int64_t n, int64_t dims, int64_t classes,
                          double separation, Rng* rng) {
  DLSYS_CHECK(n > 0 && dims > 0 && classes > 1, "invalid blob config");
  // Draw one random unit-ish center per class, scaled by separation.
  std::vector<std::vector<float>> centers(static_cast<size_t>(classes));
  for (auto& c : centers) {
    c.resize(static_cast<size_t>(dims));
    for (float& v : c) {
      v = static_cast<float>(rng->Gaussian() * separation);
    }
  }
  Dataset out;
  out.x = Tensor({n, dims});
  out.y.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t cls = static_cast<int64_t>(rng->Index(classes));
    out.y[static_cast<size_t>(i)] = cls;
    const auto& c = centers[static_cast<size_t>(cls)];
    for (int64_t j = 0; j < dims; ++j) {
      out.x[i * dims + j] =
          c[static_cast<size_t>(j)] + static_cast<float>(rng->Gaussian());
    }
  }
  return out;
}

Dataset MakeTwoMoons(int64_t n, double noise, Rng* rng) {
  DLSYS_CHECK(n > 0, "invalid moon config");
  Dataset out;
  out.x = Tensor({n, 2});
  out.y.resize(static_cast<size_t>(n));
  const double pi = 3.14159265358979323846;
  for (int64_t i = 0; i < n; ++i) {
    const bool upper = rng->Bernoulli(0.5);
    const double t = rng->Uniform() * pi;
    double x, y;
    if (upper) {
      x = std::cos(t);
      y = std::sin(t);
    } else {
      x = 1.0 - std::cos(t);
      y = 0.5 - std::sin(t);
    }
    out.x[i * 2 + 0] = static_cast<float>(x + rng->Gaussian() * noise);
    out.x[i * 2 + 1] = static_cast<float>(y + rng->Gaussian() * noise);
    out.y[static_cast<size_t>(i)] = upper ? 0 : 1;
  }
  return out;
}

Dataset MakeDigitGrid(int64_t n, int64_t img, int64_t classes, double noise,
                      Rng* rng) {
  DLSYS_CHECK(n > 0 && img >= 4 && classes > 1 && classes <= 16,
              "invalid digit-grid config");
  // Each class gets a deterministic stroke pattern: a horizontal bar, a
  // vertical bar, and a diagonal whose positions depend on the class id.
  Dataset out;
  out.x = Tensor({n, 1, img, img});
  out.y.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t cls = static_cast<int64_t>(rng->Index(classes));
    out.y[static_cast<size_t>(i)] = cls;
    float* px = out.x.data() + i * img * img;
    // Background noise.
    for (int64_t p = 0; p < img * img; ++p) {
      px[p] = static_cast<float>(rng->Gaussian() * noise);
    }
    const int64_t row = (cls * 7 + 1) % img;
    const int64_t col = (cls * 3 + 2) % img;
    for (int64_t j = 0; j < img; ++j) {
      px[row * img + j] += 1.0f;                     // horizontal bar
      if (cls % 2 == 0) px[j * img + col] += 1.0f;   // vertical bar
      if (cls % 3 == 0) px[j * img + j] += 1.0f;     // main diagonal
    }
  }
  return out;
}

RegressionData MakeRegression(int64_t n, int64_t dims, double noise,
                              Rng* rng) {
  DLSYS_CHECK(n > 0 && dims > 0, "invalid regression config");
  std::vector<float> w(static_cast<size_t>(dims));
  for (float& v : w) v = static_cast<float>(rng->Gaussian());
  RegressionData out;
  out.x = Tensor({n, dims});
  out.y = Tensor({n, 1});
  for (int64_t i = 0; i < n; ++i) {
    double dot = 0.0;
    for (int64_t j = 0; j < dims; ++j) {
      const float xv = static_cast<float>(rng->Uniform(-2.0, 2.0));
      out.x[i * dims + j] = xv;
      dot += w[static_cast<size_t>(j)] * xv;
    }
    out.y[i] = static_cast<float>(std::sin(dot) + rng->Gaussian() * noise);
  }
  return out;
}

}  // namespace dlsys
