#ifndef DLSYS_DATA_SYNTHETIC_H_
#define DLSYS_DATA_SYNTHETIC_H_

#include <cstdint>

#include "src/data/dataset.h"

/// \file synthetic.h
/// \brief Seeded synthetic dataset generators.
///
/// Substitutes for the image/NLP corpora the tutorial's techniques are
/// usually demonstrated on: laptop-scale, deterministic, and with
/// controllable difficulty so accuracy deltas between techniques are
/// visible above noise.

namespace dlsys {

/// \brief Gaussian mixture classification: \p classes isotropic blobs in
/// \p dims dimensions at distance controlled by \p separation (larger is
/// easier). Labels are the blob index.
Dataset MakeGaussianBlobs(int64_t n, int64_t dims, int64_t classes,
                          double separation, Rng* rng);

/// \brief Two interleaved half-moons in 2-D with Gaussian noise; binary
/// labels. A classic nonlinear benchmark.
Dataset MakeTwoMoons(int64_t n, double noise, Rng* rng);

/// \brief Synthetic "digit" images: class-dependent stroke patterns on an
/// \p img x \p img grid with pixel noise, shaped [N, 1, img, img].
/// A stand-in for MNIST-like CNN workloads.
Dataset MakeDigitGrid(int64_t n, int64_t img, int64_t classes, double noise,
                      Rng* rng);

/// \brief Nonlinear scalar regression y = sin(w.x) + noise packaged as
/// features x (N x dims) and targets (N x 1) in the returned pair.
struct RegressionData {
  Tensor x;
  Tensor y;
};
RegressionData MakeRegression(int64_t n, int64_t dims, double noise, Rng* rng);

}  // namespace dlsys

#endif  // DLSYS_DATA_SYNTHETIC_H_
