#include "src/data/dataset.h"

#include <algorithm>
#include <cmath>

#include "src/core/status.h"

namespace dlsys {

int64_t Dataset::NumClasses() const {
  int64_t mx = -1;
  for (int64_t v : y) mx = std::max(mx, v);
  return mx + 1;
}

namespace {
// Copies example i of src features into slot j of dst features.
void CopyExample(const Tensor& src, int64_t i, Tensor* dst, int64_t j) {
  int64_t stride = 1;
  for (int64_t d = 1; d < src.rank(); ++d) stride *= src.dim(d);
  std::copy(src.data() + i * stride, src.data() + (i + 1) * stride,
            dst->data() + j * stride);
}

Shape WithRows(const Shape& s, int64_t rows) {
  Shape out = s;
  out[0] = rows;
  return out;
}
}  // namespace

TrainTestSplit Split(const Dataset& data, double train_fraction) {
  DLSYS_CHECK(train_fraction >= 0.0 && train_fraction <= 1.0,
              "train_fraction out of range");
  const int64_t n = data.size();
  const int64_t n_train =
      static_cast<int64_t>(std::llround(train_fraction * n));
  TrainTestSplit out;
  out.train = Batch(data, 0, n_train);
  out.test = Batch(data, n_train, n);
  return out;
}

void ShuffleDataset(Dataset* data, Rng* rng) {
  const int64_t n = data->size();
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  rng->Shuffle(&perm);
  Tensor x(data->x.shape());
  std::vector<int64_t> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    CopyExample(data->x, perm[static_cast<size_t>(i)], &x, i);
    y[static_cast<size_t>(i)] = data->y[static_cast<size_t>(perm[i])];
  }
  data->x = std::move(x);
  data->y = std::move(y);
}

std::vector<std::pair<float, float>> Standardize(Dataset* data) {
  DLSYS_CHECK(data->x.rank() == 2, "Standardize requires rank-2 features");
  const int64_t n = data->x.dim(0), d = data->x.dim(1);
  std::vector<std::pair<float, float>> stats(static_cast<size_t>(d));
  for (int64_t j = 0; j < d; ++j) {
    double mean = 0.0;
    for (int64_t i = 0; i < n; ++i) mean += data->x[i * d + j];
    mean /= std::max<int64_t>(n, 1);
    double var = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double dv = data->x[i * d + j] - mean;
      var += dv * dv;
    }
    var /= std::max<int64_t>(n, 1);
    const float stddev = static_cast<float>(std::sqrt(std::max(var, 1e-12)));
    stats[static_cast<size_t>(j)] = {static_cast<float>(mean), stddev};
    for (int64_t i = 0; i < n; ++i) {
      data->x[i * d + j] =
          (data->x[i * d + j] - static_cast<float>(mean)) / stddev;
    }
  }
  return stats;
}

Dataset Batch(const Dataset& data, int64_t begin, int64_t end) {
  DLSYS_CHECK(begin >= 0 && begin <= end && end <= data.size(),
              "batch range invalid");
  Dataset out;
  out.x = Tensor(WithRows(data.x.shape(), end - begin));
  for (int64_t i = begin; i < end; ++i) {
    CopyExample(data.x, i, &out.x, i - begin);
  }
  out.y.assign(data.y.begin() + begin, data.y.begin() + end);
  return out;
}

}  // namespace dlsys
