#ifndef DLSYS_DATA_DATASET_H_
#define DLSYS_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/tensor/tensor.h"

/// \file dataset.h
/// \brief Labeled datasets and batching.

namespace dlsys {

/// \brief A labeled classification dataset: features x (N x d or
/// N x C x H x W) and integer labels y (length N).
struct Dataset {
  Tensor x;
  std::vector<int64_t> y;

  /// \brief Number of examples.
  int64_t size() const { return x.empty() ? 0 : x.dim(0); }
  /// \brief Number of distinct label values (max + 1).
  int64_t NumClasses() const;
};

/// \brief Splits \p data into train/test with the first
/// round(train_fraction * N) examples in train (shuffle first if order
/// matters).
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
TrainTestSplit Split(const Dataset& data, double train_fraction);

/// \brief Shuffles examples (features and labels together).
void ShuffleDataset(Dataset* data, Rng* rng);

/// \brief Standardizes each feature column of a rank-2 x to zero mean and
/// unit variance (in place); returns the per-column (mean, stddev) pairs.
std::vector<std::pair<float, float>> Standardize(Dataset* data);

/// \brief Extracts examples [begin, end) as a batch (any feature rank).
Dataset Batch(const Dataset& data, int64_t begin, int64_t end);

/// \brief Iterates over a dataset in fixed-size batches.
///
/// The last batch may be smaller. Usage:
///   for (BatchIterator it(data, 32); !it.Done(); it.Next()) {
///     Dataset b = it.Get(); ...
///   }
class BatchIterator {
 public:
  BatchIterator(const Dataset& data, int64_t batch_size)
      : data_(data), batch_size_(batch_size) {}
  /// \brief True when all examples were yielded.
  bool Done() const { return pos_ >= data_.size(); }
  /// \brief Advances to the next batch.
  void Next() { pos_ += batch_size_; }
  /// \brief Materializes the current batch.
  Dataset Get() const {
    const int64_t end = std::min(pos_ + batch_size_, data_.size());
    return Batch(data_, pos_, end);
  }

 private:
  const Dataset& data_;
  int64_t batch_size_;
  int64_t pos_ = 0;
};

}  // namespace dlsys

#endif  // DLSYS_DATA_DATASET_H_
