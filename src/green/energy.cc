#include "src/green/energy.h"

#include <algorithm>
#include <cmath>

namespace dlsys {

std::vector<HardwareProfile> StandardHardware() {
  // Representative public numbers (order of magnitude, not vendor specs).
  return {
      {"cpu-32core", 2e12, 250.0, 0.5},
      {"gpu-mid", 30e12, 250.0, 0.33},
      {"gpu-high", 120e12, 400.0, 0.35},
      {"tpu-pod-slice", 400e12, 1200.0, 0.45},
  };
}

std::vector<Region> StandardRegions() {
  // The first entry plays the "default region" a deadline-driven
  // scheduler lands in; the clean regions follow.
  return {
      {"mixed-grid", 1.5, 400.0},
      {"hydro-north", 1.1, 20.0},
      {"wind-coast", 1.2, 80.0},
      {"coal-heavy", 1.6, 820.0},
  };
}

TrainingJob TrainingJob::ForNetwork(const Sequential& net, int64_t examples,
                                    int64_t epochs) {
  TrainingJob job;
  job.total_flops = 3.0 * static_cast<double>(net.FlopsPerExample()) *
                    static_cast<double>(examples) *
                    static_cast<double>(epochs);
  return job;
}

Result<Footprint> EstimateFootprint(const TrainingJob& job,
                                    const HardwareProfile& hw,
                                    const Region& region) {
  if (job.total_flops < 0.0) {
    return Status::InvalidArgument("negative FLOPs");
  }
  if (hw.peak_flops <= 0.0 || hw.utilization <= 0.0 || hw.watts <= 0.0) {
    return Status::InvalidArgument("invalid hardware profile");
  }
  if (region.pue < 1.0 || region.grams_co2_per_kwh < 0.0) {
    return Status::InvalidArgument("invalid region profile");
  }
  Footprint out;
  out.runtime_seconds = job.total_flops / hw.EffectiveFlops();
  out.energy_joules = out.runtime_seconds * hw.watts;
  out.facility_kwh = out.energy_joules * region.pue / 3.6e6;
  out.co2_grams = out.facility_kwh * region.grams_co2_per_kwh;
  return out;
}

Result<std::vector<PhaseEnergyRow>> EstimatePhaseFootprint(
    const obs::PhaseCost& cost, const HardwareProfile& hw,
    const Region& region) {
  if (hw.peak_flops <= 0.0 || hw.utilization <= 0.0 || hw.watts <= 0.0) {
    return Status::InvalidArgument("invalid hardware profile");
  }
  if (region.pue < 1.0 || region.grams_co2_per_kwh < 0.0) {
    return Status::InvalidArgument("invalid region profile");
  }
  std::vector<PhaseEnergyRow> rows;
  for (size_t p = 0; p < static_cast<size_t>(obs::Phase::kCount); ++p) {
    const int64_t flops = cost.flops[p];
    if (flops <= 0) continue;
    PhaseEnergyRow row;
    row.phase = obs::PhaseName(static_cast<obs::Phase>(p));
    row.flops = static_cast<double>(flops);
    row.runtime_seconds = row.flops / hw.EffectiveFlops();
    row.energy_joules = row.runtime_seconds * hw.watts;
    row.co2_grams = row.energy_joules * region.pue / 3.6e6 *
                    region.grams_co2_per_kwh;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const PhaseEnergyRow& a, const PhaseEnergyRow& b) {
              return a.energy_joules > b.energy_joules;
            });
  return rows;
}

Result<Placement> CarbonAwarePlacement(
    const TrainingJob& job, const std::vector<HardwareProfile>& hardware,
    const std::vector<Region>& regions, double deadline_seconds) {
  if (hardware.empty() || regions.empty()) {
    return Status::InvalidArgument("no placement candidates");
  }
  Result<Placement> best = Status::NotFound(
      "no placement meets the deadline");
  double best_co2 = 1e300;
  for (size_t h = 0; h < hardware.size(); ++h) {
    for (size_t r = 0; r < regions.size(); ++r) {
      auto fp = EstimateFootprint(job, hardware[h], regions[r]);
      if (!fp.ok()) return fp.status();
      if (fp->runtime_seconds > deadline_seconds) continue;
      if (fp->co2_grams < best_co2) {
        best_co2 = fp->co2_grams;
        Placement p;
        p.hardware_index = static_cast<int64_t>(h);
        p.region_index = static_cast<int64_t>(r);
        p.footprint = *fp;
        best = p;
      }
    }
  }
  return best;
}

Result<Placement> FastestPlacement(
    const TrainingJob& job, const std::vector<HardwareProfile>& hardware,
    const std::vector<Region>& regions) {
  if (hardware.empty() || regions.empty()) {
    return Status::InvalidArgument("no placement candidates");
  }
  size_t fastest = 0;
  for (size_t h = 1; h < hardware.size(); ++h) {
    if (hardware[h].EffectiveFlops() >
        hardware[fastest].EffectiveFlops()) {
      fastest = h;
    }
  }
  auto fp = EstimateFootprint(job, hardware[fastest], regions[0]);
  if (!fp.ok()) return fp.status();
  Placement p;
  p.hardware_index = static_cast<int64_t>(fastest);
  p.region_index = 0;
  p.footprint = *fp;
  return p;
}

Result<ScheduleChoice> CarbonAwareStartTime(
    const TrainingJob& job, const HardwareProfile& hw, double pue,
    const std::vector<double>& intensity_forecast, int64_t deadline_hours) {
  if (intensity_forecast.empty()) {
    return Status::InvalidArgument("empty intensity forecast");
  }
  if (pue < 1.0) return Status::InvalidArgument("pue must be >= 1");
  const double runtime_hours = job.total_flops / hw.EffectiveFlops() / 3600.0;
  const int64_t window = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(runtime_hours)));
  const int64_t horizon = std::min<int64_t>(
      deadline_hours, static_cast<int64_t>(intensity_forecast.size()));
  if (window > horizon) {
    return Status::NotFound("job cannot finish before the deadline");
  }
  const double kwh_per_hour = hw.watts * pue / 1000.0;
  // Slide the window; pick the minimum-intensity placement.
  ScheduleChoice best;
  double best_intensity_sum = 1e300;
  double rolling = 0.0;
  for (int64_t h = 0; h < horizon; ++h) {
    rolling += intensity_forecast[static_cast<size_t>(h)];
    if (h >= window) {
      rolling -= intensity_forecast[static_cast<size_t>(h - window)];
    }
    if (h >= window - 1 && rolling < best_intensity_sum) {
      best_intensity_sum = rolling;
      best.start_hour = h - window + 1;
    }
  }
  // CO2: full hours at the window's intensities, prorated to the true
  // runtime within the window.
  best.co2_grams = kwh_per_hour * best_intensity_sum *
                   (runtime_hours / static_cast<double>(window));
  return best;
}

}  // namespace dlsys
