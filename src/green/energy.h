#ifndef DLSYS_GREEN_ENERGY_H_
#define DLSYS_GREEN_ENERGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/nn/sequential.h"
#include "src/obs/cost.h"

/// \file energy.h
/// \brief Energy and carbon accounting for deep learning (tutorial
/// Section 4.3): a Machine-Learning-Emissions-Calculator-style model
/// built from FLOP counts, hardware profiles, datacenter PUE, and
/// regional carbon intensity.
///
/// Substitution (DESIGN.md): the public calculators are deterministic
/// formulas over published constants; representative constants are baked
/// in so footprints are reproducible offline.

namespace dlsys {

/// \brief An accelerator/CPU profile.
struct HardwareProfile {
  std::string name;
  double peak_flops = 1e12;   ///< peak FLOP/s
  double watts = 250.0;       ///< board power at load
  double utilization = 0.3;   ///< sustained fraction of peak in training
  /// \brief Effective FLOP/s actually delivered.
  double EffectiveFlops() const { return peak_flops * utilization; }
  /// \brief The tutorial's efficiency metric.
  double FlopsPerWatt() const { return EffectiveFlops() / watts; }
};

/// \brief A datacenter region: power overhead and carbon intensity.
struct Region {
  std::string name;
  double pue = 1.5;                  ///< power usage effectiveness
  double grams_co2_per_kwh = 400.0;  ///< grid carbon intensity
};

/// \brief Built-in representative hardware profiles.
std::vector<HardwareProfile> StandardHardware();
/// \brief Built-in representative regions (hydro-heavy to coal-heavy).
std::vector<Region> StandardRegions();

/// \brief A training job's computational demand.
struct TrainingJob {
  double total_flops = 0.0;

  /// \brief Derives the demand of training \p net on \p examples
  /// examples for \p epochs epochs (forward+backward ~ 3x forward).
  static TrainingJob ForNetwork(const Sequential& net, int64_t examples,
                                int64_t epochs);
};

/// \brief A job's footprint on given hardware in a given region.
struct Footprint {
  double runtime_seconds = 0.0;
  double energy_joules = 0.0;     ///< device energy
  double facility_kwh = 0.0;      ///< device energy x PUE, in kWh
  double co2_grams = 0.0;
};

/// \brief Computes the footprint of \p job on \p hw in \p region.
Result<Footprint> EstimateFootprint(const TrainingJob& job,
                                    const HardwareProfile& hw,
                                    const Region& region);

/// \brief Energy and carbon attributed to one accounting phase.
struct PhaseEnergyRow {
  std::string phase;          ///< obs::PhaseName of the phase
  double flops = 0.0;         ///< measured FLOPs attributed to the phase
  double runtime_seconds = 0.0;
  double energy_joules = 0.0;  ///< device energy
  double co2_grams = 0.0;      ///< facility energy x grid intensity
};

/// \brief Per-phase footprint from the observability layer's measured
/// FLOP attribution (obs::PhaseTotals): energy *per phase* — data,
/// forward, backward, comm, serve — instead of one aggregate, using the
/// same effective-FLOPs model as EstimateFootprint. Phases with zero
/// attributed FLOPs are omitted; rows come back in descending energy.
Result<std::vector<PhaseEnergyRow>> EstimatePhaseFootprint(
    const obs::PhaseCost& cost, const HardwareProfile& hw,
    const Region& region);

/// \brief Carbon-aware placement: picks the (hardware, region) pair with
/// the lowest CO2 for the job, subject to an optional deadline.
/// Returns the chosen indices and footprint.
struct Placement {
  int64_t hardware_index = 0;
  int64_t region_index = 0;
  Footprint footprint;
};
Result<Placement> CarbonAwarePlacement(
    const TrainingJob& job, const std::vector<HardwareProfile>& hardware,
    const std::vector<Region>& regions, double deadline_seconds);

/// \brief Naive placement baseline: fastest hardware, first region.
Result<Placement> FastestPlacement(
    const TrainingJob& job, const std::vector<HardwareProfile>& hardware,
    const std::vector<Region>& regions);

/// \brief Temporal carbon-aware scheduling (the tutorial's [103]:
/// shifting datacenter work to hours when the grid is clean).
///
/// \p intensity_forecast gives gCO2/kWh per hour slot. The job runs
/// contiguously for ceil(runtime) hours and must finish by
/// \p deadline_hours. Returns the start hour minimizing total CO2 and
/// the resulting grams (device kWh spread uniformly over the window).
struct ScheduleChoice {
  int64_t start_hour = 0;
  double co2_grams = 0.0;
};
Result<ScheduleChoice> CarbonAwareStartTime(
    const TrainingJob& job, const HardwareProfile& hw, double pue,
    const std::vector<double>& intensity_forecast, int64_t deadline_hours);

}  // namespace dlsys

#endif  // DLSYS_GREEN_ENERGY_H_
