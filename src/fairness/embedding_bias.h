#ifndef DLSYS_FAIRNESS_EMBEDDING_BIAS_H_
#define DLSYS_FAIRNESS_EMBEDDING_BIAS_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/tensor/tensor.h"

/// \file embedding_bias.h
/// \brief Bias in word embeddings (tutorial Section 4.1, citing
/// Papakyriakopoulos et al.'s "Bias in Word Embeddings"): a WEAT-style
/// association test quantifying stereotype bias in an embedding space,
/// plus hard debiasing by projecting out the bias direction.
///
/// Substitution (DESIGN.md): instead of trained word2vec vectors we
/// generate synthetic embeddings with *injected, controllable*
/// association bias, so the measurement and the mitigation can be
/// validated against ground truth.

namespace dlsys {

/// \brief A synthetic embedding space with two attribute word sets
/// (e.g. male/female terms) and two target word sets (e.g. career/
/// family terms), where targets lean toward attributes with strength
/// \p bias.
struct EmbeddingSpace {
  Tensor vectors;                    ///< (words, dims)
  std::vector<int64_t> attribute_a;  ///< word ids
  std::vector<int64_t> attribute_b;
  std::vector<int64_t> target_x;
  std::vector<int64_t> target_y;
};

/// \brief Generates an embedding space of \p dims dimensions with
/// \p set_size words per set and association bias \p bias in [0, 1]:
/// at 0 targets are unrelated to attributes; at 1 target-X words align
/// with attribute-A words and target-Y with B.
EmbeddingSpace MakeBiasedEmbeddings(int64_t dims, int64_t set_size,
                                    double bias, Rng* rng);

/// \brief Cosine similarity of rows \p a and \p b of \p vectors.
double CosineSimilarity(const Tensor& vectors, int64_t a, int64_t b);

/// \brief WEAT effect size (Cohen's d over association differentials):
/// d = [mean_{x in X} s(x) - mean_{y in Y} s(y)] / std_{w in X u Y} s(w)
/// where s(w) = mean_a cos(w, a) - mean_b cos(w, b).
/// Range roughly [-2, 2]; 0 = unbiased.
Result<double> WeatEffectSize(const EmbeddingSpace& space);

/// \brief Hard debiasing: computes the bias direction (difference of
/// attribute-set centroids) and removes its component from every
/// TARGET word vector in place.
Status HardDebias(EmbeddingSpace* space);

}  // namespace dlsys

#endif  // DLSYS_FAIRNESS_EMBEDDING_BIAS_H_
