#include "src/fairness/embedding_bias.h"

#include <cmath>

namespace dlsys {

EmbeddingSpace MakeBiasedEmbeddings(int64_t dims, int64_t set_size,
                                    double bias, Rng* rng) {
  DLSYS_CHECK(dims >= 4 && set_size > 1, "space too small");
  DLSYS_CHECK(bias >= 0.0 && bias <= 1.0, "bias in [0, 1]");
  EmbeddingSpace space;
  const int64_t words = 4 * set_size;
  space.vectors = Tensor({words, dims});
  space.vectors.FillGaussian(rng, 1.0f);
  // Attribute direction: a fixed random unit vector.
  Tensor direction({dims});
  direction.FillGaussian(rng, 1.0f);
  const float norm = static_cast<float>(direction.L2Norm());
  for (int64_t d = 0; d < dims; ++d) direction[d] /= norm;

  int64_t next = 0;
  auto take = [&](std::vector<int64_t>* set, double shift) {
    for (int64_t i = 0; i < set_size; ++i) {
      set->push_back(next);
      for (int64_t d = 0; d < dims; ++d) {
        space.vectors[next * dims + d] +=
            static_cast<float>(shift) * direction[d];
      }
      ++next;
    }
  };
  // Attribute sets sit at opposite ends of the direction; targets lean
  // toward them proportionally to the bias strength.
  const double attr_shift = 3.0;
  take(&space.attribute_a, attr_shift);
  take(&space.attribute_b, -attr_shift);
  take(&space.target_x, bias * attr_shift);
  take(&space.target_y, -bias * attr_shift);
  return space;
}

double CosineSimilarity(const Tensor& vectors, int64_t a, int64_t b) {
  const int64_t dims = vectors.dim(1);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int64_t d = 0; d < dims; ++d) {
    const double va = vectors[a * dims + d];
    const double vb = vectors[b * dims + d];
    dot += va * vb;
    na += va * va;
    nb += vb * vb;
  }
  const double denom = std::sqrt(na * nb);
  return denom < 1e-300 ? 0.0 : dot / denom;
}

namespace {
// s(w) = mean_a cos(w, a) - mean_b cos(w, b).
double Association(const EmbeddingSpace& space, int64_t word) {
  double sa = 0.0, sb = 0.0;
  for (int64_t a : space.attribute_a) {
    sa += CosineSimilarity(space.vectors, word, a);
  }
  for (int64_t b : space.attribute_b) {
    sb += CosineSimilarity(space.vectors, word, b);
  }
  return sa / static_cast<double>(space.attribute_a.size()) -
         sb / static_cast<double>(space.attribute_b.size());
}
}  // namespace

Result<double> WeatEffectSize(const EmbeddingSpace& space) {
  if (space.attribute_a.empty() || space.attribute_b.empty() ||
      space.target_x.empty() || space.target_y.empty()) {
    return Status::InvalidArgument("all four word sets must be non-empty");
  }
  std::vector<double> sx, sy;
  for (int64_t x : space.target_x) sx.push_back(Association(space, x));
  for (int64_t y : space.target_y) sy.push_back(Association(space, y));
  double mx = 0.0, my = 0.0;
  for (double v : sx) mx += v;
  for (double v : sy) my += v;
  mx /= static_cast<double>(sx.size());
  my /= static_cast<double>(sy.size());
  // Pooled standard deviation over X u Y.
  double mean_all = (mx * sx.size() + my * sy.size()) /
                    static_cast<double>(sx.size() + sy.size());
  double var = 0.0;
  for (double v : sx) var += (v - mean_all) * (v - mean_all);
  for (double v : sy) var += (v - mean_all) * (v - mean_all);
  var /= static_cast<double>(sx.size() + sy.size() - 1);
  const double stddev = std::sqrt(std::max(var, 1e-30));
  return (mx - my) / stddev;
}

Status HardDebias(EmbeddingSpace* space) {
  if (space->attribute_a.empty() || space->attribute_b.empty()) {
    return Status::InvalidArgument("attribute sets must be non-empty");
  }
  const int64_t dims = space->vectors.dim(1);
  // Bias direction: difference of attribute centroids, normalized.
  std::vector<double> direction(static_cast<size_t>(dims), 0.0);
  for (int64_t a : space->attribute_a) {
    for (int64_t d = 0; d < dims; ++d) {
      direction[static_cast<size_t>(d)] +=
          space->vectors[a * dims + d] /
          static_cast<double>(space->attribute_a.size());
    }
  }
  for (int64_t b : space->attribute_b) {
    for (int64_t d = 0; d < dims; ++d) {
      direction[static_cast<size_t>(d)] -=
          space->vectors[b * dims + d] /
          static_cast<double>(space->attribute_b.size());
    }
  }
  double norm = 0.0;
  for (double v : direction) norm += v * v;
  norm = std::sqrt(norm);
  if (norm < 1e-12) {
    return Status::FailedPrecondition("attribute sets coincide");
  }
  for (double& v : direction) v /= norm;
  // Project every target vector orthogonal to the bias direction.
  auto debias_word = [&](int64_t w) {
    double dot = 0.0;
    for (int64_t d = 0; d < dims; ++d) {
      dot += space->vectors[w * dims + d] * direction[static_cast<size_t>(d)];
    }
    for (int64_t d = 0; d < dims; ++d) {
      space->vectors[w * dims + d] -=
          static_cast<float>(dot * direction[static_cast<size_t>(d)]);
    }
  };
  for (int64_t x : space->target_x) debias_word(x);
  for (int64_t y : space->target_y) debias_word(y);
  return Status::OK();
}

}  // namespace dlsys
