#ifndef DLSYS_FAIRNESS_MITIGATION_H_
#define DLSYS_FAIRNESS_MITIGATION_H_

#include <cstdint>
#include <vector>

#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/nn/sequential.h"

/// \file mitigation.h
/// \brief Bias mitigation at three intervention points (tutorial
/// Section 4.1): before training (data reweighing), during training
/// (adversarial debiasing), and after training (ablation of neurons
/// correlated with the protected attribute).

namespace dlsys {

/// \brief Kamiran-Calders reweighing weights per (group, label) cell:
/// w(g, y) = P(g) * P(y) / P(g, y) — equalizes the group/label joint to
/// its independence baseline.
Result<std::vector<double>> ReweighingWeights(
    const std::vector<int64_t>& labels, const std::vector<int64_t>& group);

/// \brief Pre-processing mitigation: resamples \p data (with
/// replacement, proportional to reweighing weights) into an equally
/// sized, bias-balanced training set. Also permutes \p group in step so
/// callers can keep auditing.
struct ReweighedData {
  Dataset data;
  std::vector<int64_t> group;
};
Result<ReweighedData> ReweighDataset(const Dataset& data,
                                     const std::vector<int64_t>& group,
                                     uint64_t seed);

/// \brief In-processing mitigation: adversarial debiasing.
///
/// Trains \p predictor against two objectives: classify labels, and
/// defeat an adversary that tries to recover the protected attribute
/// from the predictor's logits. \p lambda scales the adversarial term;
/// 0 reduces to plain training.
struct AdversarialConfig {
  int64_t epochs = 30;
  int64_t warmup_epochs = 5;  ///< plain task training before the
                              ///< adversarial term switches on
  int64_t batch_size = 32;
  double lr = 0.02;
  double adversary_lr = 0.05;
  double lambda = 1.0;
  int64_t adversary_hidden = 8;
  uint64_t seed = 41;
};
Status AdversarialDebias(Sequential* predictor, const Dataset& data,
                         const std::vector<int64_t>& group,
                         const AdversarialConfig& config);

/// \brief Post-processing mitigation: ablates (zeroes the outgoing
/// weights of) the \p k hidden units of the first hidden layer whose
/// activations correlate most with the protected attribute.
///
/// Requires \p net to be an MLP whose layers 0..2 are Dense-ReLU-Dense.
/// Returns the ablated unit indices.
Result<std::vector<int64_t>> AblateCorrelatedNeurons(
    Sequential* net, const Dataset& data, const std::vector<int64_t>& group,
    int64_t k);

/// \brief Hard predictions (argmax) of a classifier over a dataset.
std::vector<int64_t> Predict(Sequential* net, const Tensor& x);

}  // namespace dlsys

#endif  // DLSYS_FAIRNESS_MITIGATION_H_
