#include "src/fairness/mitigation.h"

#include <algorithm>
#include <cmath>

#include "src/nn/layers.h"
#include "src/nn/loss.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"
#include "src/tensor/ops.h"

namespace dlsys {

Result<std::vector<double>> ReweighingWeights(
    const std::vector<int64_t>& labels, const std::vector<int64_t>& group) {
  if (labels.size() != group.size() || labels.empty()) {
    return Status::InvalidArgument("label/group size mismatch or empty");
  }
  const double n = static_cast<double>(labels.size());
  double p_group[2] = {0, 0};
  double p_label[2] = {0, 0};
  double p_joint[2][2] = {{0, 0}, {0, 0}};
  for (size_t i = 0; i < labels.size(); ++i) {
    if ((labels[i] != 0 && labels[i] != 1) ||
        (group[i] != 0 && group[i] != 1)) {
      return Status::InvalidArgument("labels and groups must be binary");
    }
    p_group[group[i]] += 1.0;
    p_label[labels[i]] += 1.0;
    p_joint[group[i]][labels[i]] += 1.0;
  }
  for (double& v : p_group) v /= n;
  for (double& v : p_label) v /= n;
  std::vector<double> weights(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    const double joint = p_joint[group[i]][labels[i]] / n;
    weights[i] =
        joint > 0.0 ? p_group[group[i]] * p_label[labels[i]] / joint : 0.0;
  }
  return weights;
}

Result<ReweighedData> ReweighDataset(const Dataset& data,
                                     const std::vector<int64_t>& group,
                                     uint64_t seed) {
  auto weights = ReweighingWeights(data.y, group);
  if (!weights.ok()) return weights.status();
  const int64_t n = data.size();
  // Cumulative distribution for weighted sampling.
  std::vector<double> cdf(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    total += (*weights)[static_cast<size_t>(i)];
    cdf[static_cast<size_t>(i)] = total;
  }
  Rng rng(seed);
  ReweighedData out;
  out.data.x = Tensor(data.x.shape());
  out.data.y.resize(static_cast<size_t>(n));
  out.group.resize(static_cast<size_t>(n));
  int64_t stride = 1;
  for (int64_t d = 1; d < data.x.rank(); ++d) stride *= data.x.dim(d);
  for (int64_t i = 0; i < n; ++i) {
    const double u = rng.Uniform() * total;
    const int64_t src = static_cast<int64_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const int64_t s = std::min(src, n - 1);
    std::copy(data.x.data() + s * stride, data.x.data() + (s + 1) * stride,
              out.data.x.data() + i * stride);
    out.data.y[static_cast<size_t>(i)] = data.y[static_cast<size_t>(s)];
    out.group[static_cast<size_t>(i)] = group[static_cast<size_t>(s)];
  }
  return out;
}

Status AdversarialDebias(Sequential* predictor, const Dataset& data,
                         const std::vector<int64_t>& group,
                         const AdversarialConfig& config) {
  if (data.size() == 0 ||
      group.size() != static_cast<size_t>(data.size())) {
    return Status::InvalidArgument("data/group size mismatch or empty");
  }
  if (config.lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  // Adversary reads the predictor's logits and predicts the group.
  Sequential adversary =
      MakeMlp(2, {config.adversary_hidden}, 2);
  Rng rng(config.seed);
  adversary.Init(&rng);
  Sgd pred_opt(config.lr, 0.9);
  Sgd adv_opt(config.adversary_lr, 0.9);

  Rng shuffle(config.seed + 1);
  std::vector<int64_t> order(static_cast<size_t>(data.size()));
  for (int64_t i = 0; i < data.size(); ++i) order[static_cast<size_t>(i)] = i;
  const int64_t cols = data.x.dim(1);
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    shuffle.Shuffle(&order);
    for (int64_t b = 0; b < data.size(); b += config.batch_size) {
      const int64_t end = std::min(b + config.batch_size, data.size());
      Tensor bx({end - b, cols});
      std::vector<int64_t> by(static_cast<size_t>(end - b));
      std::vector<int64_t> bg(static_cast<size_t>(end - b));
      for (int64_t i = b; i < end; ++i) {
        const int64_t src = order[static_cast<size_t>(i)];
        std::copy(data.x.data() + src * cols, data.x.data() + (src + 1) * cols,
                  bx.data() + (i - b) * cols);
        by[static_cast<size_t>(i - b)] = data.y[static_cast<size_t>(src)];
        bg[static_cast<size_t>(i - b)] = group[static_cast<size_t>(src)];
      }

      predictor->ZeroGrads();
      Tensor logits = predictor->Forward(bx, CacheMode::kCache);

      // Train the adversary one step on the current logits.
      adversary.ZeroGrads();
      Tensor adv_out = adversary.Forward(logits, CacheMode::kCache);
      LossGrad adv_lg = SoftmaxCrossEntropy(adv_out, bg);
      Tensor dlogits_adv = adversary.Backward(adv_lg.grad);
      adv_opt.Step(adversary.Params(), adversary.Grads());

      // Predictor: task gradient minus lambda x adversary gradient (the
      // predictor moves to HURT the adversary). The adversarial term is
      // off during warmup so the predictor first learns the task.
      const double lambda =
          epoch < config.warmup_epochs ? 0.0 : config.lambda;
      LossGrad task_lg = SoftmaxCrossEntropy(logits, by);
      Tensor grad = task_lg.grad;
      Axpy(static_cast<float>(-lambda), dlogits_adv, &grad);
      predictor->Backward(grad);
      pred_opt.Step(predictor->Params(), predictor->Grads());
    }
  }
  return Status::OK();
}

Result<std::vector<int64_t>> AblateCorrelatedNeurons(
    Sequential* net, const Dataset& data, const std::vector<int64_t>& group,
    int64_t k) {
  if (net->size() < 3) {
    return Status::FailedPrecondition("network too shallow to ablate");
  }
  auto* first = dynamic_cast<Dense*>(net->layer(0));
  auto* relu = dynamic_cast<ReLU*>(net->layer(1));
  auto* second = dynamic_cast<Dense*>(net->layer(2));
  if (first == nullptr || relu == nullptr || second == nullptr) {
    return Status::FailedPrecondition(
        "expected Dense-ReLU-Dense prefix for neuron ablation");
  }
  if (k < 0 || k > first->out_features()) {
    return Status::InvalidArgument("k outside [0, hidden units]");
  }
  // Hidden activations after ReLU for the whole dataset.
  Tensor h = first->Forward(data.x, CacheMode::kNoCache);
  h = relu->Forward(h, CacheMode::kNoCache);
  const int64_t n = h.dim(0), units = h.dim(1);

  // |Pearson correlation| of each unit with the protected attribute.
  std::vector<std::pair<double, int64_t>> scored;
  double gmean = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    gmean += static_cast<double>(group[static_cast<size_t>(i)]);
  }
  gmean /= static_cast<double>(n);
  for (int64_t u = 0; u < units; ++u) {
    double hmean = 0.0;
    for (int64_t i = 0; i < n; ++i) hmean += h[i * units + u];
    hmean /= static_cast<double>(n);
    double shg = 0.0, shh = 0.0, sgg = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double dh = h[i * units + u] - hmean;
      const double dg =
          static_cast<double>(group[static_cast<size_t>(i)]) - gmean;
      shg += dh * dg;
      shh += dh * dh;
      sgg += dg * dg;
    }
    const double denom = std::sqrt(shh * sgg);
    const double corr = denom > 1e-12 ? std::abs(shg / denom) : 0.0;
    scored.push_back({corr, u});
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<int64_t> ablated;
  const int64_t out_features = second->out_features();
  for (int64_t j = 0; j < k; ++j) {
    const int64_t u = scored[static_cast<size_t>(j)].second;
    ablated.push_back(u);
    // Zero the unit's outgoing weights: row u of the second Dense.
    for (int64_t c = 0; c < out_features; ++c) {
      second->weight()[u * out_features + c] = 0.0f;
    }
  }
  return ablated;
}

std::vector<int64_t> Predict(Sequential* net, const Tensor& x) {
  Tensor logits = net->Forward(x, CacheMode::kNoCache);
  return ArgMaxRows(logits);
}

}  // namespace dlsys
