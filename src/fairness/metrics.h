#ifndef DLSYS_FAIRNESS_METRICS_H_
#define DLSYS_FAIRNESS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"

/// \file metrics.h
/// \brief Group-fairness metrics (tutorial Section 4.1): the evaluation
/// vocabulary accuracy metrics miss — whether predictions are equitable
/// across groups.

namespace dlsys {

/// \brief Per-group confusion statistics and the derived gap metrics for
/// a binary classifier and a binary protected attribute.
struct FairnessReport {
  // Per-group rates, indexed by group id in {0, 1}.
  double positive_rate[2] = {0, 0};  ///< P(yhat=1 | group)
  double tpr[2] = {0, 0};            ///< P(yhat=1 | y=1, group)
  double fpr[2] = {0, 0};            ///< P(yhat=1 | y=0, group)
  double ppv[2] = {0, 0};            ///< P(y=1 | yhat=1, group)
  double accuracy[2] = {0, 0};
  int64_t count[2] = {0, 0};

  /// \brief |P(yhat=1|g=0) - P(yhat=1|g=1)|: demographic parity gap.
  double DemographicParityGap() const;
  /// \brief min/max ratio of positive rates (the 80%-rule statistic).
  double DisparateImpactRatio() const;
  /// \brief |TPR_0 - TPR_1|: equal-opportunity gap.
  double EqualOpportunityGap() const;
  /// \brief max(|TPR gap|, |FPR gap|): equalized-odds gap.
  double EqualizedOddsGap() const;
  /// \brief |PPV_0 - PPV_1|: predictive-parity gap.
  double PredictiveParityGap() const;
  /// \brief Overall accuracy across both groups.
  double OverallAccuracy() const;

  std::string ToString() const;
};

/// \brief Computes the report from predictions, reference labels, and
/// group membership. Fails unless all vectors share a length and the
/// values are binary.
Result<FairnessReport> AuditFairness(const std::vector<int64_t>& predictions,
                                     const std::vector<int64_t>& labels,
                                     const std::vector<int64_t>& group);

}  // namespace dlsys

#endif  // DLSYS_FAIRNESS_METRICS_H_
