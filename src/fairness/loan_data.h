#ifndef DLSYS_FAIRNESS_LOAN_DATA_H_
#define DLSYS_FAIRNESS_LOAN_DATA_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/data/dataset.h"

/// \file loan_data.h
/// \brief Synthetic loan-approval data with injected, controllable group
/// bias (tutorial Section 4.1).
///
/// Substitution (DESIGN.md): real mortgage/credit data is replaced by a
/// generator with a known causal structure — a latent creditworthiness
/// drives both features and the *fair* label, while the observed
/// (historical) label adds a bias against the protected group whose
/// strength is a parameter. Because the fair label is known, mitigation
/// techniques can be scored against ground truth, which no real dataset
/// allows.

namespace dlsys {

/// \brief Configuration of the biased generator.
struct LoanDataConfig {
  int64_t n = 2000;
  double group1_fraction = 0.4;   ///< prevalence of the protected group
  double bias_strength = 0.3;     ///< probability a qualified group-1
                                  ///< applicant is (unfairly) denied
  double label_noise = 0.05;      ///< symmetric noise on all labels
  uint64_t seed = 71;
};

/// \brief The generated data: features, observed labels, group
/// membership, and the latent fair labels.
struct LoanData {
  Dataset data;                    ///< x: 5 features; y: observed labels
  std::vector<int64_t> group;      ///< 0 = majority, 1 = protected
  std::vector<int64_t> fair_label; ///< bias-free ground truth
};

/// \brief Generates loan data per \p config. Features: income, years of
/// credit history, debt ratio, savings, recent defaults — all driven by
/// a latent creditworthiness plus noise; the protected attribute is NOT
/// a feature (bias enters only through labels), mirroring the tutorial's
/// point that models infer protected attributes from correlated
/// features.
LoanData MakeLoanData(const LoanDataConfig& config);

}  // namespace dlsys

#endif  // DLSYS_FAIRNESS_LOAN_DATA_H_
