#include "src/fairness/loan_data.h"

#include <cmath>

#include "src/core/status.h"

namespace dlsys {

LoanData MakeLoanData(const LoanDataConfig& config) {
  DLSYS_CHECK(config.n > 0, "need at least one example");
  DLSYS_CHECK(config.bias_strength >= 0.0 && config.bias_strength <= 1.0,
              "bias_strength in [0, 1]");
  Rng rng(config.seed);
  LoanData out;
  const int64_t n = config.n;
  out.data.x = Tensor({n, 5});
  out.data.y.resize(static_cast<size_t>(n));
  out.group.resize(static_cast<size_t>(n));
  out.fair_label.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const bool protected_group = rng.Bernoulli(config.group1_fraction);
    out.group[static_cast<size_t>(i)] = protected_group ? 1 : 0;
    // Latent creditworthiness. The protected group has the SAME latent
    // distribution: any disparity in observed labels is pure bias.
    const double credit = rng.Gaussian();
    // Features correlate with the latent and mildly with group (so a
    // model CAN infer group from features — the tutorial's retina
    // example).
    const double group_shift = protected_group ? -0.3 : 0.0;
    float* row = out.data.x.data() + i * 5;
    row[0] = static_cast<float>(credit * 0.8 + rng.Gaussian() * 0.4 +
                                group_shift);                       // income
    row[1] = static_cast<float>(credit * 0.6 + rng.Gaussian() * 0.5 +
                                group_shift * 0.5);  // credit history
    row[2] = static_cast<float>(-credit * 0.7 + rng.Gaussian() * 0.4);
    row[3] = static_cast<float>(credit * 0.5 + rng.Gaussian() * 0.6);
    row[4] = static_cast<float>(-credit * 0.4 + rng.Gaussian() * 0.5 -
                                group_shift);        // recent defaults
    // Fair label: approve iff creditworthy (threshold at 0).
    int64_t fair = credit > 0.0 ? 1 : 0;
    if (rng.Bernoulli(config.label_noise)) fair = 1 - fair;
    out.fair_label[static_cast<size_t>(i)] = fair;
    // Observed label: historical bias denies qualified group-1
    // applicants with probability bias_strength.
    int64_t observed = fair;
    if (protected_group && fair == 1 &&
        rng.Bernoulli(config.bias_strength)) {
      observed = 0;
    }
    out.data.y[static_cast<size_t>(i)] = observed;
  }
  return out;
}

}  // namespace dlsys
