#ifndef DLSYS_FAIRNESS_DATASHEET_H_
#define DLSYS_FAIRNESS_DATASHEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/data/dataset.h"

/// \file datasheet.h
/// \brief Datasheets for datasets / nutritional labels (tutorial
/// Section 4.1, Gebru et al.; Stoyanovich & Howe): machine-generated
/// metadata describing a dataset's composition so downstream users can
/// judge fitness and spot bias before training on it.

namespace dlsys {

/// \brief Per-feature summary statistics.
struct FeatureSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// |Pearson correlation| with the protected attribute — high values
  /// warn that the attribute is recoverable from this feature (the
  /// tutorial's retina example).
  double group_correlation = 0.0;
};

/// \brief A generated datasheet.
struct Datasheet {
  int64_t examples = 0;
  int64_t features = 0;
  int64_t classes = 0;
  std::vector<int64_t> class_counts;
  std::vector<int64_t> group_counts;          ///< per group (binary)
  std::vector<double> positive_rate_by_group; ///< P(y=1 | group)
  std::vector<FeatureSummary> feature_summaries;
  std::vector<std::string> warnings;          ///< human-readable flags

  /// \brief Multi-line rendering.
  std::string ToString() const;
};

/// \brief Thresholds controlling which warnings fire.
struct DatasheetConfig {
  double min_group_fraction = 0.2;     ///< representation warning
  double max_label_disparity = 0.1;    ///< |pos-rate gap| warning
  double max_group_correlation = 0.5;  ///< proxy-feature warning
};

/// \brief Generates a datasheet for a binary-group, rank-2-feature
/// dataset. The labels may be multi-class; positive-rate disparity is
/// computed for binary labels only.
Result<Datasheet> GenerateDatasheet(const Dataset& data,
                                    const std::vector<int64_t>& group,
                                    const DatasheetConfig& config = {});

}  // namespace dlsys

#endif  // DLSYS_FAIRNESS_DATASHEET_H_
