#include "src/fairness/datasheet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dlsys {

std::string Datasheet::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "datasheet: %lld examples, %lld features, %lld classes\n",
                static_cast<long long>(examples),
                static_cast<long long>(features),
                static_cast<long long>(classes));
  out += line;
  for (size_t c = 0; c < class_counts.size(); ++c) {
    std::snprintf(line, sizeof(line), "  class %zu: %lld examples\n", c,
                  static_cast<long long>(class_counts[c]));
    out += line;
  }
  for (size_t g = 0; g < group_counts.size(); ++g) {
    std::snprintf(line, sizeof(line),
                  "  group %zu: %lld examples, positive rate %.3f\n", g,
                  static_cast<long long>(group_counts[g]),
                  g < positive_rate_by_group.size()
                      ? positive_rate_by_group[g]
                      : 0.0);
    out += line;
  }
  for (size_t f = 0; f < feature_summaries.size(); ++f) {
    const FeatureSummary& s = feature_summaries[f];
    std::snprintf(line, sizeof(line),
                  "  feature %zu: mean=%.3f std=%.3f range=[%.3f, %.3f] "
                  "group_corr=%.3f\n",
                  f, s.mean, s.stddev, s.min, s.max, s.group_correlation);
    out += line;
  }
  for (const std::string& w : warnings) {
    out += "  WARNING: " + w + "\n";
  }
  return out;
}

Result<Datasheet> GenerateDatasheet(const Dataset& data,
                                    const std::vector<int64_t>& group,
                                    const DatasheetConfig& config) {
  if (data.size() == 0) return Status::InvalidArgument("empty dataset");
  if (data.x.rank() != 2) {
    return Status::InvalidArgument("datasheet expects rank-2 features");
  }
  if (group.size() != static_cast<size_t>(data.size())) {
    return Status::InvalidArgument("group length mismatch");
  }
  for (int64_t g : group) {
    if (g != 0 && g != 1) {
      return Status::InvalidArgument("groups must be binary");
    }
  }
  Datasheet sheet;
  sheet.examples = data.size();
  sheet.features = data.x.dim(1);
  sheet.classes = data.NumClasses();
  sheet.class_counts.assign(static_cast<size_t>(sheet.classes), 0);
  sheet.group_counts.assign(2, 0);
  int64_t positives[2] = {0, 0};
  for (int64_t i = 0; i < data.size(); ++i) {
    sheet.class_counts[static_cast<size_t>(data.y[static_cast<size_t>(i)])] +=
        1;
    sheet.group_counts[static_cast<size_t>(group[static_cast<size_t>(i)])] +=
        1;
    if (data.y[static_cast<size_t>(i)] == 1) {
      positives[group[static_cast<size_t>(i)]] += 1;
    }
  }
  sheet.positive_rate_by_group.resize(2);
  for (int g = 0; g < 2; ++g) {
    sheet.positive_rate_by_group[static_cast<size_t>(g)] =
        sheet.group_counts[static_cast<size_t>(g)] > 0
            ? static_cast<double>(positives[g]) /
                  static_cast<double>(sheet.group_counts[static_cast<size_t>(g)])
            : 0.0;
  }

  // Per-feature statistics and group correlations.
  const int64_t n = data.size(), d = sheet.features;
  double gmean = 0.0;
  for (int64_t g : group) gmean += static_cast<double>(g);
  gmean /= static_cast<double>(n);
  for (int64_t f = 0; f < d; ++f) {
    FeatureSummary s;
    s.min = data.x[f];
    s.max = data.x[f];
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double v = data.x[i * d + f];
      sum += v;
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(n);
    double var = 0.0, sfg = 0.0, sgg = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double dv = data.x[i * d + f] - s.mean;
      const double dg = static_cast<double>(group[static_cast<size_t>(i)]) -
                        gmean;
      var += dv * dv;
      sfg += dv * dg;
      sgg += dg * dg;
    }
    var /= static_cast<double>(n);
    s.stddev = std::sqrt(std::max(var, 0.0));
    const double denom = std::sqrt(var * static_cast<double>(n) * sgg);
    s.group_correlation = denom > 1e-12 ? std::abs(sfg / denom) : 0.0;
    sheet.feature_summaries.push_back(s);
  }

  // Warnings.
  for (int g = 0; g < 2; ++g) {
    const double fraction =
        static_cast<double>(sheet.group_counts[static_cast<size_t>(g)]) /
        static_cast<double>(n);
    if (fraction < config.min_group_fraction) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "group %d underrepresented (%.1f%% of examples)", g,
                    fraction * 100.0);
      sheet.warnings.push_back(buf);
    }
  }
  if (sheet.classes == 2) {
    const double gap = std::abs(sheet.positive_rate_by_group[0] -
                                sheet.positive_rate_by_group[1]);
    if (gap > config.max_label_disparity) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "label disparity across groups: %.3f positive-rate gap",
                    gap);
      sheet.warnings.push_back(buf);
    }
  }
  for (size_t f = 0; f < sheet.feature_summaries.size(); ++f) {
    if (sheet.feature_summaries[f].group_correlation >
        config.max_group_correlation) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "feature %zu is a proxy for the protected attribute "
                    "(|corr| = %.2f)",
                    f, sheet.feature_summaries[f].group_correlation);
      sheet.warnings.push_back(buf);
    }
  }
  return sheet;
}

}  // namespace dlsys
