#include "src/fairness/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dlsys {

double FairnessReport::DemographicParityGap() const {
  return std::abs(positive_rate[0] - positive_rate[1]);
}

double FairnessReport::DisparateImpactRatio() const {
  const double lo = std::min(positive_rate[0], positive_rate[1]);
  const double hi = std::max(positive_rate[0], positive_rate[1]);
  if (hi == 0.0) return 1.0;
  return lo / hi;
}

double FairnessReport::EqualOpportunityGap() const {
  return std::abs(tpr[0] - tpr[1]);
}

double FairnessReport::EqualizedOddsGap() const {
  return std::max(std::abs(tpr[0] - tpr[1]), std::abs(fpr[0] - fpr[1]));
}

double FairnessReport::PredictiveParityGap() const {
  return std::abs(ppv[0] - ppv[1]);
}

double FairnessReport::OverallAccuracy() const {
  const double total = static_cast<double>(count[0] + count[1]);
  if (total == 0.0) return 0.0;
  return (accuracy[0] * count[0] + accuracy[1] * count[1]) / total;
}

std::string FairnessReport::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "pos_rate: %.3f / %.3f  tpr: %.3f / %.3f  fpr: %.3f / %.3f\n"
                "dp_gap=%.3f  di_ratio=%.3f  eo_gap=%.3f  eodds_gap=%.3f  "
                "acc=%.3f",
                positive_rate[0], positive_rate[1], tpr[0], tpr[1], fpr[0],
                fpr[1], DemographicParityGap(), DisparateImpactRatio(),
                EqualOpportunityGap(), EqualizedOddsGap(), OverallAccuracy());
  return buf;
}

Result<FairnessReport> AuditFairness(const std::vector<int64_t>& predictions,
                                     const std::vector<int64_t>& labels,
                                     const std::vector<int64_t>& group) {
  if (predictions.size() != labels.size() ||
      labels.size() != group.size()) {
    return Status::InvalidArgument("prediction/label/group length mismatch");
  }
  if (predictions.empty()) {
    return Status::InvalidArgument("empty audit input");
  }
  // Per-group confusion counts.
  int64_t tp[2] = {0, 0}, fp[2] = {0, 0}, tn[2] = {0, 0}, fn[2] = {0, 0};
  for (size_t i = 0; i < predictions.size(); ++i) {
    const int64_t p = predictions[i], y = labels[i], g = group[i];
    if ((p != 0 && p != 1) || (y != 0 && y != 1) || (g != 0 && g != 1)) {
      return Status::InvalidArgument("audit inputs must be binary");
    }
    if (p == 1 && y == 1) ++tp[g];
    if (p == 1 && y == 0) ++fp[g];
    if (p == 0 && y == 0) ++tn[g];
    if (p == 0 && y == 1) ++fn[g];
  }
  FairnessReport out;
  for (int g = 0; g < 2; ++g) {
    const int64_t n = tp[g] + fp[g] + tn[g] + fn[g];
    out.count[g] = n;
    if (n == 0) continue;
    out.positive_rate[g] =
        static_cast<double>(tp[g] + fp[g]) / static_cast<double>(n);
    const int64_t pos = tp[g] + fn[g];
    const int64_t neg = fp[g] + tn[g];
    out.tpr[g] = pos > 0 ? static_cast<double>(tp[g]) / pos : 0.0;
    out.fpr[g] = neg > 0 ? static_cast<double>(fp[g]) / neg : 0.0;
    const int64_t predicted_pos = tp[g] + fp[g];
    out.ppv[g] = predicted_pos > 0
                     ? static_cast<double>(tp[g]) / predicted_pos
                     : 0.0;
    out.accuracy[g] = static_cast<double>(tp[g] + tn[g]) / n;
  }
  return out;
}

}  // namespace dlsys
