#ifndef DLSYS_PARALLEL_STRATEGY_H_
#define DLSYS_PARALLEL_STRATEGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"

/// \file strategy.h
/// \brief Optimize-then-parallelize (tutorial Section 2.2, FlexFlow).
///
/// FlexFlow's insight is to spend an explicit *optimization step* —
/// simulate candidate parallelization strategies and search the space —
/// before launching training. We reproduce that design: an analytic
/// simulator prices a per-layer (degree, dimension) strategy on a device
/// graph, and an MCMC search (plus greedy/random/data-parallel baselines)
/// minimizes simulated step time.

namespace dlsys {

/// \brief A homogeneous device fleet with a shared interconnect.
struct DeviceGraph {
  int64_t num_devices = 4;
  double device_flops = 1e12;             ///< per-device FLOP/s
  double link_bandwidth_bytes_per_s = 12.5e9;  ///< per-link bandwidth
  double link_latency_seconds = 5e-6;
};

/// \brief Per-layer workload description for the simulator.
struct ParLayerCost {
  int64_t forward_flops = 0;
  int64_t backward_flops = 0;   ///< usually ~2x forward
  int64_t param_bytes = 0;      ///< synced per step under data parallelism
  int64_t activation_bytes = 0; ///< crosses layer boundaries
};

/// \brief How one layer splits its work.
enum class ParallelDim {
  kData,   ///< replicate params, split the batch, all-reduce gradients
  kModel,  ///< split params, gather activations
};

/// \brief One layer's assignment: a parallelism degree and dimension.
struct LayerAssignment {
  int64_t degree = 1;
  ParallelDim dim = ParallelDim::kData;
};

/// \brief A full strategy: one assignment per layer.
struct Strategy {
  std::vector<LayerAssignment> layers;
  std::string ToString() const;
};

/// \brief Analytic simulator pricing a strategy's training-step time.
class ParallelSimulator {
 public:
  ParallelSimulator(DeviceGraph graph, std::vector<ParLayerCost> layers);

  /// \brief Simulated seconds for one training step under \p strategy.
  /// Compute splits perfectly across the degree; data parallelism pays a
  /// ring all-reduce of parameter gradients; model parallelism pays an
  /// activation all-gather; a boundary whose neighbouring assignments
  /// differ pays an activation redistribution.
  double StepSeconds(const Strategy& strategy) const;

  /// \brief The all-data-parallel strategy at full device count.
  Strategy DataParallelBaseline() const;

  /// \brief Valid degrees (divisors of the device count).
  std::vector<int64_t> ValidDegrees() const;

  /// \brief Number of layers.
  int64_t num_layers() const {
    return static_cast<int64_t>(layers_.size());
  }

 private:
  DeviceGraph graph_;
  std::vector<ParLayerCost> layers_;
};

/// \brief Search configuration for OptimizeStrategy.
struct SearchConfig {
  int64_t iterations = 2000;  ///< MCMC proposals
  double temperature = 0.05;  ///< Metropolis acceptance temperature
  uint64_t seed = 1;
};

/// \brief Outcome of a strategy search.
struct SearchResult {
  Strategy strategy;
  double step_seconds = 0.0;      ///< simulated cost of the found strategy
  double optimize_seconds = 0.0;  ///< wall-clock spent searching
  int64_t evaluated = 0;          ///< simulator invocations
};

/// \brief MCMC search over (degree, dim) per layer, starting from the
/// data-parallel baseline.
SearchResult OptimizeStrategy(const ParallelSimulator& sim,
                              const SearchConfig& config);

/// \brief Greedy baseline: optimizes each layer independently, ignoring
/// boundary redistribution costs.
SearchResult GreedyStrategy(const ParallelSimulator& sim);

/// \brief Random-search baseline with the same evaluation budget.
SearchResult RandomStrategy(const ParallelSimulator& sim,
                            const SearchConfig& config);

}  // namespace dlsys

#endif  // DLSYS_PARALLEL_STRATEGY_H_
