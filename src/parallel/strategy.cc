#include "src/parallel/strategy.h"

#include <algorithm>
#include <cmath>

#include "src/core/metrics.h"

namespace dlsys {

std::string Strategy::ToString() const {
  std::string out;
  for (const auto& a : layers) {
    out += (a.dim == ParallelDim::kData ? "d" : "m");
    out += std::to_string(a.degree);
    out += " ";
  }
  return out;
}

ParallelSimulator::ParallelSimulator(DeviceGraph graph,
                                     std::vector<ParLayerCost> layers)
    : graph_(graph), layers_(std::move(layers)) {
  DLSYS_CHECK(graph_.num_devices > 0, "device count must be positive");
  DLSYS_CHECK(!layers_.empty(), "no layers");
}

std::vector<int64_t> ParallelSimulator::ValidDegrees() const {
  std::vector<int64_t> out;
  for (int64_t d = 1; d <= graph_.num_devices; ++d) {
    if (graph_.num_devices % d == 0) out.push_back(d);
  }
  return out;
}

Strategy ParallelSimulator::DataParallelBaseline() const {
  Strategy s;
  s.layers.assign(layers_.size(),
                  {graph_.num_devices, ParallelDim::kData});
  return s;
}

double ParallelSimulator::StepSeconds(const Strategy& strategy) const {
  DLSYS_CHECK(strategy.layers.size() == layers_.size(),
              "strategy/layer count mismatch");
  const double bw = graph_.link_bandwidth_bytes_per_s;
  const double alpha = graph_.link_latency_seconds;
  double total = 0.0;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const ParLayerCost& c = layers_[i];
    const LayerAssignment& a = strategy.layers[i];
    DLSYS_CHECK(a.degree >= 1 && a.degree <= graph_.num_devices,
                "invalid degree");
    const double d = static_cast<double>(a.degree);
    // Compute splits perfectly over the degree.
    total += static_cast<double>(c.forward_flops + c.backward_flops) /
             (d * graph_.device_flops);
    if (a.degree > 1) {
      const double ring = 2.0 * (d - 1.0) / d;
      if (a.dim == ParallelDim::kData) {
        // Gradient all-reduce of replicated parameters.
        total += ring * static_cast<double>(c.param_bytes) / bw +
                 2.0 * (d - 1.0) * alpha;
      } else {
        // Activation all-gather (params are sharded, no grad sync).
        total += ring * static_cast<double>(c.activation_bytes) / bw +
                 2.0 * (d - 1.0) * alpha;
      }
    }
    // Boundary redistribution when the tensor layout changes.
    if (i + 1 < layers_.size()) {
      const LayerAssignment& b = strategy.layers[i + 1];
      if (a.degree != b.degree || a.dim != b.dim) {
        total += static_cast<double>(c.activation_bytes) / bw + alpha;
      }
    }
  }
  return total;
}

SearchResult OptimizeStrategy(const ParallelSimulator& sim,
                              const SearchConfig& config) {
  Stopwatch watch;
  Rng rng(config.seed);
  const std::vector<int64_t> degrees = sim.ValidDegrees();
  SearchResult out;
  out.strategy = sim.DataParallelBaseline();
  out.step_seconds = sim.StepSeconds(out.strategy);
  Strategy current = out.strategy;
  double current_cost = out.step_seconds;
  int64_t evaluated = 1;
  for (int64_t it = 0; it < config.iterations; ++it) {
    Strategy proposal = current;
    // Mutate one layer's assignment.
    const int64_t li = static_cast<int64_t>(rng.Index(
        static_cast<uint64_t>(sim.num_layers())));
    LayerAssignment& a = proposal.layers[static_cast<size_t>(li)];
    a.degree = degrees[rng.Index(degrees.size())];
    a.dim = rng.Bernoulli(0.5) ? ParallelDim::kData : ParallelDim::kModel;
    const double cost = sim.StepSeconds(proposal);
    ++evaluated;
    const bool accept =
        cost < current_cost ||
        rng.Uniform() <
            std::exp((current_cost - cost) /
                     (config.temperature * current_cost + 1e-30));
    if (accept) {
      current = std::move(proposal);
      current_cost = cost;
      if (cost < out.step_seconds) {
        out.step_seconds = cost;
        out.strategy = current;
      }
    }
  }
  out.optimize_seconds = watch.Seconds();
  out.evaluated = evaluated;
  return out;
}

SearchResult GreedyStrategy(const ParallelSimulator& sim) {
  Stopwatch watch;
  const std::vector<int64_t> degrees = sim.ValidDegrees();
  SearchResult out;
  out.strategy = sim.DataParallelBaseline();
  int64_t evaluated = 0;
  // Optimize layers one at a time, holding the others fixed.
  for (int64_t li = 0; li < sim.num_layers(); ++li) {
    double best = sim.StepSeconds(out.strategy);
    LayerAssignment best_a = out.strategy.layers[static_cast<size_t>(li)];
    for (int64_t deg : degrees) {
      for (ParallelDim dim : {ParallelDim::kData, ParallelDim::kModel}) {
        Strategy trial = out.strategy;
        trial.layers[static_cast<size_t>(li)] = {deg, dim};
        const double cost = sim.StepSeconds(trial);
        ++evaluated;
        if (cost < best) {
          best = cost;
          best_a = {deg, dim};
        }
      }
    }
    out.strategy.layers[static_cast<size_t>(li)] = best_a;
  }
  out.step_seconds = sim.StepSeconds(out.strategy);
  out.optimize_seconds = watch.Seconds();
  out.evaluated = evaluated;
  return out;
}

SearchResult RandomStrategy(const ParallelSimulator& sim,
                            const SearchConfig& config) {
  Stopwatch watch;
  Rng rng(config.seed);
  const std::vector<int64_t> degrees = sim.ValidDegrees();
  SearchResult out;
  out.strategy = sim.DataParallelBaseline();
  out.step_seconds = sim.StepSeconds(out.strategy);
  for (int64_t it = 0; it < config.iterations; ++it) {
    Strategy trial;
    trial.layers.resize(static_cast<size_t>(sim.num_layers()));
    for (auto& a : trial.layers) {
      a.degree = degrees[rng.Index(degrees.size())];
      a.dim = rng.Bernoulli(0.5) ? ParallelDim::kData : ParallelDim::kModel;
    }
    const double cost = sim.StepSeconds(trial);
    if (cost < out.step_seconds) {
      out.step_seconds = cost;
      out.strategy = std::move(trial);
    }
  }
  out.optimize_seconds = watch.Seconds();
  out.evaluated = config.iterations;
  return out;
}

}  // namespace dlsys
