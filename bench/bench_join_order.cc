// E24 — Learned join ordering (Part 2: plan generation with neural
// networks): plan quality vs Selinger DP (optimal), greedy, and random,
// plus planning-time scaling where exhaustive enumeration explodes.

#include <cmath>
#include <cstdio>

#include "src/core/metrics.h"
#include "src/db/join.h"
#include "src/learned/join_order.h"

int main() {
  using namespace dlsys;
  std::printf("E24: learned join ordering (value network trained on 200 "
              "random queries)\n");
  JoinOptimizerConfig config;
  config.training_queries = 200;
  Stopwatch train_watch;
  auto learned = LearnedJoinOptimizer::Train(config);
  if (!learned.ok()) {
    std::fprintf(stderr, "%s\n", learned.status().ToString().c_str());
    return 1;
  }
  std::printf("training time: %.1f s, model %lld bytes\n\n",
              train_watch.Seconds(),
              static_cast<long long>(learned->MemoryBytes()));

  std::printf("E24a: mean log10(plan cost / optimal) on 30 held-out "
              "queries per size\n");
  std::printf("%-10s %10s %10s %10s\n", "relations", "learned", "greedy",
              "random");
  for (int64_t n : {5, 8, 11, 14}) {
    Rng rng(200 + static_cast<uint64_t>(n));
    double learned_gap = 0.0, greedy_gap = 0.0, random_gap = 0.0;
    const int trials = 30;
    for (int i = 0; i < trials; ++i) {
      JoinQuery q = MakeJoinQuery(n, 0.25, &rng);
      auto best = OptimalLeftDeep(q);
      if (!best.ok()) return 1;
      const double opt_cost = std::log10(PlanCost(q, *best));
      learned_gap += std::log10(PlanCost(q, learned->PlanFor(q))) - opt_cost;
      greedy_gap += std::log10(PlanCost(q, GreedyLeftDeep(q))) - opt_cost;
      random_gap += std::log10(PlanCost(q, RandomOrder(q, &rng))) - opt_cost;
    }
    std::printf("%-10lld %10.2f %10.2f %10.2f\n", static_cast<long long>(n),
                learned_gap / trials, greedy_gap / trials,
                random_gap / trials);
  }

  std::printf("\nE24b: planning time per query (ms)\n");
  std::printf("%-10s %12s %12s %12s\n", "relations", "dp_optimal",
              "learned", "greedy");
  for (int64_t n : {8, 12, 16, 20}) {
    Rng rng(300 + static_cast<uint64_t>(n));
    JoinQuery q = MakeJoinQuery(n, 0.25, &rng);
    Stopwatch dp_watch;
    auto best = OptimalLeftDeep(q);
    const double dp_ms = dp_watch.Seconds() * 1e3;
    Stopwatch learned_watch;
    learned->PlanFor(q);
    const double learned_ms = learned_watch.Seconds() * 1e3;
    Stopwatch greedy_watch;
    GreedyLeftDeep(q);
    const double greedy_ms = greedy_watch.Seconds() * 1e3;
    std::printf("%-10lld %12.2f %12.2f %12.2f\n", static_cast<long long>(n),
                best.ok() ? dp_ms : -1.0, learned_ms, greedy_ms);
  }
  std::printf("\nexpected shape: the learned planner lands within a small "
              "gap of the DP optimum (far below random, near greedy) while "
              "its planning time stays flat as DP's explodes "
              "exponentially — the case for learned optimizers.\n");
  return 0;
}
