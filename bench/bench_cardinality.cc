// E12 — Learned multi-attribute selectivity estimation vs histogram AVI
// (Part 2, Hasan et al.): the learned estimator's q-error advantage
// grows with inter-attribute correlation and attribute count.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/db/histogram.h"
#include "src/learned/cardinality.h"

namespace {
struct QErrorStats {
  double mean, p50, p95;
};

QErrorStats Stats(std::vector<double> errs) {
  std::sort(errs.begin(), errs.end());
  double mean = 0.0;
  for (double e : errs) mean += e;
  mean /= static_cast<double>(errs.size());
  return {mean, errs[errs.size() / 2], errs[errs.size() * 95 / 100]};
}
}  // namespace

int main() {
  using namespace dlsys;
  std::printf("E12: learned cardinality vs histogram AVI "
              "(10k rows, 400 train / 100 test queries)\n");
  std::printf("%-6s %-6s %-9s %9s %9s %9s\n", "cols", "corr", "estimator",
              "mean_q", "p50_q", "p95_q");
  for (int64_t cols : {2, 4, 6}) {
    for (double corr : {0.0, 0.5, 0.9}) {
      Rng rng(61);
      Table t = MakeCorrelatedTable(10000, cols, corr, &rng);
      Rng wrng(67);
      auto train_q = MakeWorkload(t, 400, &wrng);
      auto test_q = MakeWorkload(t, 100, &wrng);
      CardinalityConfig config;
      config.epochs = 60;
      auto learned = LearnedCardinality::Train(t, train_q, config);
      if (!learned.ok()) return 1;
      AviEstimator avi(t, 64);
      std::vector<double> avi_errs, learned_errs;
      for (const auto& q : test_q) {
        const double truth = TrueSelectivity(t, q);
        avi_errs.push_back(QError(avi.Estimate(q), truth));
        learned_errs.push_back(QError(learned->Estimate(q), truth));
      }
      QErrorStats a = Stats(avi_errs);
      QErrorStats l = Stats(learned_errs);
      std::printf("%-6lld %-6.1f %-9s %9.2f %9.2f %9.2f\n",
                  static_cast<long long>(cols), corr, "avi", a.mean, a.p50,
                  a.p95);
      std::printf("%-6lld %-6.1f %-9s %9.2f %9.2f %9.2f\n",
                  static_cast<long long>(cols), corr, "learned", l.mean,
                  l.p50, l.p95);
    }
  }
  std::printf("\nexpected shape: AVI is fine at corr=0 but its q-error "
              "explodes with correlation and attribute count; the learned "
              "estimator stays within small constant q-errors.\n");
  return 0;
}
