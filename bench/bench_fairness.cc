// E15 — Bias in training data propagates to models; mitigation at each
// intervention point restores parity at bounded accuracy cost
// (Section 4.1).

#include <cstdio>

#include "src/fairness/loan_data.h"
#include "src/fairness/metrics.h"
#include "src/fairness/mitigation.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace {

using namespace dlsys;

struct Outcome {
  double dp_gap, eo_gap, di_ratio, accuracy;
};

Outcome Run(const LoanData& train, const LoanData& test, const char* mode) {
  Sequential net = MakeMlp(5, {16}, 2);
  Rng rng(7);
  net.Init(&rng);
  const std::string m(mode);
  if (m == "adversarial") {
    AdversarialConfig config;
    config.lambda = 0.5;
    config.epochs = 30;
    AdversarialDebias(&net, train.data, train.group, config);
  } else {
    Dataset data = train.data;
    if (m == "reweigh") {
      auto rw = ReweighDataset(train.data, train.group, 55);
      if (rw.ok()) data = rw->data;
    }
    Sgd opt(0.05, 0.9);
    TrainConfig tc;
    tc.epochs = 30;
    Train(&net, &opt, data, tc);
    if (m == "ablate") {
      AblateCorrelatedNeurons(&net, train.data, train.group, 4);
    }
  }
  std::vector<int64_t> pred = Predict(&net, test.data.x);
  auto report = AuditFairness(pred, test.fair_label, test.group);
  int64_t hits = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == test.fair_label[i]) ++hits;
  }
  return {report->DemographicParityGap(), report->EqualOpportunityGap(),
          report->DisparateImpactRatio(),
          static_cast<double>(hits) / static_cast<double>(pred.size())};
}

}  // namespace

int main() {
  std::printf("E15: fairness under injected label bias "
              "(metrics vs bias-free ground truth)\n");
  std::printf("%-6s %-12s %8s %8s %9s %9s\n", "bias", "mitigation",
              "dp_gap", "eo_gap", "di_ratio", "accuracy");
  for (double bias : {0.0, 0.3, 0.6, 0.9}) {
    LoanDataConfig train_config;
    train_config.n = 5000;
    train_config.bias_strength = bias;
    train_config.seed = 1;
    LoanData train = MakeLoanData(train_config);
    LoanDataConfig test_config = train_config;
    test_config.n = 2500;
    test_config.seed = 2;
    LoanData test = MakeLoanData(test_config);
    for (const char* mode : {"none", "reweigh", "adversarial", "ablate"}) {
      Outcome o = Run(train, test, mode);
      std::printf("%-6.1f %-12s %8.3f %8.3f %9.3f %9.3f\n", bias, mode,
                  o.dp_gap, o.eo_gap, o.di_ratio, o.accuracy);
    }
  }
  std::printf("\nexpected shape: with no injected bias all variants are "
              "fair; gaps grow with bias strength for the unmitigated "
              "model; every mitigation shrinks the gaps, reweighing "
              "cheapest in accuracy.\n");
  return 0;
}
