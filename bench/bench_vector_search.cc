// E28 — High-dimensional vector similarity search (Part 2): the IVF
// index's recall/latency frontier against exact brute force on a
// clustered embedding corpus.

#include <cstdio>

#include "src/core/metrics.h"
#include "src/vecsearch/knn.h"

int main() {
  using namespace dlsys;
  Rng rng(127);
  const int64_t n = 50000, dims = 32, k = 10;
  Tensor base = MakeEmbeddingCorpus(n, dims, 64, &rng);
  // Query set: perturbed base vectors.
  const int64_t num_queries = 100;
  Tensor queries({num_queries, dims});
  for (int64_t q = 0; q < num_queries; ++q) {
    for (int64_t d = 0; d < dims; ++d) {
      queries[q * dims + d] = base[(q * 331) * dims + d] +
                              static_cast<float>(rng.Gaussian() * 0.1);
    }
  }
  // Exact ground truth + brute-force latency.
  std::vector<std::vector<int64_t>> truth;
  Stopwatch brute_watch;
  for (int64_t q = 0; q < num_queries; ++q) {
    truth.push_back(BruteForceKnn(base, queries.data() + q * dims, k));
  }
  const double brute_us =
      brute_watch.Seconds() * 1e6 / static_cast<double>(num_queries);
  std::printf("E28: IVF recall/latency on %lld x %lld embeddings "
              "(brute force: %.0f us/query)\n",
              static_cast<long long>(n), static_cast<long long>(dims),
              brute_us);
  std::printf("%-8s %-8s %12s %14s %10s %12s\n", "lists", "nprobe",
              "recall@10", "us_per_query", "speedup", "index_KB");
  for (int64_t lists : {64, 256}) {
    auto index = IvfIndex::Build(base, lists, 8, 131);
    if (!index.ok()) return 1;
    for (int64_t nprobe : std::vector<int64_t>{1, 2, 4, 8, 16}) {
      double recall = 0.0;
      Stopwatch watch;
      for (int64_t q = 0; q < num_queries; ++q) {
        auto approx = index->Search(queries.data() + q * dims, k, nprobe);
        recall += RecallAtK(approx, truth[static_cast<size_t>(q)]);
      }
      const double us =
          watch.Seconds() * 1e6 / static_cast<double>(num_queries);
      std::printf("%-8lld %-8lld %12.3f %14.1f %9.1fx %12.1f\n",
                  static_cast<long long>(lists),
                  static_cast<long long>(nprobe),
                  recall / static_cast<double>(num_queries), us,
                  brute_us / us,
                  static_cast<double>(index->MemoryBytes()) / 1e3);
    }
  }
  std::printf("\nexpected shape: recall climbs toward 1.0 with nprobe "
              "while the speedup over brute force shrinks — the classic "
              "recall/latency frontier; more lists shift the frontier "
              "toward better speedups at equal recall.\n");
  return 0;
}
