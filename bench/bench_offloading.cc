// E9 — Offloading intermediate results to a slower memory tier trades
// training time for device memory (Section 2.3, vDNN).

#include <cstdio>

#include "src/data/synthetic.h"
#include "src/memsched/checkpoint.h"
#include "src/memsched/offload.h"
#include "src/nn/layers.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

int main() {
  using namespace dlsys;
  Rng rng(47);
  Dataset batch = MakeGaussianBlobs(512, 16, 4, 3.0, &rng);
  Sequential net;
  int64_t prev = 16;
  for (int64_t i = 0; i < 24; ++i) {
    net.Emplace<Dense>(prev, 96);
    net.Emplace<ReLU>();
    prev = 96;
  }
  net.Emplace<Dense>(prev, 4);
  net.Init(&rng);
  auto costs = ProbeLayerCosts(&net, batch.x);
  int64_t full = 0;
  for (const auto& c : costs) full += c.cached_bytes;

  // Measure one training step's compute time for the overlap estimate.
  Sgd opt(0.01);
  Stopwatch watch;
  CheckpointedStep(&net, &opt, batch, PlanNone(net.size()));
  const double compute_s = watch.Seconds();

  std::printf("E9a: device-budget sweep (PCIe tier, 12 GB/s), full "
              "activation set = %.0f KB, step compute = %.2f ms\n",
              static_cast<double>(full) / 1e3, compute_s * 1e3);
  std::printf("%-13s %12s %14s %14s %14s\n", "budget_frac", "device_KB",
              "moved_KB", "transfer_ms", "overhead_ms");
  SlowTier tier;
  for (double frac : {1.0, 0.75, 0.5, 0.25, 0.1}) {
    const int64_t budget =
        static_cast<int64_t>(frac * static_cast<double>(full));
    auto set = ChooseOffloadSet(costs, budget);
    if (!set.ok()) {
      std::printf("%-13.2f %12s\n", frac, "infeasible");
      continue;
    }
    OffloadEstimate est = EstimateOffload(costs, *set, tier, compute_s);
    std::printf("%-13.2f %12.0f %14.0f %14.3f %14.3f\n", frac,
                static_cast<double>(est.device_peak_bytes) / 1e3,
                static_cast<double>(est.transferred_bytes) / 1e3,
                est.transfer_seconds * 1e3, est.overhead_seconds * 1e3);
  }

  std::printf("\nE9b: slow-tier bandwidth sweep at a 25%% device budget\n");
  std::printf("%-16s %14s %14s\n", "bandwidth_GB/s", "transfer_ms",
              "overhead_ms");
  auto set = ChooseOffloadSet(costs, full / 4);
  if (set.ok()) {
    for (double gbps : {32.0, 12.0, 4.0, 1.0}) {
      SlowTier t{gbps * 1e9, 5e-6};
      OffloadEstimate est = EstimateOffload(costs, *set, t, compute_s);
      std::printf("%-16.0f %14.3f %14.3f\n", gbps,
                  est.transfer_seconds * 1e3, est.overhead_seconds * 1e3);
    }
  }
  std::printf("\nexpected shape: device memory falls with the budget while "
              "transferred bytes and overhead rise; fast tiers hide "
              "transfers behind compute (zero overhead), slow tiers do "
              "not — the vDNN trade.\n");
  return 0;
}
