// E27 — Natural-language querying (Part 2): an RNN maps NL sentences to
// query predicates; the task is order-sensitive, so the bag-of-words
// baseline is capped near 50% on the column slot while the RNN solves
// it. Sweeps training-set size (the data-efficiency curve).

#include <cstdio>

#include "src/nlq/query_language.h"
#include "src/nlq/rnn.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

int main() {
  using namespace dlsys;
  Rng rng(113);
  SequenceDataset test = MakeNlqData(600, &rng);

  std::printf("E27: NL-to-predicate accuracy vs training sentences "
              "(8 classes: 4 columns x 2 comparators)\n");
  std::printf("%-12s %10s %14s %12s\n", "sentences", "rnn", "bag-of-words",
              "rnn_train_s");
  for (int64_t n : {100, 300, 1000, 3000}) {
    Rng drng(200 + static_cast<uint64_t>(n));
    SequenceDataset train = MakeNlqData(n, &drng);

    RnnClassifier rnn(kNlqVocabSize, 8, 24, kNlqNumClasses);
    Rng mrng(7);
    rnn.Init(&mrng);
    MetricsReport report = rnn.Train(train, 30, 32, 0.1, 7);

    Dataset bow_train;
    bow_train.x = NlqBagOfWords(train);
    bow_train.y = train.labels;
    Dataset bow_test;
    bow_test.x = NlqBagOfWords(test);
    bow_test.y = test.labels;
    Sequential bow = MakeMlp(kNlqVocabSize, {32}, kNlqNumClasses);
    bow.Init(&mrng);
    Adam opt(0.01);
    TrainConfig tc;
    tc.epochs = 40;
    Train(&bow, &opt, bow_train, tc);

    std::printf("%-12lld %10.3f %14.3f %12.2f\n", static_cast<long long>(n),
                rnn.Accuracy(test), Evaluate(&bow, bow_test).accuracy,
                report.Get(metric::kTrainSeconds));
  }
  // A few rendered examples with predictions.
  std::printf("\nsample parses:\n");
  RnnClassifier rnn(kNlqVocabSize, 8, 24, kNlqNumClasses);
  Rng mrng(7);
  rnn.Init(&mrng);
  Rng drng(99);
  SequenceDataset train = MakeNlqData(2000, &drng);
  rnn.Train(train, 30, 32, 0.1, 7);
  SequenceDataset sample = MakeNlqData(4, &rng);
  Tensor logits = rnn.Forward(sample);
  for (int64_t i = 0; i < sample.size(); ++i) {
    int64_t best = 0;
    for (int64_t c = 1; c < kNlqNumClasses; ++c) {
      if (logits[i * kNlqNumClasses + c] >
          logits[i * kNlqNumClasses + best]) {
        best = c;
      }
    }
    std::printf("  \"%s\" -> predicate(c%lld %s ...)  [truth c%lld %s]\n",
                NlqToString(sample, i).c_str(),
                static_cast<long long>(best / kNlqNumOps),
                best % kNlqNumOps == 1 ? ">" : "<",
                static_cast<long long>(
                    sample.labels[static_cast<size_t>(i)] / kNlqNumOps),
                sample.labels[static_cast<size_t>(i)] % kNlqNumOps == 1
                    ? ">"
                    : "<");
  }
  std::printf("\nexpected shape: bag-of-words plateaus near 50%% (it sees "
              "both columns but not which is left of the comparator); the "
              "RNN climbs to ~100%% with enough sentences.\n");
  return 0;
}
