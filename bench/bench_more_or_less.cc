// E29 — "More or Less: When and How to Build Ensembles" (tutorial
// citation [107], Wasay & Idreos): at a FIXED total parameter budget,
// is it better to train many small networks or few large ones? Sweeps
// the (members x width) grid at constant budget, across dataset sizes.

#include <cstdio>

#include "src/data/synthetic.h"
#include "src/ensemble/ensemble.h"
#include "src/nn/train.h"

namespace {
// Width so that k members of an (16 -> w -> 8) MLP use ~budget params.
int64_t WidthForBudget(int64_t budget, int64_t k) {
  // params(w) = 16w + w + 8w + 8 = 25w + 8 per member.
  return std::max<int64_t>(2, (budget / k - 8) / 25);
}
}  // namespace

int main() {
  using namespace dlsys;
  const int64_t budget = 12000;  // total parameters across the ensemble

  std::printf("E29: fixed parameter budget (%lld params) split across "
              "ensemble members\n",
              static_cast<long long>(budget));
  std::printf("%-10s %-10s %-9s %12s %12s\n", "examples", "members",
              "width", "accuracy", "train_s");
  for (int64_t examples : {400, 4000}) {
    Rng rng(131);
    Dataset data =
        MakeGaussianBlobs(examples + examples / 4, 16, 8, 1.0, &rng);
    auto split =
        Split(data, static_cast<double>(examples) /
                        static_cast<double>(data.size()));
    for (int64_t k : {1, 2, 4, 8, 16}) {
      const int64_t width = WidthForBudget(budget, k);
      MemberBuilder builder = [width](int64_t) {
        return MakeMlp(16, {width}, 8);
      };
      TrainConfig tc;
      tc.epochs = 12;
      auto run = TrainFullEnsemble(builder, k, split.train, tc, 0.05,
                                   17 + static_cast<uint64_t>(k));
      if (!run.ok()) return 1;
      auto& e = const_cast<Ensemble&>(run->ensemble);
      std::printf("%-10lld %-10lld %-9lld %12.3f %12.3f\n",
                  static_cast<long long>(examples),
                  static_cast<long long>(k),
                  static_cast<long long>(width), e.Accuracy(split.test),
                  run->report.Get(metric::kTrainSeconds));
    }
  }
  std::printf("\nexpected shape: a single large model is never optimal at "
              "fixed budget — splitting into several members buys variance "
              "reduction; returns flatten once members get too small to "
              "fit the task (the More-or-Less question: the sweet spot is "
              "interior and data-dependent).\n");
  return 0;
}
