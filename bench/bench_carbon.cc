// E19 — Energy and CO2 scale with FLOPs, hardware efficiency, PUE, and
// region; carbon-aware placement cuts emissions (Section 4.3,
// ML-Emissions-Calculator-style).

#include <cstdio>

#include "src/green/energy.h"
#include "src/nn/train.h"

int main() {
  using namespace dlsys;
  auto hardware = StandardHardware();
  auto regions = StandardRegions();

  std::printf("E19a: footprint grid — one job (1e18 FLOPs) across "
              "hardware x region (kg CO2)\n");
  std::printf("%-16s", "hardware\\region");
  for (const auto& r : regions) std::printf(" %14s", r.name.c_str());
  std::printf("\n");
  TrainingJob job{1e18};
  for (const auto& hw : hardware) {
    std::printf("%-16s", hw.name.c_str());
    for (const auto& r : regions) {
      auto fp = EstimateFootprint(job, hw, r);
      std::printf(" %14.2f", fp.ok() ? fp->co2_grams / 1e3 : -1.0);
    }
    std::printf("  (%.1f GF/W, %.1f h)\n", hw.FlopsPerWatt() / 1e9,
                job.total_flops / hw.EffectiveFlops() / 3600.0);
  }

  std::printf("\nE19b: model-size sweep on gpu-high / mixed-grid "
              "(1M examples x 100 epochs)\n");
  std::printf("%-14s %14s %12s %12s\n", "model", "flops", "kWh", "kg_CO2");
  for (int64_t width : {512, 2048, 8192}) {
    Sequential net = MakeMlp(256, {width, width, width}, 16);
    TrainingJob j = TrainingJob::ForNetwork(net, 1000000, 100);
    auto fp = EstimateFootprint(j, hardware[2], regions[0]);
    if (!fp.ok()) return 1;
    char name[32];
    std::snprintf(name, sizeof(name), "mlp-3x%lld",
                  static_cast<long long>(width));
    std::printf("%-14s %14.3g %12.3g %12.3g\n", name, j.total_flops,
                fp->facility_kwh, fp->co2_grams / 1e3);
  }

  std::printf("\nE19c: placement policies for the 1e18-FLOP job\n");
  auto naive = FastestPlacement(job, hardware, regions);
  auto aware_loose = CarbonAwarePlacement(job, hardware, regions, 1e9);
  if (!naive.ok() || !aware_loose.ok()) return 1;
  std::printf("%-24s %-16s %-14s %10s %12s\n", "policy", "hardware",
              "region", "hours", "kg_CO2");
  auto print = [&](const char* policy, const Placement& p) {
    std::printf("%-24s %-16s %-14s %10.1f %12.2f\n", policy,
                hardware[static_cast<size_t>(p.hardware_index)].name.c_str(),
                regions[static_cast<size_t>(p.region_index)].name.c_str(),
                p.footprint.runtime_seconds / 3600.0,
                p.footprint.co2_grams / 1e3);
  };
  print("fastest-first (naive)", *naive);
  print("carbon-aware (loose)", *aware_loose);
  const double fastest_runtime = naive->footprint.runtime_seconds;
  auto aware_tight =
      CarbonAwarePlacement(job, hardware, regions, fastest_runtime * 1.05);
  if (aware_tight.ok()) print("carbon-aware (tight)", *aware_tight);
  std::printf("\nexpected shape: CO2 spans >40x across the region axis "
              "alone; efficient hardware and clean regions compound; "
              "carbon-aware placement recovers most of that even under a "
              "deadline.\n");
  return 0;
}
