// Observability overhead bench (E33): throughput of the E31 inference
// workload (arena-planned engine, PredictInto hot loop) with tracing
// compiled in but disabled, sampled 1-in-64, and fully enabled, against
// an identical disabled baseline (an A/A pair, so the "off" row measures
// the disabled-branch cost plus run-to-run noise). Results land in
// BENCH_obs.json.
//
// The acceptance bar is the disabled row: instrumentation compiled in
// but switched off must cost < 2% throughput. The truly-compiled-out
// comparison is a separate -DDLSYS_OBS=0 build (exercised in CI), which
// this binary also runs under — there all four rows coincide.
//
// E38 (request tracing + attribution): the same 2% bar applied to the
// fleet layer — a chaos run with request-scoped span emission, critical-
// path attribution, and burn-rate alerting enabled ("traced") against
// the identical run with tracing disabled ("untraced"), interleaved
// min-of-reps. Tracing must also be a pure observer: the traced and
// untraced FleetReportJson exports must be bitwise identical (enforced
// in every mode — the sim is deterministic, so any divergence is a bug).
//
// Pass --smoke (or set DLSYS_BENCH_SMOKE=1) for a seconds-scale CI run.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/rng.h"
#include "src/fleet/chaos.h"
#include "src/fleet/fleet.h"
#include "src/infer/engine.h"
#include "src/nn/train.h"
#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/runtime/runtime.h"
#include "src/serve/loadgen.h"

namespace dlsys {
namespace {

bool g_smoke = false;

volatile float g_sink = 0.0f;  // defeats dead-code elimination

struct OverheadRow {
  const char* mode = "";
  double ms_per_batch = 0.0;
  double throughput_eps = 0.0;  ///< examples per second
  double overhead_pct = 0.0;    ///< vs the baseline row
  int64_t events = 0;           ///< spans drained after the timed run
};

/// One timed repetition: wall ms per call over `iters` PredictInto calls.
double OneRepMs(InferenceEngine* engine, const Tensor& x, int64_t batch,
                Tensor* out, int iters) {
  // Rewind the rings so every repetition records from the same state (a
  // full ring drops events and would make later reps cheaper).
  obs::ResetTrace();
  Stopwatch watch;
  for (int it = 0; it < iters; ++it) {
    DLSYS_CHECK(engine->PredictInto(x.data(), batch, out->data()).ok(),
                "predict failed");
    g_sink = (*out)[0];
  }
  return watch.Seconds() * 1000.0 / iters;
}

std::vector<OverheadRow> BenchOverhead() {
  Rng rng(61);
  // The E31 frontier workload: MLP engine, mid-size batch. Sized so one
  // batch is ~2 ms of kernel time — small enough to stress the per-op
  // span sites, large enough that thread-pool wakeup jitter (tens of
  // microseconds, the dominant noise at sub-ms batches) stays well
  // under the 2% bar being measured.
  Sequential net = MakeMlp(64, {g_smoke ? 64 : 512, g_smoke ? 32 : 512}, 10);
  net.Init(&rng);
  const int64_t batch = g_smoke ? 4 : 64;
  auto compiled = InferenceEngine::Compile(
      net, {64}, EngineConfig{batch});
  DLSYS_CHECK(compiled.ok(), "compile failed");
  InferenceEngine engine = std::move(compiled).value();

  Tensor x({batch, 64});
  x.FillGaussian(&rng, 1.0f);
  Tensor out({batch, engine.output_elems_per_example()});

  const int iters = g_smoke ? 20 : 25;
  const int reps = g_smoke ? 3 : 96;

  // Warm up the thread pool, caches, and clocks for a full measurement
  // interval so the first timed repetition is not penalized.
  for (int it = 0; it < iters; ++it) {
    DLSYS_CHECK(engine.PredictInto(x.data(), batch, out.data()).ok(), "warm");
    g_sink = out[0];
  }

  struct Mode {
    const char* name;
    bool enabled;
    int32_t sample_every;
  };
  constexpr int kModes = 4;
  const Mode modes[kModes] = {
      {"baseline", false, 1},  // A side of the A/A pair
      {"off", false, 1},       // B side: disabled-branch cost + noise
      {"sampled_64", true, 64},
      {"full", true, 1},
  };

  // Many short repetitions, interleaved round-robin with the mode order
  // rotated every cycle, so slow system phases (frequency scaling,
  // co-tenant noise) hit every mode and every cycle position equally.
  // Each mode's cost is then the minimum over repetitions: timing noise
  // on a fixed workload is one-sided (preemption and frequency dips only
  // ever add time), so the min over many short windows is the tightest
  // estimate of the true cost and is robust to drift across the run.
  std::vector<double> times[kModes];
  int64_t events[kModes] = {};
  for (int r = 0; r < reps; ++r) {
    for (int slot = 0; slot < kModes; ++slot) {
      const int m = (slot + r) % kModes;
      obs::SetTracingEnabled(modes[m].enabled);
      obs::SetTraceSampling(modes[m].sample_every);
      times[m].push_back(OneRepMs(&engine, x, batch, &out, iters));
      events[m] = static_cast<int64_t>(obs::DrainTrace().events.size());
    }
  }
  obs::SetTracingEnabled(false);
  obs::SetTraceSampling(1);
  obs::ResetTrace();

  std::vector<OverheadRow> rows;
  for (int m = 0; m < kModes; ++m) {
    OverheadRow row;
    row.mode = modes[m].name;
    row.ms_per_batch = *std::min_element(times[m].begin(), times[m].end());
    row.throughput_eps =
        static_cast<double>(batch) / (row.ms_per_batch / 1000.0);
    row.events = events[m];
    rows.push_back(row);
  }

  const double base = rows[0].ms_per_batch;
  for (OverheadRow& row : rows) {
    row.overhead_pct = 100.0 * (row.ms_per_batch - base) / base;
  }
  return rows;
}

// ------------------------------------------------ E38: fleet tracing

struct FleetTracingResult {
  double untraced_ms = 0.0;  ///< min wall ms for the whole fleet run
  double traced_ms = 0.0;
  double overhead_pct = 0.0;
  int64_t sim_events = 0;    ///< request spans on the sim track (traced)
  bool reports_equal = false;  ///< traced vs untraced FleetReportJson
};

/// One full chaos run, returning the wall time of Fleet::Run only (the
/// build/deploy cost is identical in both modes and excluded).
double OneFleetRunMs(const FleetConfig& config, const ChaosScenario& scenario,
                     const TraceLoadConfig& load, bool traced,
                     std::string* json, int64_t* sim_events) {
  obs::ResetTrace();
  obs::SetTracingEnabled(traced);
  auto fleet = Fleet::Create(config);
  DLSYS_CHECK(fleet.ok(), "fleet create failed");
  Rng rng(3);
  // Full runs use a model heavy enough that real batch execution — not
  // span bookkeeping — dominates the wall clock, mirroring how the <2%
  // bar is measured in E33: the cost being amortized is per-request, so
  // a toy model would measure the ring write, not the overhead ratio a
  // real deployment sees.
  Sequential net =
      MakeMlp(16, {g_smoke ? 24 : 1024, g_smoke ? 24 : 1024}, 4);
  net.Init(&rng);
  DLSYS_CHECK(fleet.value()->Deploy("m", std::move(net), {16}).ok(),
              "deploy failed");
  Stopwatch watch;
  auto report = fleet.value()->Run(scenario, load);
  const double ms = watch.Seconds() * 1000.0;
  DLSYS_CHECK(report.ok(), "fleet run failed");
  *json = FleetReportJson(report.value());
  obs::SetTracingEnabled(false);
  if (traced && sim_events != nullptr) {
    *sim_events = static_cast<int64_t>(
        obs::SimTrackOnly(obs::DrainTrace()).events.size());
  }
  obs::ResetTrace();
  return ms;
}

FleetTracingResult BenchFleetTracing() {
  FleetConfig config;
  config.replica_slots = 4;
  config.initial_replicas = 4;
  config.server.workers = 2;
  config.server.queue_capacity = 64;
  config.server.batch.max_batch = 8;
  config.server.batch.max_delay_ms = 1.0;
  config.server.cost.fixed_ms = 1.0;
  config.server.cost.per_example_ms = 0.25;
  config.server.default_deadline_ms = 50.0;
  config.autoscale.policy = ScalePolicy::kFixed;
  config.tick_ms = 50.0;
  config.window_ms = 500.0;
  config.slo.slo_latency_ms = 8.0;  // the alerter has work to do

  const double scale = g_smoke ? 0.25 : 0.5;
  auto scenario = MakeScenario("gray_failure", scale);
  DLSYS_CHECK(scenario.ok(), "scenario failed");
  TraceLoadConfig load;
  load.seed = 7;
  load.duration_ms = g_smoke ? 4000.0 : 12'000.0;
  load.base_rps = g_smoke ? 300.0 : 600.0;
  load.deadline_ms = 50.0;
  load.model = "m";

  FleetTracingResult result;
  result.untraced_ms = 1e300;
  result.traced_ms = 1e300;
  std::string json_untraced, json_traced;
  const int reps = g_smoke ? 2 : 7;
  for (int r = 0; r < reps; ++r) {
    // Alternate which mode goes first so slow system phases hit both.
    for (int slot = 0; slot < 2; ++slot) {
      const bool traced = ((slot + r) % 2) == 1;
      std::string json;
      const double ms = OneFleetRunMs(config, scenario.value(), load, traced,
                                      &json, &result.sim_events);
      if (traced) {
        result.traced_ms = std::min(result.traced_ms, ms);
        json_traced = json;
      } else {
        result.untraced_ms = std::min(result.untraced_ms, ms);
        json_untraced = json;
      }
    }
  }
  result.overhead_pct =
      100.0 * (result.traced_ms - result.untraced_ms) / result.untraced_ms;
  result.reports_equal =
      !json_traced.empty() && json_traced == json_untraced;
  return result;
}

}  // namespace
}  // namespace dlsys

int main(int argc, char** argv) {
  using namespace dlsys;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  if (const char* env = std::getenv("DLSYS_BENCH_SMOKE");
      env != nullptr && env[0] == '1') {
    g_smoke = true;
  }
  RuntimeConfig::SetThreads(4);

  const std::vector<OverheadRow> rows = BenchOverhead();
  for (const OverheadRow& row : rows) {
    std::printf(
        "obs %-10s  %8.4f ms/batch | %10.0f ex/s | overhead %+6.2f%% | "
        "%lld events\n",
        row.mode, row.ms_per_batch, row.throughput_eps, row.overhead_pct,
        static_cast<long long>(row.events));
  }

  const FleetTracingResult fleet = BenchFleetTracing();
  std::printf(
      "e38 fleet     untraced %8.1f ms | traced %8.1f ms | overhead "
      "%+6.2f%% | %lld sim events | reports %s\n",
      fleet.untraced_ms, fleet.traced_ms, fleet.overhead_pct,
      static_cast<long long>(fleet.sim_events),
      fleet.reports_equal ? "bitwise-equal" : "DIVERGED");

  FILE* out = std::fopen("BENCH_obs.json", "w");
  if (out == nullptr) {
    std::printf("cannot open BENCH_obs.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"smoke\": %s,\n  \"obs_compiled_in\": %s,\n"
               "  \"overhead\": [\n",
               g_smoke ? "true" : "false", DLSYS_OBS ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const OverheadRow& row = rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"ms_per_batch\": %.4f, "
                 "\"throughput_eps\": %.0f, \"overhead_pct\": %.2f, "
                 "\"events\": %lld}%s\n",
                 row.mode, row.ms_per_batch, row.throughput_eps,
                 row.overhead_pct, static_cast<long long>(row.events),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"fleet_tracing\": {\"untraced_ms\": %.1f, "
               "\"traced_ms\": %.1f, \"overhead_pct\": %.2f, "
               "\"sim_events\": %lld, \"reports_bitwise_equal\": %s}\n}\n",
               fleet.untraced_ms, fleet.traced_ms, fleet.overhead_pct,
               static_cast<long long>(fleet.sim_events),
               fleet.reports_equal ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_obs.json\n");

  // The acceptance bar: tracing compiled in but disabled must stay
  // within 2% of the baseline on the same workload. Smoke runs are too
  // short to separate the branch cost from scheduler noise, so the bar
  // is only enforced on full runs.
  if (!g_smoke && rows[1].overhead_pct >= 2.0) {
    std::printf("FAIL: disabled-tracing overhead %.2f%% >= 2%%\n",
                rows[1].overhead_pct);
    return 1;
  }
  // E38: request tracing + attribution + alerting must never perturb the
  // simulated results, and on full runs must cost < 2% wall time.
  if (!fleet.reports_equal) {
    std::printf("FAIL: traced fleet report diverged from untraced\n");
    return 1;
  }
  if (!g_smoke && fleet.overhead_pct >= 2.0) {
    std::printf("FAIL: fleet tracing overhead %.2f%% >= 2%%\n",
                fleet.overhead_pct);
    return 1;
  }
  return 0;
}
