// Observability overhead bench (E33): throughput of the E31 inference
// workload (arena-planned engine, PredictInto hot loop) with tracing
// compiled in but disabled, sampled 1-in-64, and fully enabled, against
// an identical disabled baseline (an A/A pair, so the "off" row measures
// the disabled-branch cost plus run-to-run noise). Results land in
// BENCH_obs.json.
//
// The acceptance bar is the disabled row: instrumentation compiled in
// but switched off must cost < 2% throughput. The truly-compiled-out
// comparison is a separate -DDLSYS_OBS=0 build (exercised in CI), which
// this binary also runs under — there all four rows coincide.
//
// Pass --smoke (or set DLSYS_BENCH_SMOKE=1) for a seconds-scale CI run.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/rng.h"
#include "src/infer/engine.h"
#include "src/nn/train.h"
#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/runtime/runtime.h"

namespace dlsys {
namespace {

bool g_smoke = false;

volatile float g_sink = 0.0f;  // defeats dead-code elimination

struct OverheadRow {
  const char* mode = "";
  double ms_per_batch = 0.0;
  double throughput_eps = 0.0;  ///< examples per second
  double overhead_pct = 0.0;    ///< vs the baseline row
  int64_t events = 0;           ///< spans drained after the timed run
};

/// One timed repetition: wall ms per call over `iters` PredictInto calls.
double OneRepMs(InferenceEngine* engine, const Tensor& x, int64_t batch,
                Tensor* out, int iters) {
  // Rewind the rings so every repetition records from the same state (a
  // full ring drops events and would make later reps cheaper).
  obs::ResetTrace();
  Stopwatch watch;
  for (int it = 0; it < iters; ++it) {
    DLSYS_CHECK(engine->PredictInto(x.data(), batch, out->data()).ok(),
                "predict failed");
    g_sink = (*out)[0];
  }
  return watch.Seconds() * 1000.0 / iters;
}

std::vector<OverheadRow> BenchOverhead() {
  Rng rng(61);
  // The E31 frontier workload: MLP engine, mid-size batch. Sized so one
  // batch is ~2 ms of kernel time — small enough to stress the per-op
  // span sites, large enough that thread-pool wakeup jitter (tens of
  // microseconds, the dominant noise at sub-ms batches) stays well
  // under the 2% bar being measured.
  Sequential net = MakeMlp(64, {g_smoke ? 64 : 512, g_smoke ? 32 : 512}, 10);
  net.Init(&rng);
  const int64_t batch = g_smoke ? 4 : 64;
  auto compiled = InferenceEngine::Compile(
      net, {64}, EngineConfig{batch});
  DLSYS_CHECK(compiled.ok(), "compile failed");
  InferenceEngine engine = std::move(compiled).value();

  Tensor x({batch, 64});
  x.FillGaussian(&rng, 1.0f);
  Tensor out({batch, engine.output_elems_per_example()});

  const int iters = g_smoke ? 20 : 25;
  const int reps = g_smoke ? 3 : 96;

  // Warm up the thread pool, caches, and clocks for a full measurement
  // interval so the first timed repetition is not penalized.
  for (int it = 0; it < iters; ++it) {
    DLSYS_CHECK(engine.PredictInto(x.data(), batch, out.data()).ok(), "warm");
    g_sink = out[0];
  }

  struct Mode {
    const char* name;
    bool enabled;
    int32_t sample_every;
  };
  constexpr int kModes = 4;
  const Mode modes[kModes] = {
      {"baseline", false, 1},  // A side of the A/A pair
      {"off", false, 1},       // B side: disabled-branch cost + noise
      {"sampled_64", true, 64},
      {"full", true, 1},
  };

  // Many short repetitions, interleaved round-robin with the mode order
  // rotated every cycle, so slow system phases (frequency scaling,
  // co-tenant noise) hit every mode and every cycle position equally.
  // Each mode's cost is then the minimum over repetitions: timing noise
  // on a fixed workload is one-sided (preemption and frequency dips only
  // ever add time), so the min over many short windows is the tightest
  // estimate of the true cost and is robust to drift across the run.
  std::vector<double> times[kModes];
  int64_t events[kModes] = {};
  for (int r = 0; r < reps; ++r) {
    for (int slot = 0; slot < kModes; ++slot) {
      const int m = (slot + r) % kModes;
      obs::SetTracingEnabled(modes[m].enabled);
      obs::SetTraceSampling(modes[m].sample_every);
      times[m].push_back(OneRepMs(&engine, x, batch, &out, iters));
      events[m] = static_cast<int64_t>(obs::DrainTrace().events.size());
    }
  }
  obs::SetTracingEnabled(false);
  obs::SetTraceSampling(1);
  obs::ResetTrace();

  std::vector<OverheadRow> rows;
  for (int m = 0; m < kModes; ++m) {
    OverheadRow row;
    row.mode = modes[m].name;
    row.ms_per_batch = *std::min_element(times[m].begin(), times[m].end());
    row.throughput_eps =
        static_cast<double>(batch) / (row.ms_per_batch / 1000.0);
    row.events = events[m];
    rows.push_back(row);
  }

  const double base = rows[0].ms_per_batch;
  for (OverheadRow& row : rows) {
    row.overhead_pct = 100.0 * (row.ms_per_batch - base) / base;
  }
  return rows;
}

}  // namespace
}  // namespace dlsys

int main(int argc, char** argv) {
  using namespace dlsys;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  if (const char* env = std::getenv("DLSYS_BENCH_SMOKE");
      env != nullptr && env[0] == '1') {
    g_smoke = true;
  }
  RuntimeConfig::SetThreads(4);

  const std::vector<OverheadRow> rows = BenchOverhead();
  for (const OverheadRow& row : rows) {
    std::printf(
        "obs %-10s  %8.4f ms/batch | %10.0f ex/s | overhead %+6.2f%% | "
        "%lld events\n",
        row.mode, row.ms_per_batch, row.throughput_eps, row.overhead_pct,
        static_cast<long long>(row.events));
  }

  FILE* out = std::fopen("BENCH_obs.json", "w");
  if (out == nullptr) {
    std::printf("cannot open BENCH_obs.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"smoke\": %s,\n  \"obs_compiled_in\": %s,\n"
               "  \"overhead\": [\n",
               g_smoke ? "true" : "false", DLSYS_OBS ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const OverheadRow& row = rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"ms_per_batch\": %.4f, "
                 "\"throughput_eps\": %.0f, \"overhead_pct\": %.2f, "
                 "\"events\": %lld}%s\n",
                 row.mode, row.ms_per_batch, row.throughput_eps,
                 row.overhead_pct, static_cast<long long>(row.events),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_obs.json\n");

  // The acceptance bar: tracing compiled in but disabled must stay
  // within 2% of the baseline on the same workload. Smoke runs are too
  // short to separate the branch cost from scheduler noise, so the bar
  // is only enforced on full runs.
  if (!g_smoke && rows[1].overhead_pct >= 2.0) {
    std::printf("FAIL: disabled-tracing overhead %.2f%% >= 2%%\n",
                rows[1].overhead_pct);
    return 1;
  }
  return 0;
}
