// E25 — Data-Canopy-style statistics cache (Part 2 data exploration):
// chunk-level basic aggregates make repeated exploratory statistics
// queries orders of magnitude cheaper than rescanning.

#include <cstdio>

#include "src/core/metrics.h"
#include "src/db/stats_cache.h"

int main() {
  using namespace dlsys;
  Rng rng(103);
  Table t = MakeCorrelatedTable(1000000, 4, 0.5, &rng);

  std::printf("E25a: 200 random range-statistic queries over 1M rows\n");
  std::printf("%-11s %-13s %12s %12s %10s\n", "statistic", "mode",
              "total_ms", "per_query", "speedup");
  Rng qrng(107);
  std::vector<std::pair<int64_t, int64_t>> ranges;
  for (int i = 0; i < 200; ++i) {
    const int64_t lo = static_cast<int64_t>(qrng.Index(900000));
    ranges.push_back({lo, lo + 50000 + static_cast<int64_t>(
                                           qrng.Index(50000))});
  }
  StatsCache cache(&t, 1024);
  // Warm the one pair used below.
  cache.RangeCorrelation(0, 1, 0, t.rows);

  auto run = [&](const char* stat, auto cached, auto scan) {
    Stopwatch cw;
    double sink = 0.0;
    for (const auto& [lo, hi] : ranges) sink += cached(lo, hi);
    const double cached_ms = cw.Seconds() * 1e3;
    Stopwatch sw;
    for (const auto& [lo, hi] : ranges) sink -= scan(lo, hi);
    const double scan_ms = sw.Seconds() * 1e3;
    std::printf("%-11s %-13s %12.2f %12.4f %10s\n", stat, "cached",
                cached_ms, cached_ms / 200.0, "");
    std::printf("%-11s %-13s %12.2f %12.4f %9.0fx   [sink %.3g]\n", stat,
                "scan", scan_ms, scan_ms / 200.0, scan_ms / cached_ms,
                sink);
  };
  run("mean",
      [&](int64_t lo, int64_t hi) { return *cache.RangeMean(1, lo, hi); },
      [&](int64_t lo, int64_t hi) {
        return StatsCache::ScanMean(t, 1, lo, hi);
      });
  run("variance",
      [&](int64_t lo, int64_t hi) {
        return *cache.RangeVariance(1, lo, hi);
      },
      [&](int64_t lo, int64_t hi) {
        return StatsCache::ScanVariance(t, 1, lo, hi);
      });
  run("correlation",
      [&](int64_t lo, int64_t hi) {
        return *cache.RangeCorrelation(0, 1, lo, hi);
      },
      [&](int64_t lo, int64_t hi) {
        return StatsCache::ScanCorrelation(t, 0, 1, lo, hi);
      });

  std::printf("\nE25b: chunk-size sweep (cache bytes vs mean-query time)\n");
  std::printf("%-12s %14s %14s\n", "chunk_rows", "cache_KB", "per_query_us");
  for (int64_t chunk : {64, 256, 1024, 4096, 16384}) {
    StatsCache c(&t, chunk);
    Stopwatch w;
    double sink = 0.0;
    for (const auto& [lo, hi] : ranges) sink += *c.RangeMean(0, lo, hi);
    std::printf("%-12lld %14.1f %14.3f\n", static_cast<long long>(chunk),
                static_cast<double>(c.MemoryBytes()) / 1e3,
                w.Seconds() * 1e6 / 200.0);
  }
  std::printf("\nexpected shape: cached statistics 10-1000x faster than "
              "scans on large ranges; smaller chunks cost memory and edge "
              "scans shrink, with a sweet spot in the middle — the Data "
              "Canopy tradeoff.\n");
  return 0;
}
