// E26 — Bias in word embeddings (Section 4.1, [72]): the WEAT effect
// size tracks injected association bias, and hard debiasing removes it.

#include <cstdio>

#include "src/fairness/embedding_bias.h"

int main() {
  using namespace dlsys;
  std::printf("E26: WEAT effect size vs injected bias "
              "(64-D embeddings, 64 words per set)\n");
  std::printf("%-8s %14s %14s\n", "bias", "effect_before", "effect_after");
  for (double bias : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    Rng rng(109);
    EmbeddingSpace space = MakeBiasedEmbeddings(64, 64, bias, &rng);
    auto before = WeatEffectSize(space);
    if (!before.ok()) return 1;
    if (!HardDebias(&space).ok()) return 1;
    auto after = WeatEffectSize(space);
    if (!after.ok()) return 1;
    std::printf("%-8.1f %14.3f %14.3f\n", bias, *before, *after);
  }
  std::printf("\nexpected shape: the effect size grows monotonically with "
              "injected bias (saturating near 2, the Cohen's-d ceiling); "
              "after projecting out the bias direction it collapses to "
              "~0 at every level.\n");
  return 0;
}
