// Fleet chaos-suite bench (E35): the scenario × policy grid of the
// serving-fleet simulation. Every cell runs one taxonomy scenario
// (steady, flash crowd, crash storm, slow partition, gray failure,
// bad-version rollout) against one policy bundle (routing × autoscaling
// × recovery) and reports fleet-level SLO metrics: goodput, client p99,
// miss fraction, shed fraction, and time-to-recover. Results land in
// BENCH_fleet.json.
//
// Every decision in the fleet runs on the simulated clock, so all
// reported numbers replay bit-for-bit for a fixed seed at any
// DLSYS_THREADS. `--export PATH` writes one canonical chaos cell's
// FleetReportJson to PATH and exits — the CI determinism step runs it
// at DLSYS_THREADS=1 and 8 and byte-compares the two files.
// `--export-attr PATH` and `--export-trace PATH` ride the same run and
// additionally write the critical-path attribution report and the
// sim-track request-trace slice, which must be byte-identical across
// thread counts too. Pass --smoke (or DLSYS_BENCH_SMOKE=1) for a
// seconds-scale CI run.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/fleet/autoscaler.h"
#include "src/fleet/chaos.h"
#include "src/fleet/fleet.h"
#include "src/fleet/router.h"
#include "src/nn/train.h"
#include "src/obs/attribution.h"
#include "src/obs/trace.h"
#include "src/runtime/runtime.h"
#include "src/serve/loadgen.h"

namespace dlsys {
namespace {

bool g_smoke = false;

constexpr int64_t kInElems = 32;

Sequential MakeFleetNet(uint64_t seed) {
  Sequential net = MakeMlp(kInElems, {g_smoke ? 32 : 64}, 10);
  Rng rng(seed);
  net.Init(&rng);
  return net;
}

double TimeScale() { return g_smoke ? 0.25 : 1.0; }

/// One routing × autoscaling × recovery bundle of the E35 grid.
struct PolicyBundle {
  const char* name;
  RoutePolicy route;
  ScalePolicy scale;
  FleetRecovery recovery;
};

const std::vector<PolicyBundle>& Bundles() {
  static const std::vector<PolicyBundle> kBundles = {
      {"rr_fixed_ckpt", RoutePolicy::kRoundRobin, ScalePolicy::kFixed,
       FleetRecovery::kCheckpointedRestart},
      {"ll_reactive_ckpt", RoutePolicy::kLeastLoaded, ScalePolicy::kReactive,
       FleetRecovery::kCheckpointedRestart},
      {"p2c_predictive_cold", RoutePolicy::kPowerOfTwo,
       ScalePolicy::kPredictive, FleetRecovery::kColdReplace},
  };
  return kBundles;
}

FleetConfig GridFleetConfig(const PolicyBundle& bundle) {
  FleetConfig config;
  config.replica_slots = 6;
  config.initial_replicas = 4;
  config.server.workers = 2;
  config.server.queue_capacity = 64;
  config.server.batch.max_batch = 8;
  config.server.batch.max_delay_ms = 1.0;
  config.server.cost.fixed_ms = 1.0;
  config.server.cost.per_example_ms = 0.25;
  config.server.default_deadline_ms = 40.0;
  config.route = bundle.route;
  config.autoscale.policy = bundle.scale;
  config.autoscale.decide_interval_ms = 1000.0 * TimeScale();
  config.autoscale.provision_lag_ms = 2000.0 * TimeScale();
  // Floor at the initial size: the grid loads leave per-replica
  // headroom, and draining the fleet to its minimum before a scheduled
  // storm would let the chaos land on empty slots.
  config.autoscale.min_replicas = 4;
  config.recovery = bundle.recovery;
  config.restart_ms = 1500.0 * TimeScale();
  config.replace_ms = 4000.0 * TimeScale();
  config.canary.bake_ms = 1500.0 * TimeScale();
  config.tick_ms = 50.0;
  config.window_ms = 500.0 * TimeScale();
  return config;
}

TraceLoadConfig GridLoad(const std::string& scenario) {
  TraceLoadConfig load;
  load.seed = 21;
  load.duration_ms = 24'000.0 * TimeScale();
  load.base_rps = g_smoke ? 300.0 : 600.0;
  load.diurnal_amplitude = 0.3;
  load.diurnal_period_ms = load.duration_ms;
  load.deadline_ms = 40.0;
  load.model = "m";
  if (scenario == "flash_crowd") {
    // The load-side fault: a 3x crowd landing where other scenarios
    // stage their faults.
    load.crowds.push_back(
        {8000.0 * TimeScale(), 6000.0 * TimeScale(), 3.0});
  }
  return load;
}

struct GridCell {
  std::string scenario;
  std::string bundle;
  FleetReport report;
};

Result<FleetReport> RunCell(const PolicyBundle& bundle,
                            const std::string& scenario_name) {
  auto scenario = MakeScenario(scenario_name, TimeScale());
  if (!scenario.ok()) return scenario.status();
  auto fleet = Fleet::Create(GridFleetConfig(bundle));
  if (!fleet.ok()) return fleet.status();
  Status deployed = fleet.value()->Deploy("m", MakeFleetNet(71), {kInElems});
  if (!deployed.ok()) return deployed;
  return fleet.value()->Run(scenario.value(), GridLoad(scenario_name));
}

int WriteTextFile(const char* path, const std::string& body) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::printf("cannot open %s\n", path);
    return 1;
  }
  std::fwrite(body.data(), 1, body.size(), out);
  std::fclose(out);
  std::printf("wrote %s\n", path);
  return 0;
}

int ExportCanonicalCell(const char* path, const char* attr_path,
                        const char* trace_path) {
  // The canonical determinism cell: crash storm under the least-loaded
  // reactive bundle — every fault class of machinery (routing, health,
  // restart, autoscaling) is on the decision path.
  if (trace_path != nullptr) {
    obs::ResetTrace();
    obs::SetTracingEnabled(true);
  }
  auto report = RunCell(Bundles()[1], "crash_storm");
  std::string trace_json;
  if (trace_path != nullptr) {
    obs::SetTracingEnabled(false);
    trace_json = obs::ChromeTraceJson(obs::SimTrackOnly(obs::DrainTrace()));
    obs::ResetTrace();
  }
  if (!report.ok()) {
    std::printf("export run failed: %s\n",
                report.status().ToString().c_str());
    return 1;
  }
  int rc = WriteTextFile(path, FleetReportJson(report.value()) + "\n");
  if (rc == 0 && attr_path != nullptr) {
    rc = WriteTextFile(attr_path,
                       obs::AttributionReportJson(report.value().attribution));
  }
  if (rc == 0 && trace_path != nullptr) {
    rc = WriteTextFile(trace_path, trace_json);
  }
  return rc;
}

}  // namespace
}  // namespace dlsys

int main(int argc, char** argv) {
  using namespace dlsys;
  const char* export_path = nullptr;
  const char* export_attr_path = nullptr;
  const char* export_trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
    if (std::strcmp(argv[i], "--export") == 0 && i + 1 < argc) {
      export_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--export-attr") == 0 && i + 1 < argc) {
      export_attr_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--export-trace") == 0 && i + 1 < argc) {
      export_trace_path = argv[i + 1];
    }
  }
  if (const char* env = std::getenv("DLSYS_BENCH_SMOKE");
      env != nullptr && env[0] == '1') {
    g_smoke = true;
  }
  if (export_path != nullptr) {
    // Export mode leaves DLSYS_THREADS in charge so the CI determinism
    // step can byte-compare runs at different thread counts.
    g_smoke = true;
    return ExportCanonicalCell(export_path, export_attr_path,
                               export_trace_path);
  }
  // Keep intra-op kernels single-threaded: each replica's worker pool
  // provides the parallelism (see bench_serving).
  RuntimeConfig::SetThreads(1);

  std::vector<GridCell> grid;
  for (const std::string& scenario : ScenarioNames()) {
    for (const PolicyBundle& bundle : Bundles()) {
      auto report = RunCell(bundle, scenario);
      if (!report.ok()) {
        std::printf("cell (%s, %s) failed: %s\n", scenario.c_str(),
                    bundle.name, report.status().ToString().c_str());
        return 1;
      }
      const FleetReport& r = report.value();
      std::printf(
          "%-14s %-20s goodput %7.0f r/s | p99 %7.3f ms | miss %5.2f%% | "
          "shed %5.2f%% | ttr %8.1f ms | crash %lld restart %lld "
          "rollback %lld scale +%lld/-%lld\n",
          scenario.c_str(), bundle.name, r.goodput_rps(), r.p99_ms,
          100.0 * r.miss_fraction(), 100.0 * r.shed_fraction(),
          r.time_to_recover_ms, static_cast<long long>(r.crashes),
          static_cast<long long>(r.restarts),
          static_cast<long long>(r.rollbacks),
          static_cast<long long>(r.scale_ups),
          static_cast<long long>(r.scale_downs));
      grid.push_back({scenario, bundle.name, r});
    }
  }

  FILE* out = std::fopen("BENCH_fleet.json", "w");
  if (out == nullptr) {
    std::printf("cannot open BENCH_fleet.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"smoke\": %s,\n  \"grid\": [\n",
               g_smoke ? "true" : "false");
  for (size_t i = 0; i < grid.size(); ++i) {
    const FleetReport& r = grid[i].report;
    std::fprintf(
        out,
        "    {\"scenario\": \"%s\", \"bundle\": \"%s\", "
        "\"offered\": %lld, \"goodput_rps\": %.3f, \"p99_ms\": %.4f, "
        "\"miss_fraction\": %.5f, \"shed_fraction\": %.5f, "
        "\"steady_goodput_rps\": %.3f, \"time_to_recover_ms\": %.1f, "
        "\"crashes\": %lld, \"restarts\": %lld, \"rollouts\": %lld, "
        "\"rollbacks\": %lld, \"scale_ups\": %lld, \"scale_downs\": "
        "%lld}%s\n",
        grid[i].scenario.c_str(), grid[i].bundle.c_str(),
        static_cast<long long>(r.offered), r.goodput_rps(), r.p99_ms,
        r.miss_fraction(), r.shed_fraction(), r.steady_goodput_rps,
        r.time_to_recover_ms, static_cast<long long>(r.crashes),
        static_cast<long long>(r.restarts),
        static_cast<long long>(r.rollouts),
        static_cast<long long>(r.rollbacks),
        static_cast<long long>(r.scale_ups),
        static_cast<long long>(r.scale_downs),
        i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_fleet.json (%zu cells)\n", grid.size());
  return 0;
}
