// E16 — LIME surrogates are locally faithful; fidelity decays as the
// explained neighbourhood widens, and distilled global surrogates trade
// pointwise fidelity for coverage (Section 4.2).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/compress/distill.h"
#include "src/data/synthetic.h"
#include "src/interpret/lime.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"
#include "src/tensor/ops.h"

int main() {
  using namespace dlsys;
  Rng rng(79);
  Dataset data = MakeTwoMoons(2000, 0.08, &rng);
  TrainTestSplit split = Split(data, 0.8);
  Sequential net = MakeMlp(2, {16, 16}, 2);
  net.Init(&rng);
  Adam opt(0.01);
  TrainConfig tc;
  tc.epochs = 8;
  Train(&net, &opt, split.train, tc);
  std::printf("E16a: LIME fidelity vs neighbourhood width "
              "(model acc=%.3f on two-moons)\n",
              Evaluate(&net, split.test).accuracy);
  // Explain points near the decision boundary, where the model actually
  // varies (far from it the function is constant and R^2 degenerates).
  Tensor all_probs = RowSoftmax(net.Forward(split.test.x, CacheMode::kNoCache));
  std::vector<std::pair<float, int64_t>> by_margin;
  for (int64_t i = 0; i < split.test.size(); ++i) {
    by_margin.push_back({std::abs(all_probs[i * 2 + 1] - 0.5f), i});
  }
  std::sort(by_margin.begin(), by_margin.end());
  std::vector<int64_t> boundary_points;
  for (size_t i = 0; i < 20 && i < by_margin.size(); ++i) {
    boundary_points.push_back(by_margin[i].second);
  }
  std::printf("%-14s %14s\n", "perturb_std", "mean_R2");
  for (double width : {0.01, 0.03, 0.1, 0.3, 1.0}) {
    double total_r2 = 0.0;
    int64_t count = 0;
    for (int64_t i : boundary_points) {
      Tensor x = SliceRows(split.test.x, i, i + 1);
      LimeConfig config;
      config.perturb_std = width;
      config.kernel_width = width * 2.0;
      config.seed = 100 + static_cast<uint64_t>(i);
      auto explanation = ExplainWithLime(&net, x, 1, config);
      if (!explanation.ok()) continue;
      total_r2 += explanation->fidelity_r2;
      ++count;
    }
    std::printf("%-14.2f %14.3f\n", width,
                total_r2 / static_cast<double>(count));
  }

  std::printf("\nE16b: distilled global surrogates — depth sweep "
              "(agreement with teacher on the test set)\n");
  std::printf("%-14s %12s %14s\n", "surrogate", "params", "agreement");
  for (int64_t width : {0, 4, 16, 48}) {
    Sequential surrogate = width == 0 ? MakeMlp(2, {}, 2)
                                      : MakeMlp(2, {width}, 2);
    Rng srng(200 + static_cast<uint64_t>(width));
    surrogate.Init(&srng);
    Sgd sopt(0.05, 0.9);
    DistillConfig dc;
    dc.epochs = 40;
    dc.alpha = 1.0;  // learn only from the teacher
    Distill(&net, &surrogate, &sopt, split.train, dc);
    // Agreement: fraction of test points where argmax matches.
    Tensor teacher_logits = net.Forward(split.test.x, CacheMode::kNoCache);
    Tensor surrogate_logits =
        surrogate.Forward(split.test.x, CacheMode::kNoCache);
    std::vector<int64_t> a = ArgMaxRows(teacher_logits);
    std::vector<int64_t> b = ArgMaxRows(surrogate_logits);
    int64_t same = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] == b[i]) ++same;
    }
    char name[32];
    std::snprintf(name, sizeof(name),
                  width == 0 ? "linear" : "mlp-%lld",
                  static_cast<long long>(width));
    std::printf("%-14s %12lld %14.3f\n", name,
                static_cast<long long>(surrogate.NumParams()),
                static_cast<double>(same) / static_cast<double>(a.size()));
  }
  std::printf("\nexpected shape: local fidelity ~1 for narrow "
              "neighbourhoods, decaying as the linear surrogate must "
              "cover more of the nonlinear boundary; global surrogate "
              "agreement rises with surrogate capacity.\n");
  return 0;
}
