// E30 — Fault tolerance on the simulated cluster: recovery cost vs.
// checkpoint frequency, and degraded-membership accuracy vs. restart
// time (Humbatova et al.'s crash/hang fault classes; Langer et al.'s
// fault-tolerance axis). Emits BENCH_fault_tolerance.json.
//
// Standalone binary (not google-benchmark): the quantities of interest
// are simulated seconds and fault counters from MetricsReport, and the
// JSON schema must stay stable across runs.

#include <cstdio>
#include <string>
#include <vector>

#include "src/data/synthetic.h"
#include "src/distributed/cluster.h"
#include "src/nn/train.h"

namespace {

struct Row {
  int64_t interval = 0;
  double wasted_rounds = 0.0;
  double recovery_overhead_s = 0.0;
  double checkpoint_cost_s = 0.0;
  double total_overhead_s = 0.0;
  double accuracy = 0.0;
};

}  // namespace

int main() {
  using namespace dlsys;
  Rng rng(41);
  Dataset data = MakeGaussianBlobs(3000, 16, 6, 2.5, &rng);
  TrainTestSplit split = Split(data, 0.85);
  Sequential arch = MakeMlp(16, {32}, 6);
  arch.Init(&rng);

  ClusterConfig base;
  base.workers = 4;
  base.rounds = 32;
  base.step_seconds = 1e-3;
  base.checkpoint_dir = ".";

  auto accuracy_of = [&](const Result<ClusterResult>& r) {
    Sequential model = r->model.Clone();
    return Evaluate(&model, split.test).accuracy;
  };

  // ---- sweep 1: checkpoint interval under a fixed crash schedule ----
  // Crashes at rounds 7, 15, 23: with checkpoints every k rounds the
  // replayed work per crash is (round mod k), so recovery overhead must
  // fall monotonically as the interval shrinks, while checkpoint-write
  // cost rises — the canonical checkpoint-frequency tradeoff.
  std::printf("E30a: crash x checkpoint-interval (4 workers, 32 rounds, "
              "crashes at 7/15/23)\n");
  std::printf("%-10s %14s %20s %18s %16s %10s\n", "interval",
              "wasted_rounds", "recovery_overhead_s", "checkpoint_s",
              "total_overhead_s", "accuracy");
  std::vector<Row> interval_rows;
  for (int64_t interval : {1, 2, 4, 8}) {
    ClusterConfig config = base;
    config.recovery = RecoveryPolicy::kRestartFromCheckpoint;
    config.checkpoint_interval = interval;
    config.faults.crashes = {{7, 1}, {15, 2}, {23, 0}};
    auto result = TrainOnCluster(arch, split.train, config, nullptr);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    Row row;
    row.interval = interval;
    row.wasted_rounds = result->report.Get(fault_metric::kWastedRounds);
    // Replayed compute plus detection/reload: the cost a crash inflicts.
    row.recovery_overhead_s =
        row.wasted_rounds * base.step_seconds +
        result->report.Get(fault_metric::kRecoverySeconds);
    row.checkpoint_cost_s =
        result->report.Get(fault_metric::kCheckpointSeconds);
    row.total_overhead_s = row.recovery_overhead_s + row.checkpoint_cost_s;
    row.accuracy = accuracy_of(result);
    interval_rows.push_back(row);
    std::printf("%-10lld %14.0f %20.6f %18.6f %16.6f %10.3f\n",
                static_cast<long long>(interval), row.wasted_rounds,
                row.recovery_overhead_s, row.checkpoint_cost_s,
                row.total_overhead_s, row.accuracy);
  }

  // ---- sweep 2: crash rate x recovery policy ----
  std::printf("\nE30b: crash-rate sweep, restart(k=4) vs drop-and-continue "
              "(4 workers, 60 rounds)\n");
  std::printf("%-12s %-10s %10s %14s %14s %14s\n", "crash_prob", "policy",
              "accuracy", "live_workers", "overhead_s", "wasted_rounds");
  struct RateRow {
    double crash_prob = 0.0;
    const char* policy = "";
    double accuracy = 0.0;
    double live_workers = 0.0;
    double overhead_s = 0.0;
    double wasted_rounds = 0.0;
  };
  std::vector<RateRow> rate_rows;
  for (double crash_prob : {0.0, 0.005, 0.02, 0.05}) {
    for (const char* policy : {"restart", "drop"}) {
      ClusterConfig config = base;
      config.rounds = 60;
      config.faults.seed = 1234;
      config.faults.crash_prob = crash_prob;
      if (std::string(policy) == "restart") {
        config.recovery = RecoveryPolicy::kRestartFromCheckpoint;
        config.checkpoint_interval = 4;
      } else {
        config.recovery = RecoveryPolicy::kDropAndContinue;
      }
      auto result = TrainOnCluster(arch, split.train, config, nullptr);
      RateRow row;
      row.crash_prob = crash_prob;
      row.policy = policy;
      if (!result.ok()) {
        // Drop-and-continue has no way back once every worker is dead;
        // at high crash rates the cluster collapses. Report it as a data
        // point (restart never collapses: dead workers rejoin on replay).
        if (result.status().code() != StatusCode::kInternal) {
          std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
          return 1;
        }
        rate_rows.push_back(row);
        std::printf("%-12.3f %-10s %10s %14.0f %14.6f %14.0f\n", crash_prob,
                    policy, "collapsed", 0.0, 0.0, 0.0);
        continue;
      }
      row.accuracy = accuracy_of(result);
      row.live_workers = result->report.Get(fault_metric::kLiveWorkers);
      row.wasted_rounds = result->report.Get(fault_metric::kWastedRounds);
      row.overhead_s =
          result->report.Get(fault_metric::kRecoverySeconds) +
          result->report.Get(fault_metric::kCheckpointSeconds) +
          row.wasted_rounds * base.step_seconds;
      rate_rows.push_back(row);
      std::printf("%-12.3f %-10s %10.3f %14.0f %14.6f %14.0f\n",
                  crash_prob, policy, row.accuracy, row.live_workers,
                  row.overhead_s, row.wasted_rounds);
    }
  }

  // ---- sweep 3: straggler, wait vs skip-stale ----
  std::printf("\nE30c: 50x straggler, barrier-wait vs skip-stale\n");
  double wait_s = 0.0, skip_s = 0.0, wait_acc = 0.0, skip_acc = 0.0;
  {
    ClusterConfig config = base;
    config.rounds = 100;
    config.faults.stragglers = {{2, 50.0}};
    auto waited = TrainOnCluster(arch, split.train, config, nullptr);
    config.recovery = RecoveryPolicy::kSkipStale;
    config.stale_timeout_seconds = 5e-3;
    auto skipped = TrainOnCluster(arch, split.train, config, nullptr);
    if (!waited.ok() || !skipped.ok()) {
      std::fprintf(stderr, "straggler sweep failed\n");
      return 1;
    }
    wait_s = waited->report.Get(fault_metric::kStragglerSeconds);
    skip_s = skipped->report.Get(fault_metric::kStragglerSeconds);
    wait_acc = accuracy_of(waited);
    skip_acc = accuracy_of(skipped);
    std::printf("wait: barrier %.4f s, acc %.3f | skip: barrier %.4f s, "
                "acc %.3f\n", wait_s, wait_acc, skip_s, skip_acc);
  }

  FILE* out = std::fopen("BENCH_fault_tolerance.json", "w");
  if (out == nullptr) {
    std::printf("cannot open BENCH_fault_tolerance.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"checkpoint_interval_sweep\": [\n");
  for (size_t i = 0; i < interval_rows.size(); ++i) {
    const Row& r = interval_rows[i];
    std::fprintf(out,
                 "    {\"interval\": %lld, \"wasted_rounds\": %.0f, "
                 "\"recovery_overhead_s\": %.6f, \"checkpoint_cost_s\": "
                 "%.6f, \"total_overhead_s\": %.6f, \"accuracy\": %.4f}%s\n",
                 static_cast<long long>(r.interval), r.wasted_rounds,
                 r.recovery_overhead_s, r.checkpoint_cost_s,
                 r.total_overhead_s, r.accuracy,
                 i + 1 < interval_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"crash_rate_sweep\": [\n");
  for (size_t i = 0; i < rate_rows.size(); ++i) {
    const RateRow& r = rate_rows[i];
    std::fprintf(out,
                 "    {\"crash_prob\": %.3f, \"policy\": \"%s\", "
                 "\"accuracy\": %.4f, \"live_workers\": %.0f, "
                 "\"overhead_s\": %.6f, \"wasted_rounds\": %.0f}%s\n",
                 r.crash_prob, r.policy, r.accuracy, r.live_workers,
                 r.overhead_s, r.wasted_rounds,
                 i + 1 < rate_rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"straggler\": {\"wait_barrier_s\": %.6f, "
               "\"skip_barrier_s\": %.6f, \"wait_accuracy\": %.4f, "
               "\"skip_accuracy\": %.4f}\n}\n",
               wait_s, skip_s, wait_acc, skip_acc);
  std::fclose(out);
  std::printf("\nwrote BENCH_fault_tolerance.json\n");
  std::printf("expected shape: recovery overhead falls monotonically as "
              "the checkpoint interval shrinks while checkpoint cost "
              "rises; drop-and-continue loses workers (and some accuracy) "
              "but pays no replay; skip-stale collapses barrier time at "
              "unchanged convergence.\n");
  return 0;
}
