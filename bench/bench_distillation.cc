// E3 — Knowledge distillation (Section 2.1, Hinton et al.): a student
// trained to mimic the teacher over a large UNLABELED transfer set beats
// the same architecture trained from scratch on the small labeled set,
// at a fraction of the teacher's size.

#include <cstdio>

#include "src/compress/distill.h"
#include "src/data/synthetic.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

int main() {
  using namespace dlsys;
  Rng rng(23);
  // The teacher's world: a large labeled corpus. Downstream, only a
  // small labeled slice plus plenty of unlabeled data are available.
  Dataset corpus = MakeGaussianBlobs(6000, 16, 8, 1.5, &rng);
  auto split = Split(corpus, 0.8);
  Dataset labeled = Batch(split.train, 0, 96);       // small labeled set
  Dataset transfer = split.train;                     // unlabeled pool
  for (auto& y : transfer.y) y = 0;                   // labels withheld

  Sequential teacher = MakeMlp(16, {128, 128}, 8);
  teacher.Init(&rng);
  Sgd teacher_opt(0.05, 0.9);
  TrainConfig tc;
  tc.epochs = 30;
  Train(&teacher, &teacher_opt, split.train, tc);
  const double teacher_acc = Evaluate(&teacher, split.test).accuracy;
  std::printf("E3: distillation over an unlabeled transfer set "
              "(teacher 128x128: acc=%.3f, %lld bytes;\n"
              "    students see 96 labels or 4800 unlabeled examples)\n",
              teacher_acc, static_cast<long long>(teacher.ModelBytes()));
  std::printf("%-14s %10s %12s %13s %10s\n", "student", "bytes",
              "distilled", "from_scratch", "ratio");

  for (int64_t width : {64, 32, 16, 8, 4}) {
    // Student distilled from the teacher over the unlabeled pool.
    Sequential distilled = MakeMlp(16, {width}, 8);
    Rng srng(100 + static_cast<uint64_t>(width));
    distilled.Init(&srng);
    Sgd distill_opt(0.05, 0.9);
    DistillConfig dc;
    dc.epochs = 20;
    dc.temperature = 2.0;
    dc.alpha = 1.0;  // pure soft targets: labels never consulted
    auto report =
        Distill(&teacher, &distilled, &distill_opt, transfer, dc);
    if (!report.ok()) {
      std::fprintf(stderr, "distill failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    // Same architecture trained from scratch on the labeled slice only.
    Sequential scratch = MakeMlp(16, {width}, 8);
    Rng srng2(100 + static_cast<uint64_t>(width));
    scratch.Init(&srng2);
    Sgd scratch_opt(0.05, 0.9);
    TrainConfig sc;
    sc.epochs = 20 * 50;  // equal step budget on the 50x smaller set
    Train(&scratch, &scratch_opt, labeled, sc);

    const double d_acc = Evaluate(&distilled, split.test).accuracy;
    const double s_acc = Evaluate(&scratch, split.test).accuracy;
    char name[32];
    std::snprintf(name, sizeof(name), "mlp-%lld",
                  static_cast<long long>(width));
    std::printf("%-14s %10lld %12.3f %13.3f %10.1fx\n", name,
                static_cast<long long>(distilled.ModelBytes()), d_acc, s_acc,
                static_cast<double>(teacher.ModelBytes()) /
                    static_cast<double>(distilled.ModelBytes()));
  }
  std::printf("\nexpected shape: distilled > from-scratch down to ~100x "
              "compression (the teacher's soft labels unlock the "
              "unlabeled pool); below the capacity cliff the tiny student "
              "can no longer imitate full soft distributions and "
              "hard-label training regains the edge.\n");
  return 0;
}
