// E8 — Checkpointing trades one extra forward pass for a geometric
// memory cut; budget-constrained planning beats fixed equidistant
// segmentation (Section 2.3: Chen et al., Checkmate).

#include <cstdio>

#include "src/data/synthetic.h"
#include "src/memsched/checkpoint.h"
#include "src/nn/layers.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace {
dlsys::Sequential DeepMlp(int64_t depth, int64_t width) {
  dlsys::Sequential net;
  int64_t prev = 16;
  for (int64_t i = 0; i < depth; ++i) {
    net.Emplace<dlsys::Dense>(prev, width);
    net.Emplace<dlsys::ReLU>();
    prev = width;
  }
  net.Emplace<dlsys::Dense>(prev, 4);
  return net;
}
}  // namespace

int main() {
  using namespace dlsys;
  Rng rng(43);
  Dataset batch = MakeGaussianBlobs(256, 16, 4, 3.0, &rng);

  std::printf("E8a: depth sweep — measured activation peak (KB) and step "
              "time (ms)\n");
  std::printf("%-7s %11s %10s %11s %10s %12s %11s\n", "depth", "plain_KB",
              "plain_ms", "sqrt_KB", "sqrt_ms", "sqrtKB/plain", "segs");
  for (int64_t depth : {8, 16, 32, 64}) {
    Sequential plain = DeepMlp(depth, 64);
    Rng init(7);
    plain.Init(&init);
    Sequential ckpt = plain.Clone();
    Sgd opt_a(0.01), opt_b(0.01);

    MemoryTracker::Global().ResetPeak();
    Stopwatch plain_watch;
    CheckpointedStep(&plain, &opt_a, batch, PlanNone(plain.size()));
    const double plain_ms = plain_watch.Seconds() * 1e3;
    const double plain_kb =
        static_cast<double>(MemoryTracker::Global().peak_bytes()) / 1e3;

    CheckpointPlan sqrt_plan = PlanSqrtN(ckpt.size());
    MemoryTracker::Global().ResetPeak();
    Stopwatch ckpt_watch;
    CheckpointedStep(&ckpt, &opt_b, batch, sqrt_plan);
    const double ckpt_ms = ckpt_watch.Seconds() * 1e3;
    const double ckpt_kb =
        static_cast<double>(MemoryTracker::Global().peak_bytes()) / 1e3;

    std::printf("%-7lld %11.0f %10.2f %11.0f %10.2f %11.2f %11lld\n",
                static_cast<long long>(depth), plain_kb, plain_ms, ckpt_kb,
                ckpt_ms, ckpt_kb / plain_kb,
                static_cast<long long>(sqrt_plan.NumSegments()));
  }

  std::printf("\nE8b: budget-constrained planner vs sqrt(n) at depth 32 "
              "(predicted bytes, recompute FLOPs)\n");
  Sequential probe_net = DeepMlp(32, 64);
  Rng init(7);
  probe_net.Init(&init);
  auto costs = ProbeLayerCosts(&probe_net, batch.x);
  int64_t full_peak = 0;
  for (const auto& c : costs) full_peak += c.cached_bytes;
  std::printf("%-14s %12s %12s %12s\n", "budget_frac", "plan_segs",
              "peak_B", "recompute_MF");
  for (double frac : {1.0, 0.5, 0.25, 0.125, 0.0625}) {
    const int64_t budget =
        static_cast<int64_t>(frac * static_cast<double>(full_peak)) +
        costs[0].input_bytes * 4;
    auto plan = PlanForBudget(costs, budget);
    if (!plan.ok()) {
      std::printf("%-14.4f %12s %12s %12s\n", frac, "infeasible", "-", "-");
      continue;
    }
    std::printf("%-14.4f %12lld %12lld %12.2f\n", frac,
                static_cast<long long>(plan->NumSegments()),
                static_cast<long long>(plan->PredictedPeakBytes(costs)),
                static_cast<double>(plan->RecomputeFlops(costs)) / 1e6);
  }
  std::printf("\nexpected shape: sqrt(n) cuts the activation peak by "
              "~sqrt(depth) for <2x step time; the planner buys smaller "
              "peaks with more segments (more recompute) and degrades "
              "gracefully to per-layer segmentation.\n");
  return 0;
}
