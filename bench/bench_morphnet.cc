// E23 — MorphNet-style inference optimization (Section 2.2): an
// optimization step tailors the network structure to a FLOP budget;
// compare against uniform scaling at equal budget and training effort.

#include <cstdio>

#include "src/data/synthetic.h"
#include "src/nnopt/morphnet.h"

int main() {
  using namespace dlsys;
  Rng rng(101);
  // High-dimensional input: the first layer deserves more capacity than
  // a uniform allocation gives it.
  Dataset data = MakeGaussianBlobs(3000, 32, 10, 1.0, &rng);
  TrainTestSplit split = Split(data, 0.8);

  std::printf("E23: structure optimization under FLOP budgets "
              "(32-D input, 10 close classes)\n");
  std::printf("%-13s %-10s %10s %12s %14s %-18s\n", "budget_flops",
              "method", "accuracy", "real_flops", "optimize_s", "widths");
  for (double budget : {8000.0, 4000.0, 2000.0, 1000.0}) {
    MorphConfig config;
    config.flop_budget = budget;
    config.iterations = 3;
    config.train_epochs = 8;
    auto morph = MorphNetOptimize(32, 10, {32, 32}, split.train, split.test,
                                  config);
    auto uniform = UniformScaleBaseline(32, 10, {32, 32}, split.train,
                                        split.test, config);
    if (!morph.ok() || !uniform.ok()) return 1;
    auto widths_str = [](const std::vector<int64_t>& widths) {
      std::string s;
      for (int64_t w : widths) {
        s += std::to_string(w);
        s += " ";
      }
      return s;
    };
    std::printf("%-13.0f %-10s %10.3f %12.0f %14.2f %-18s\n", budget,
                "morphnet", morph->report.Get(metric::kAccuracy),
                morph->report.Get(metric::kFlops),
                morph->report.Get("optimize_seconds"),
                widths_str(morph->widths).c_str());
    std::printf("%-13.0f %-10s %10.3f %12.0f %14.2f %-18s\n", budget,
                "uniform", uniform->report.Get(metric::kAccuracy),
                uniform->report.Get(metric::kFlops),
                uniform->report.Get("optimize_seconds"),
                widths_str(uniform->widths).c_str());
  }
  std::printf("\nexpected shape: at generous budgets both match; as the "
              "budget tightens the structure-optimized allocation "
              "(non-uniform widths) holds accuracy longer than uniform "
              "scaling — optimization time buys inference efficiency.\n");
  return 0;
}
