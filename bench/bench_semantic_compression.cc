// E14 — Learned semantic compression vs per-column quantization at the
// same max-error bound (Part 2, DeepSqueeze-flavoured): the learned
// scheme wins exactly when columns are correlated.

#include <cstdio>

#include "src/learned/semantic_compression.h"

int main() {
  using namespace dlsys;
  std::printf("E14: semantic compression, 4000 rows x 12 columns, "
              "epsilon = 0.2 (normalized units)\n");
  std::printf("%-6s %12s %12s %12s %13s %12s\n", "corr", "orig_KB",
              "learned_KB", "baseline_KB", "corrections", "ratio");
  for (double corr : {0.0, 0.5, 0.9, 0.98, 0.995}) {
    Rng rng(73);
    Table t = MakeCorrelatedTable(4000, 12, corr, &rng);
    SemanticCompressionConfig config;
    config.latent_dims = 1;
    config.epochs = 120;
    config.epsilon = 0.2;
    auto compressed = CompressedTable::Compress(t, config);
    if (!compressed.ok()) return 1;
    const int64_t baseline = QuantizationBaselineBytes(t, config.epsilon);
    std::printf("%-6.3f %12.1f %12.1f %12.1f %13lld %11.2fx\n", corr,
                static_cast<double>(compressed->OriginalBytes()) / 1e3,
                static_cast<double>(compressed->CompressedBytes()) / 1e3,
                static_cast<double>(baseline) / 1e3,
                static_cast<long long>(compressed->num_corrections()),
                static_cast<double>(baseline) /
                    static_cast<double>(compressed->CompressedBytes()));
  }
  std::printf("\nexpected shape: at low correlation corrections dominate "
              "and the baseline wins; past ~0.9 correlation the latent "
              "bottleneck absorbs the columns and the learned scheme "
              "pulls ahead, with guaranteed max error <= epsilon.\n");
  return 0;
}
