// E20 — The framework view (Section 2): place technique combinations on
// the (training-time, accuracy) and (memory, accuracy) planes and
// extract the Pareto frontier, exercising the TradeoffRegistry that is
// the paper's organizing contribution.

#include <cstdio>

#include "src/compress/distill.h"
#include "src/compress/pruning.h"
#include "src/compress/quantization.h"
#include "src/core/tradeoff.h"
#include "src/data/synthetic.h"
#include "src/ensemble/ensemble.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

int main() {
  using namespace dlsys;
  Rng rng(97);
  Dataset data = MakeGaussianBlobs(5000, 16, 8, 1.2, &rng);
  TrainTestSplit split = Split(data, 0.85);
  TradeoffRegistry registry;

  auto record = [&](const char* name, TradeoffClass cls,
                    const char* section, double train_s, double acc,
                    double model_bytes) {
    registry.Register({name, cls, section, {}});
    MetricsReport run;
    run.Set(metric::kTrainSeconds, train_s);
    run.Set(metric::kAccuracy, acc);
    run.Set(metric::kModelBytes, model_bytes);
    registry.Record(name, run);
  };

  // Baseline dense model.
  Sequential base = MakeMlp(16, {96, 64}, 8);
  base.Init(&rng);
  {
    Sgd opt(0.05, 0.9);
    TrainConfig tc;
    tc.epochs = 25;
    Stopwatch watch;
    Train(&base, &opt, split.train, tc);
    record("dense-fp32", TradeoffClass::kAccuracyVsEfficiency, "2",
           watch.Seconds(), Evaluate(&base, split.test).accuracy,
           static_cast<double>(base.ModelBytes()));
  }
  // Quantized variants.
  for (int64_t bits : {8, 4, 2}) {
    Sequential net = base.Clone();
    Stopwatch watch;
    auto nq = QuantizeNetwork(&net, QuantizerKind::kKMeans, bits);
    if (!nq.ok()) return 1;
    char name[32];
    std::snprintf(name, sizeof(name), "quantized-%lldb",
                  static_cast<long long>(bits));
    record(name, TradeoffClass::kAccuracyVsEfficiency, "2.1",
           watch.Seconds(), Evaluate(&net, split.test).accuracy,
           static_cast<double>(nq->huffman_bytes));
  }
  // Pruned + finetuned.
  for (double sparsity : {0.7, 0.9}) {
    Sequential net = base.Clone();
    Stopwatch watch;
    auto mask = BuildPruneMask(&net, PruneCriterion::kMagnitude, sparsity,
                               nullptr, nullptr);
    if (!mask.ok()) return 1;
    mask->Apply(&net);
    Sgd opt(0.02, 0.9);
    TrainConfig tc;
    tc.epochs = 5;
    tc.on_step = [&](int64_t, int64_t, double) { mask->Apply(&net); };
    Train(&net, &opt, split.train, tc);
    char name[32];
    std::snprintf(name, sizeof(name), "pruned-%.0f%%", sparsity * 100);
    record(name, TradeoffClass::kAccuracyVsEfficiency, "2.1",
           watch.Seconds(), Evaluate(&net, split.test).accuracy,
           static_cast<double>(SparseModelBytes(&net, *mask)));
  }
  // Distilled student.
  {
    Sequential student = MakeMlp(16, {16}, 8);
    student.Init(&rng);
    Sgd opt(0.05, 0.9);
    DistillConfig dc;
    dc.epochs = 25;
    Stopwatch watch;
    if (!Distill(&base, &student, &opt, split.train, dc).ok()) return 1;
    record("distilled-16", TradeoffClass::kAccuracyVsEfficiency, "2.1",
           watch.Seconds(), Evaluate(&student, split.test).accuracy,
           static_cast<double>(student.ModelBytes()));
  }
  // Snapshot ensemble.
  {
    MemberBuilder builder = [](int64_t) { return MakeMlp(16, {96, 64}, 8); };
    auto run = TrainSnapshotEnsemble(builder, 5, 5, split.train, 32, 0.05, 3);
    if (!run.ok()) return 1;
    auto& e = const_cast<Ensemble&>(run->ensemble);
    record("snapshot-x5", TradeoffClass::kAccuracyVsEfficiency, "2.1",
           run->report.Get(metric::kTrainSeconds), e.Accuracy(split.test),
           run->report.Get(metric::kModelBytes));
  }

  std::printf("E20: technique placements on the tradeoff planes\n");
  std::printf("%-16s %12s %12s %12s\n", "technique", "train_s", "accuracy",
              "model_KB");
  for (const auto& profile : registry.profiles()) {
    const MetricsReport& run = profile.runs.back();
    std::printf("%-16s %12.3f %12.3f %12.1f\n", profile.name.c_str(),
                run.Get(metric::kTrainSeconds), run.Get(metric::kAccuracy),
                run.Get(metric::kModelBytes) / 1e3);
  }

  std::printf("\nPareto frontier on (model bytes DOWN, accuracy UP):\n");
  auto points = registry.Points(metric::kModelBytes, metric::kAccuracy);
  for (const auto& p : ParetoFrontier(points)) {
    std::printf("  %-16s %10.1f KB  acc %.3f\n", p.technique.c_str(),
                p.x / 1e3, p.y);
  }
  std::printf("\nPareto frontier on (train seconds DOWN, accuracy UP):\n");
  auto tpoints = registry.Points(metric::kTrainSeconds, metric::kAccuracy);
  for (const auto& p : ParetoFrontier(tpoints)) {
    std::printf("  %-16s %10.3f s   acc %.3f\n", p.technique.c_str(), p.x,
                p.y);
  }
  std::printf("\nexpected shape: no single technique dominates — the "
              "frontier mixes quantization (size), distillation "
              "(size+speed), and ensembles (accuracy), which is the "
              "tutorial's central claim.\n");
  return 0;
}
