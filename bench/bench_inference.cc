// Inference engine bench (E31): steady-state allocation counts and batch-1
// latency of the arena-planned engine vs the training forward, im2col vs
// direct convolution, int8 vs fp32 dense GEMM at equal shapes, and the
// micro-batching throughput/p99 frontier. Results land in
// BENCH_inference.json.
//
// Standalone binary (not google-benchmark): it installs a global
// operator new hook to count heap allocations, which must not race with a
// benchmark framework's own bookkeeping. Pass --smoke (or set
// DLSYS_BENCH_SMOKE=1) for a seconds-scale CI run at tiny shapes.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/compress/quantization.h"
#include "src/core/metrics.h"
#include "src/core/rng.h"
#include "src/infer/batcher.h"
#include "src/obs/counters.h"
#include "src/infer/engine.h"
#include "src/nn/layers.h"
#include "src/nn/train.h"
#include "src/runtime/runtime.h"
#include "src/tensor/int8_gemm.h"
#include "src/tensor/ops.h"

// ----------------------------------------------------- allocation hook
// Counts every heap allocation in the process, including the aligned
// overloads the TensorArena uses. The steady-state section samples this
// counter around hot-loop calls: the arena path must add exactly zero.

namespace {
std::atomic<int64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) std::abort();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<size_t>(align), size > 0 ? size : 1) !=
      0) {
    std::abort();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dlsys {
namespace {

volatile float g_sink = 0.0f;  // defeats dead-code elimination

/// Median-of-5 wall time in milliseconds of `iters` calls to fn.
template <typename Fn>
double MedianMs(int iters, Fn&& fn) {
  std::vector<double> reps;
  for (int r = 0; r < 5; ++r) {
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) fn();
    reps.push_back(watch.Seconds() * 1000.0 / iters);
  }
  std::sort(reps.begin(), reps.end());
  return reps[2];
}

/// Interleaved A/B/... timing: runs one rep of every candidate before the
/// next rep of any, so slow drift (thermal, frequency scaling) lands on
/// all sides equally instead of biasing whichever was measured last.
/// Returns the per-candidate median (of 7 reps) in ms per call.
std::vector<double> InterleavedMedianMs(
    int iters, const std::vector<std::function<void()>>& fns) {
  std::vector<std::vector<double>> reps(fns.size());
  for (int r = 0; r < 7; ++r) {
    for (size_t i = 0; i < fns.size(); ++i) {
      Stopwatch watch;
      for (int it = 0; it < iters; ++it) fns[i]();
      reps[i].push_back(watch.Seconds() * 1000.0 / iters);
    }
  }
  std::vector<double> medians;
  for (std::vector<double>& r : reps) {
    std::sort(r.begin(), r.end());
    medians.push_back(r[r.size() / 2]);
  }
  return medians;
}

bool g_smoke = false;

// -------------------------------------------- 1. steady-state allocations

struct SteadyState {
  int64_t engine_allocs_per_call = 0;
  int64_t forward_allocs_per_call = 0;
  double engine_batch1_ms = 0.0;
  double forward_batch1_ms = 0.0;
};

SteadyState BenchSteadyState() {
  Rng rng(51);
  const int64_t img = g_smoke ? 8 : 16;
  Sequential net = MakeCnn(img, g_smoke ? 3 : 8, g_smoke ? 4 : 8, 10);
  net.Init(&rng);
  auto compiled =
      InferenceEngine::Compile(net, {1, img, img}, EngineConfig{8});
  DLSYS_CHECK(compiled.ok(), "steady-state compile failed");
  InferenceEngine engine = std::move(compiled).value();

  Tensor x({1, 1, img, img});
  x.FillGaussian(&rng, 1.0f);
  Tensor out({1, engine.output_elems_per_example()});
  DLSYS_CHECK(engine.PredictInto(x.data(), 1, out.data()).ok(), "warm");

  SteadyState result;
  const int calls = g_smoke ? 5 : 50;
  const int64_t before_engine = g_heap_allocs.load();
  for (int i = 0; i < calls; ++i) {
    DLSYS_CHECK(engine.PredictInto(x.data(), 1, out.data()).ok(), "predict");
  }
  result.engine_allocs_per_call = (g_heap_allocs.load() - before_engine) / calls;

  const int64_t before_forward = g_heap_allocs.load();
  for (int i = 0; i < calls; ++i) {
    g_sink = net.Forward(x, CacheMode::kNoCache)[0];
  }
  result.forward_allocs_per_call =
      (g_heap_allocs.load() - before_forward) / calls;

  const int iters = g_smoke ? 3 : 20;
  result.engine_batch1_ms = MedianMs(iters, [&] {
    DLSYS_CHECK(engine.PredictInto(x.data(), 1, out.data()).ok(), "predict");
    g_sink = out[0];
  });
  result.forward_batch1_ms =
      MedianMs(iters, [&] { g_sink = net.Forward(x, CacheMode::kNoCache)[0]; });
  return result;
}

// --------------------------------------------------- 2. im2col vs direct

struct ConvAlgoRow {
  double im2col_ms = 0.0;
  double direct_ms = 0.0;
};

ConvAlgoRow BenchConvAlgo() {
  Rng rng(52);
  const int64_t img = g_smoke ? 8 : 24;
  Sequential net = MakeCnn(img, g_smoke ? 3 : 12, g_smoke ? 4 : 16, 10);
  net.Init(&rng);
  const int64_t batch = g_smoke ? 2 : 8;
  Tensor x({batch, 1, img, img});
  x.FillGaussian(&rng, 1.0f);

  ConvAlgoRow row;
  for (ConvAlgo algo : {ConvAlgo::kIm2col, ConvAlgo::kDirect}) {
    EngineConfig config;
    config.max_batch = batch;
    config.conv_algo = algo;
    auto compiled = InferenceEngine::Compile(net, {1, img, img}, config);
    DLSYS_CHECK(compiled.ok(), "conv-algo compile failed");
    InferenceEngine engine = std::move(compiled).value();
    Tensor out({batch, engine.output_elems_per_example()});
    const int iters = g_smoke ? 3 : 10;
    const double ms = MedianMs(iters, [&] {
      DLSYS_CHECK(engine.PredictInto(x.data(), batch, out.data()).ok(),
                  "predict");
      g_sink = out[0];
    });
    (algo == ConvAlgo::kIm2col ? row.im2col_ms : row.direct_ms) = ms;
  }
  return row;
}

// ---------------------------------------------------- 3. int8 vs fp32 GEMM

struct GemmRow {
  int64_t m = 0, k = 0, n = 0;
  double fp32_ms = 0.0;
  double int8_ms = 0.0;       ///< integer GEMM alone
  double int8_full_ms = 0.0;  ///< quantize + GEMM + requantize epilogue
};

GemmRow BenchInt8Gemm() {
  Rng rng(53);
  GemmRow row;
  row.m = g_smoke ? 8 : 64;
  row.k = g_smoke ? 64 : 768;
  row.n = g_smoke ? 32 : 768;
  const int64_t m = row.m, k = row.k, n = row.n;

  Tensor a({m, k}), w({k, n});
  a.FillGaussian(&rng, 1.0f);
  w.FillGaussian(&rng, 0.1f);
  std::vector<float> c(static_cast<size_t>(m * n));
  const int iters = g_smoke ? 3 : 10;
  row.fp32_ms = MedianMs(iters, [&] {
    MatMulInto(a.data(), w.data(), c.data(), m, k, n);
    g_sink = c[0];
  });

  // Weights quantized per output feature: rows of the transposed matrix.
  Tensor wt({n, k});
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t p = 0; p < k; ++p) wt[j * k + p] = w[p * n + j];
  }
  SymmetricInt8Matrix qw = SymmetricQuantizeRows(wt);
  std::vector<int8_t> qa(static_cast<size_t>(m * k));
  std::vector<float> qa_scales(static_cast<size_t>(m));
  std::vector<int32_t> acc(static_cast<size_t>(m * n));
  SymmetricQuantizeRowsInto(a.data(), m, k, qa.data(), qa_scales.data());

  row.int8_ms = MedianMs(iters, [&] {
    Int8GemmTransBInto(qa.data(), qw.values.data(), acc.data(), m, k, n);
    g_sink = static_cast<float>(acc[0]);
  });
  row.int8_full_ms = MedianMs(iters, [&] {
    SymmetricQuantizeRowsInto(a.data(), m, k, qa.data(), qa_scales.data());
    Int8GemmTransBInto(qa.data(), qw.values.data(), acc.data(), m, k, n);
    for (int64_t i = 0; i < m; ++i) {
      const float sx = qa_scales[static_cast<size_t>(i)];
      for (int64_t j = 0; j < n; ++j) {
        c[static_cast<size_t>(i * n + j)] =
            static_cast<float>(acc[static_cast<size_t>(i * n + j)]) * sx *
            qw.scales[static_cast<size_t>(j)];
      }
    }
    g_sink = c[0];
  });
  return row;
}

// ------------------------------------------------- 4. micro-batch frontier

struct FrontierRow {
  int64_t max_batch = 0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
};

FrontierRow BenchFrontierPoint(InferenceEngine* engine, int64_t max_batch) {
  Rng rng(54);
  const int64_t in_elems = engine->input_elems_per_example();
  const int64_t requests = g_smoke ? 64 : 2048;
  const double interarrival_ms = 0.01;  // offered load ~100k req/s

  MicroBatcherConfig config;
  config.max_batch = max_batch;
  config.max_delay_ms = 0.5;
  MicroBatcher batcher(engine, config);

  // The batcher records each request's queueing + service delay into the
  // registry histogram; the bench reads quantiles back from there instead
  // of keeping a local LatencyHistogram. Reset scopes the read to this
  // frontier point. (A -DDLSYS_OBS=0 build compiles the recording sites
  // out, so latency quantiles read as zero there.)
  obs::SharedHistogram* latency =
      obs::CounterRegistry::Global().histogram("infer.microbatch_latency_ms");
  latency->Reset();

  Tensor example({in_elems});
  for (int64_t r = 0; r < requests; ++r) {
    example.FillGaussian(&rng, 1.0f);
    batcher.Submit(example, static_cast<double>(r) * interarrival_ms);
  }
  batcher.Flush();

  // Throughput is engine-side: examples per second of measured service
  // time (each batch's service appears once per member, so divide by the
  // member count).
  double service_sum_ms = 0.0;
  for (const MicroBatcher::Completion& done : batcher.completions()) {
    service_sum_ms += (done.finish_ms - done.start_ms) /
                      static_cast<double>(done.batch_size);
  }

  FrontierRow row;
  row.max_batch = max_batch;
  row.throughput_rps =
      static_cast<double>(requests) / (service_sum_ms / 1000.0);
  row.p50_ms = latency->Quantile(0.5);
  row.p99_ms = latency->Quantile(0.99);
  row.mean_batch = static_cast<double>(requests) /
                   static_cast<double>(batcher.batches_run());
  return row;
}

std::vector<FrontierRow> BenchFrontier() {
  Rng rng(55);
  Sequential net =
      MakeMlp(64, {g_smoke ? 64 : 256, g_smoke ? 32 : 256}, 10);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {64}, EngineConfig{64});
  DLSYS_CHECK(compiled.ok(), "frontier compile failed");
  InferenceEngine engine = std::move(compiled).value();

  std::vector<FrontierRow> rows;
  for (int64_t b : {1, 4, 16, 64}) {
    rows.push_back(BenchFrontierPoint(&engine, b));
  }
  return rows;
}

// ------------------------------------------------ 5. pass pipeline (E36)

struct PassPipelineRows {
  double dense_relu_unfused_ms = 0.0;  ///< fp32 dense+relu, DLSYS_PASSES=none
  double dense_relu_fused_ms = 0.0;    ///< same net, fusion pass on
  double conv_relu_unfused_ms = 0.0;
  double conv_relu_fused_ms = 0.0;
  double int8_none_ms = 0.0;     ///< quantized chain, all passes off
  double int8_fuse_qe_ms = 0.0;  ///< + fusion and quant/dequant elimination
  double int8_fold_ms = 0.0;     ///< + constant folding alone
  double int8_all_ms = 0.0;      ///< the full pipeline
  int64_t nodes_unfused = 0;     ///< funnel MLP graph nodes, fusion off
  int64_t nodes_fused = 0;       ///< same graph after fusion
  int64_t funnel_unpacked_bytes = 0;  ///< ping-pong workspace plan
  int64_t funnel_packed_bytes = 0;    ///< liveness-packed plan
  bool fp32_bitwise_equal = false;    ///< fused output == unfused, bitwise
};

/// Times one net compiled with DLSYS_PASSES=none vs =all and bit-compares
/// the outputs. Engine arenas land on whatever pages the allocator hands
/// out, and at these shapes page placement swings per-call time by more
/// than the rewrite under test (up to ~15% observed, in either direction,
/// keyed on which engine compiled last). So instead of one engine pair,
/// sample several freshly compiled pairs with alternating compile order
/// and take each side's median — the placement lottery then cancels
/// instead of systematically biasing one side.
struct FusedPairMs {
  double unfused_ms = 0.0;
  double fused_ms = 0.0;
  bool bitwise_equal = true;
};

FusedPairMs TimeFusedPair(const Sequential& net,
                          const std::vector<int64_t>& shape, int64_t batch,
                          const Tensor& x, int iters, int pairs) {
  FusedPairMs result;
  std::vector<double> un_ms, fu_ms;
  for (int p = 0; p < pairs; ++p) {
    auto compile = [&](const char* spec) {
      setenv("DLSYS_PASSES", spec, 1);
      auto compiled = InferenceEngine::Compile(net, shape, EngineConfig{batch});
      DLSYS_CHECK(compiled.ok(), "pass-pipeline compile failed");
      return std::move(compiled).value();
    };
    const bool fused_first = (p % 2) != 0;
    InferenceEngine a = compile(fused_first ? "all" : "none");
    InferenceEngine b = compile(fused_first ? "none" : "all");
    InferenceEngine& unfused = fused_first ? b : a;
    InferenceEngine& fused = fused_first ? a : b;
    Tensor out_unfused({batch, unfused.output_elems_per_example()});
    Tensor out_fused({batch, fused.output_elems_per_example()});
    const std::vector<double> ms = InterleavedMedianMs(
        iters,
        {[&] {
           DLSYS_CHECK(
               unfused.PredictInto(x.data(), batch, out_unfused.data()).ok(),
               "predict");
           g_sink = out_unfused[0];
         },
         [&] {
           DLSYS_CHECK(
               fused.PredictInto(x.data(), batch, out_fused.data()).ok(),
               "predict");
           g_sink = out_fused[0];
         }});
    un_ms.push_back(ms[0]);
    fu_ms.push_back(ms[1]);
    result.bitwise_equal =
        result.bitwise_equal &&
        std::memcmp(out_unfused.data(), out_fused.data(),
                    static_cast<size_t>(out_unfused.bytes())) == 0;
  }
  std::sort(un_ms.begin(), un_ms.end());
  std::sort(fu_ms.begin(), fu_ms.end());
  result.unfused_ms = un_ms[un_ms.size() / 2];
  result.fused_ms = fu_ms[fu_ms.size() / 2];
  return result;
}

PassPipelineRows BenchPassPipeline() {
  Rng rng(56);
  PassPipelineRows rows;
  const int iters = g_smoke ? 3 : 10;
  const char* prior = std::getenv("DLSYS_PASSES");
  const std::string saved = prior != nullptr ? prior : "";
  const auto set_passes = [](const char* v) { setenv("DLSYS_PASSES", v, 1); };

  // Dense + relu at the E31 GEMM shape (64 x 768 x 768): the fusion pass
  // folds the bias add and relu into the GEMM epilogue, dropping two full
  // read-modify-write passes over the 64x768 output.
  {
    const int64_t batch = g_smoke ? 8 : 64;
    const int64_t k = g_smoke ? 64 : 768, n = g_smoke ? 32 : 768;
    Sequential net;
    net.Emplace<Dense>(k, n);
    net.Emplace<ReLU>();
    net.Init(&rng);
    Tensor x({batch, k});
    x.FillGaussian(&rng, 1.0f);
    const FusedPairMs pair =
        TimeFusedPair(net, {k}, batch, x, iters, g_smoke ? 2 : 13);
    rows.dense_relu_unfused_ms = pair.unfused_ms;
    rows.dense_relu_fused_ms = pair.fused_ms;
    rows.fp32_bitwise_equal = pair.bitwise_equal;
  }

  // Conv + bias + relu: same rewrite on the im2col GEMM's column kernel.
  {
    const int64_t img = g_smoke ? 8 : 24;
    Sequential net = MakeCnn(img, g_smoke ? 3 : 12, g_smoke ? 4 : 16, 10);
    net.Init(&rng);
    const int64_t batch = g_smoke ? 2 : 8;
    Tensor x({batch, 1, img, img});
    x.FillGaussian(&rng, 1.0f);
    const FusedPairMs pair = TimeFusedPair(net, {1, img, img}, batch, x,
                                           iters, g_smoke ? 2 : 13);
    rows.conv_relu_unfused_ms = pair.unfused_ms;
    rows.conv_relu_fused_ms = pair.fused_ms;
    rows.fp32_bitwise_equal =
        rows.fp32_bitwise_equal && pair.bitwise_equal;
  }

  // Quantized dense chain: folding moves the per-call weight transpose +
  // block-quantize to compile time; fusion + quant elimination then hand
  // q8 codes across the boundary instead of dequantizing and requantizing.
  {
    const int64_t batch = g_smoke ? 8 : 64;
    const int64_t f = g_smoke ? 64 : 768;
    Sequential net = MakeMlp(f, {f}, f);  // dense, relu, dense
    net.Init(&rng);
    Tensor x({batch, f});
    x.FillGaussian(&rng, 1.0f);
    EngineConfig config;
    config.max_batch = batch;
    config.numeric = EngineNumeric::kInt8;
    const char* specs[] = {"none", "fuse,quant_elim", "fold", "all"};
    std::vector<InferenceEngine> engines;
    for (const char* spec : specs) {
      set_passes(spec);
      auto compiled = InferenceEngine::Compile(net, {f}, config);
      DLSYS_CHECK(compiled.ok(), "pass-pipeline int8 compile failed");
      engines.push_back(std::move(compiled).value());
    }
    Tensor out({batch, f});
    std::vector<std::function<void()>> fns;
    for (InferenceEngine& engine : engines) {
      fns.push_back([&engine, &x, &out, batch] {
        DLSYS_CHECK(engine.PredictInto(x.data(), batch, out.data()).ok(),
                    "predict");
        g_sink = out[0];
      });
    }
    const std::vector<double> ms = InterleavedMedianMs(iters, fns);
    rows.int8_none_ms = ms[0];
    rows.int8_fuse_qe_ms = ms[1];
    rows.int8_fold_ms = ms[2];
    rows.int8_all_ms = ms[3];
  }

  // Liveness packing on a funnel MLP: widths shrink layer over layer, so
  // first-fit over live intervals overlaps the wide early activations
  // with the narrow late ones; the ping-pong plan charges 2x the widest.
  {
    Sequential net = g_smoke
                         ? MakeMlp(256, {128, 64, 32}, 10)
                         : MakeMlp(3072, {1536, 768, 384, 192, 96}, 10);
    net.Init(&rng);
    set_passes("all");
    auto compiled = InferenceEngine::Compile(
        net, {g_smoke ? 256 : 3072}, EngineConfig{g_smoke ? 8 : 64});
    DLSYS_CHECK(compiled.ok(), "pass-pipeline funnel compile failed");
    const InferenceEngine engine = std::move(compiled).value();
    rows.funnel_packed_bytes = engine.workspace_bytes();
    rows.funnel_unpacked_bytes = engine.unpacked_workspace_bytes();
    rows.nodes_fused = engine.graph_node_count();
    set_passes("none");
    auto unfused = InferenceEngine::Compile(
        net, {g_smoke ? 256 : 3072}, EngineConfig{g_smoke ? 8 : 64});
    DLSYS_CHECK(unfused.ok(), "pass-pipeline funnel compile failed");
    rows.nodes_unfused = std::move(unfused).value().graph_node_count();
  }

  if (prior != nullptr) {
    setenv("DLSYS_PASSES", saved.c_str(), 1);
  } else {
    unsetenv("DLSYS_PASSES");
  }
  DLSYS_CHECK(rows.fp32_bitwise_equal,
              "pass pipeline changed fp32 bits: fused output must be "
              "bitwise identical to the unfused schedule");
  return rows;
}

}  // namespace
}  // namespace dlsys

int main(int argc, char** argv) {
  using namespace dlsys;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  if (const char* env = std::getenv("DLSYS_BENCH_SMOKE");
      env != nullptr && env[0] == '1') {
    g_smoke = true;
  }
  RuntimeConfig::SetThreads(4);

  const SteadyState steady = BenchSteadyState();
  std::printf(
      "steady-state  engine %lld allocs/call, %.4f ms | training forward "
      "%lld allocs/call, %.4f ms\n",
      static_cast<long long>(steady.engine_allocs_per_call),
      steady.engine_batch1_ms,
      static_cast<long long>(steady.forward_allocs_per_call),
      steady.forward_batch1_ms);

  const ConvAlgoRow conv = BenchConvAlgo();
  std::printf("conv          im2col %.4f ms | direct %.4f ms | %.2fx\n",
              conv.im2col_ms, conv.direct_ms, conv.direct_ms / conv.im2col_ms);

  const GemmRow gemm = BenchInt8Gemm();
  std::printf(
      "gemm %lldx%lldx%lld  fp32 %.4f ms | int8 %.4f ms (%.2fx) | "
      "int8+requant %.4f ms (%.2fx)\n",
      static_cast<long long>(gemm.m), static_cast<long long>(gemm.k),
      static_cast<long long>(gemm.n), gemm.fp32_ms, gemm.int8_ms,
      gemm.fp32_ms / gemm.int8_ms, gemm.int8_full_ms,
      gemm.fp32_ms / gemm.int8_full_ms);

  const PassPipelineRows passes = BenchPassPipeline();
  std::printf(
      "passes dense  unfused %.4f ms | fused %.4f ms (%.2fx) | bitwise "
      "equal %s\n",
      passes.dense_relu_unfused_ms, passes.dense_relu_fused_ms,
      passes.dense_relu_unfused_ms / passes.dense_relu_fused_ms,
      passes.fp32_bitwise_equal ? "yes" : "NO");
  std::printf("passes conv   unfused %.4f ms | fused %.4f ms (%.2fx)\n",
              passes.conv_relu_unfused_ms, passes.conv_relu_fused_ms,
              passes.conv_relu_unfused_ms / passes.conv_relu_fused_ms);
  std::printf(
      "passes int8   none %.4f ms | fuse+qelim %.4f ms | fold %.4f ms | "
      "all %.4f ms (%.2fx)\n",
      passes.int8_none_ms, passes.int8_fuse_qe_ms, passes.int8_fold_ms,
      passes.int8_all_ms, passes.int8_none_ms / passes.int8_all_ms);
  std::printf(
      "passes arena  funnel graph %lld -> %lld nodes | workspace %lld -> "
      "%lld bytes (%.2fx)\n",
      static_cast<long long>(passes.nodes_unfused),
      static_cast<long long>(passes.nodes_fused),
      static_cast<long long>(passes.funnel_unpacked_bytes),
      static_cast<long long>(passes.funnel_packed_bytes),
      static_cast<double>(passes.funnel_unpacked_bytes) /
          static_cast<double>(passes.funnel_packed_bytes));

  const std::vector<FrontierRow> frontier = BenchFrontier();
  for (const FrontierRow& row : frontier) {
    std::printf(
        "microbatch b=%-3lld  %10.0f req/s | p50 %.4f ms | p99 %.4f ms | "
        "mean batch %.1f\n",
        static_cast<long long>(row.max_batch), row.throughput_rps, row.p50_ms,
        row.p99_ms, row.mean_batch);
  }

  FILE* out = std::fopen("BENCH_inference.json", "w");
  if (out == nullptr) {
    std::printf("cannot open BENCH_inference.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"smoke\": %s,\n"
               "  \"steady_state\": {\"engine_allocs_per_call\": %lld, "
               "\"forward_allocs_per_call\": %lld,\n"
               "                   \"engine_batch1_ms\": %.4f, "
               "\"forward_batch1_ms\": %.4f},\n"
               "  \"conv\": {\"im2col_ms\": %.4f, \"direct_ms\": %.4f, "
               "\"speedup\": %.2f},\n"
               "  \"int8_gemm\": {\"m\": %lld, \"k\": %lld, \"n\": %lld, "
               "\"fp32_ms\": %.4f,\n"
               "                \"int8_ms\": %.4f, \"int8_full_ms\": %.4f, "
               "\"speedup_raw\": %.2f, \"speedup_full\": %.2f},\n"
               "  \"pass_pipeline\": {\"dense_relu_unfused_ms\": %.4f, "
               "\"dense_relu_fused_ms\": %.4f,\n"
               "                    \"conv_relu_unfused_ms\": %.4f, "
               "\"conv_relu_fused_ms\": %.4f,\n"
               "                    \"int8_none_ms\": %.4f, "
               "\"int8_fuse_qe_ms\": %.4f, \"int8_fold_ms\": %.4f, "
               "\"int8_all_ms\": %.4f,\n"
               "                    \"funnel_nodes_unfused\": %lld, "
               "\"funnel_nodes_fused\": %lld,\n"
               "                    \"funnel_unpacked_bytes\": %lld, "
               "\"funnel_packed_bytes\": %lld, "
               "\"fp32_bitwise_equal\": %s},\n"
               "  \"microbatch\": [\n",
               g_smoke ? "true" : "false",
               static_cast<long long>(steady.engine_allocs_per_call),
               static_cast<long long>(steady.forward_allocs_per_call),
               steady.engine_batch1_ms, steady.forward_batch1_ms,
               conv.im2col_ms, conv.direct_ms,
               conv.direct_ms / conv.im2col_ms,
               static_cast<long long>(gemm.m), static_cast<long long>(gemm.k),
               static_cast<long long>(gemm.n), gemm.fp32_ms, gemm.int8_ms,
               gemm.int8_full_ms, gemm.fp32_ms / gemm.int8_ms,
               gemm.fp32_ms / gemm.int8_full_ms,
               passes.dense_relu_unfused_ms, passes.dense_relu_fused_ms,
               passes.conv_relu_unfused_ms, passes.conv_relu_fused_ms,
               passes.int8_none_ms, passes.int8_fuse_qe_ms,
               passes.int8_fold_ms, passes.int8_all_ms,
               static_cast<long long>(passes.nodes_unfused),
               static_cast<long long>(passes.nodes_fused),
               static_cast<long long>(passes.funnel_unpacked_bytes),
               static_cast<long long>(passes.funnel_packed_bytes),
               passes.fp32_bitwise_equal ? "true" : "false");
  for (size_t i = 0; i < frontier.size(); ++i) {
    const FrontierRow& row = frontier[i];
    std::fprintf(out,
                 "    {\"max_batch\": %lld, \"throughput_rps\": %.0f, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"mean_batch\": "
                 "%.2f}%s\n",
                 static_cast<long long>(row.max_batch), row.throughput_rps,
                 row.p50_ms, row.p99_ms, row.mean_batch,
                 i + 1 < frontier.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_inference.json\n");
  return 0;
}
