// Inference engine bench (E31): steady-state allocation counts and batch-1
// latency of the arena-planned engine vs the training forward, im2col vs
// direct convolution, int8 vs fp32 dense GEMM at equal shapes, and the
// micro-batching throughput/p99 frontier. Results land in
// BENCH_inference.json.
//
// Standalone binary (not google-benchmark): it installs a global
// operator new hook to count heap allocations, which must not race with a
// benchmark framework's own bookkeeping. Pass --smoke (or set
// DLSYS_BENCH_SMOKE=1) for a seconds-scale CI run at tiny shapes.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/compress/quantization.h"
#include "src/core/metrics.h"
#include "src/core/rng.h"
#include "src/infer/batcher.h"
#include "src/obs/counters.h"
#include "src/infer/engine.h"
#include "src/nn/train.h"
#include "src/runtime/runtime.h"
#include "src/tensor/int8_gemm.h"
#include "src/tensor/ops.h"

// ----------------------------------------------------- allocation hook
// Counts every heap allocation in the process, including the aligned
// overloads the TensorArena uses. The steady-state section samples this
// counter around hot-loop calls: the arena path must add exactly zero.

namespace {
std::atomic<int64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) std::abort();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<size_t>(align), size > 0 ? size : 1) !=
      0) {
    std::abort();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dlsys {
namespace {

volatile float g_sink = 0.0f;  // defeats dead-code elimination

/// Median-of-5 wall time in milliseconds of `iters` calls to fn.
template <typename Fn>
double MedianMs(int iters, Fn&& fn) {
  std::vector<double> reps;
  for (int r = 0; r < 5; ++r) {
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) fn();
    reps.push_back(watch.Seconds() * 1000.0 / iters);
  }
  std::sort(reps.begin(), reps.end());
  return reps[2];
}

bool g_smoke = false;

// -------------------------------------------- 1. steady-state allocations

struct SteadyState {
  int64_t engine_allocs_per_call = 0;
  int64_t forward_allocs_per_call = 0;
  double engine_batch1_ms = 0.0;
  double forward_batch1_ms = 0.0;
};

SteadyState BenchSteadyState() {
  Rng rng(51);
  const int64_t img = g_smoke ? 8 : 16;
  Sequential net = MakeCnn(img, g_smoke ? 3 : 8, g_smoke ? 4 : 8, 10);
  net.Init(&rng);
  auto compiled =
      InferenceEngine::Compile(net, {1, img, img}, EngineConfig{8});
  DLSYS_CHECK(compiled.ok(), "steady-state compile failed");
  InferenceEngine engine = std::move(compiled).value();

  Tensor x({1, 1, img, img});
  x.FillGaussian(&rng, 1.0f);
  Tensor out({1, engine.output_elems_per_example()});
  DLSYS_CHECK(engine.PredictInto(x.data(), 1, out.data()).ok(), "warm");

  SteadyState result;
  const int calls = g_smoke ? 5 : 50;
  const int64_t before_engine = g_heap_allocs.load();
  for (int i = 0; i < calls; ++i) {
    DLSYS_CHECK(engine.PredictInto(x.data(), 1, out.data()).ok(), "predict");
  }
  result.engine_allocs_per_call = (g_heap_allocs.load() - before_engine) / calls;

  const int64_t before_forward = g_heap_allocs.load();
  for (int i = 0; i < calls; ++i) {
    g_sink = net.Forward(x, CacheMode::kNoCache)[0];
  }
  result.forward_allocs_per_call =
      (g_heap_allocs.load() - before_forward) / calls;

  const int iters = g_smoke ? 3 : 20;
  result.engine_batch1_ms = MedianMs(iters, [&] {
    DLSYS_CHECK(engine.PredictInto(x.data(), 1, out.data()).ok(), "predict");
    g_sink = out[0];
  });
  result.forward_batch1_ms =
      MedianMs(iters, [&] { g_sink = net.Forward(x, CacheMode::kNoCache)[0]; });
  return result;
}

// --------------------------------------------------- 2. im2col vs direct

struct ConvAlgoRow {
  double im2col_ms = 0.0;
  double direct_ms = 0.0;
};

ConvAlgoRow BenchConvAlgo() {
  Rng rng(52);
  const int64_t img = g_smoke ? 8 : 24;
  Sequential net = MakeCnn(img, g_smoke ? 3 : 12, g_smoke ? 4 : 16, 10);
  net.Init(&rng);
  const int64_t batch = g_smoke ? 2 : 8;
  Tensor x({batch, 1, img, img});
  x.FillGaussian(&rng, 1.0f);

  ConvAlgoRow row;
  for (ConvAlgo algo : {ConvAlgo::kIm2col, ConvAlgo::kDirect}) {
    EngineConfig config;
    config.max_batch = batch;
    config.conv_algo = algo;
    auto compiled = InferenceEngine::Compile(net, {1, img, img}, config);
    DLSYS_CHECK(compiled.ok(), "conv-algo compile failed");
    InferenceEngine engine = std::move(compiled).value();
    Tensor out({batch, engine.output_elems_per_example()});
    const int iters = g_smoke ? 3 : 10;
    const double ms = MedianMs(iters, [&] {
      DLSYS_CHECK(engine.PredictInto(x.data(), batch, out.data()).ok(),
                  "predict");
      g_sink = out[0];
    });
    (algo == ConvAlgo::kIm2col ? row.im2col_ms : row.direct_ms) = ms;
  }
  return row;
}

// ---------------------------------------------------- 3. int8 vs fp32 GEMM

struct GemmRow {
  int64_t m = 0, k = 0, n = 0;
  double fp32_ms = 0.0;
  double int8_ms = 0.0;       ///< integer GEMM alone
  double int8_full_ms = 0.0;  ///< quantize + GEMM + requantize epilogue
};

GemmRow BenchInt8Gemm() {
  Rng rng(53);
  GemmRow row;
  row.m = g_smoke ? 8 : 64;
  row.k = g_smoke ? 64 : 768;
  row.n = g_smoke ? 32 : 768;
  const int64_t m = row.m, k = row.k, n = row.n;

  Tensor a({m, k}), w({k, n});
  a.FillGaussian(&rng, 1.0f);
  w.FillGaussian(&rng, 0.1f);
  std::vector<float> c(static_cast<size_t>(m * n));
  const int iters = g_smoke ? 3 : 10;
  row.fp32_ms = MedianMs(iters, [&] {
    MatMulInto(a.data(), w.data(), c.data(), m, k, n);
    g_sink = c[0];
  });

  // Weights quantized per output feature: rows of the transposed matrix.
  Tensor wt({n, k});
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t p = 0; p < k; ++p) wt[j * k + p] = w[p * n + j];
  }
  SymmetricInt8Matrix qw = SymmetricQuantizeRows(wt);
  std::vector<int8_t> qa(static_cast<size_t>(m * k));
  std::vector<float> qa_scales(static_cast<size_t>(m));
  std::vector<int32_t> acc(static_cast<size_t>(m * n));
  SymmetricQuantizeRowsInto(a.data(), m, k, qa.data(), qa_scales.data());

  row.int8_ms = MedianMs(iters, [&] {
    Int8GemmTransBInto(qa.data(), qw.values.data(), acc.data(), m, k, n);
    g_sink = static_cast<float>(acc[0]);
  });
  row.int8_full_ms = MedianMs(iters, [&] {
    SymmetricQuantizeRowsInto(a.data(), m, k, qa.data(), qa_scales.data());
    Int8GemmTransBInto(qa.data(), qw.values.data(), acc.data(), m, k, n);
    for (int64_t i = 0; i < m; ++i) {
      const float sx = qa_scales[static_cast<size_t>(i)];
      for (int64_t j = 0; j < n; ++j) {
        c[static_cast<size_t>(i * n + j)] =
            static_cast<float>(acc[static_cast<size_t>(i * n + j)]) * sx *
            qw.scales[static_cast<size_t>(j)];
      }
    }
    g_sink = c[0];
  });
  return row;
}

// ------------------------------------------------- 4. micro-batch frontier

struct FrontierRow {
  int64_t max_batch = 0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
};

FrontierRow BenchFrontierPoint(InferenceEngine* engine, int64_t max_batch) {
  Rng rng(54);
  const int64_t in_elems = engine->input_elems_per_example();
  const int64_t requests = g_smoke ? 64 : 2048;
  const double interarrival_ms = 0.01;  // offered load ~100k req/s

  MicroBatcherConfig config;
  config.max_batch = max_batch;
  config.max_delay_ms = 0.5;
  MicroBatcher batcher(engine, config);

  // The batcher records each request's queueing + service delay into the
  // registry histogram; the bench reads quantiles back from there instead
  // of keeping a local LatencyHistogram. Reset scopes the read to this
  // frontier point. (A -DDLSYS_OBS=0 build compiles the recording sites
  // out, so latency quantiles read as zero there.)
  obs::SharedHistogram* latency =
      obs::CounterRegistry::Global().histogram("infer.microbatch_latency_ms");
  latency->Reset();

  Tensor example({in_elems});
  for (int64_t r = 0; r < requests; ++r) {
    example.FillGaussian(&rng, 1.0f);
    batcher.Submit(example, static_cast<double>(r) * interarrival_ms);
  }
  batcher.Flush();

  // Throughput is engine-side: examples per second of measured service
  // time (each batch's service appears once per member, so divide by the
  // member count).
  double service_sum_ms = 0.0;
  for (const MicroBatcher::Completion& done : batcher.completions()) {
    service_sum_ms += (done.finish_ms - done.start_ms) /
                      static_cast<double>(done.batch_size);
  }

  FrontierRow row;
  row.max_batch = max_batch;
  row.throughput_rps =
      static_cast<double>(requests) / (service_sum_ms / 1000.0);
  row.p50_ms = latency->Quantile(0.5);
  row.p99_ms = latency->Quantile(0.99);
  row.mean_batch = static_cast<double>(requests) /
                   static_cast<double>(batcher.batches_run());
  return row;
}

std::vector<FrontierRow> BenchFrontier() {
  Rng rng(55);
  Sequential net =
      MakeMlp(64, {g_smoke ? 64 : 256, g_smoke ? 32 : 256}, 10);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {64}, EngineConfig{64});
  DLSYS_CHECK(compiled.ok(), "frontier compile failed");
  InferenceEngine engine = std::move(compiled).value();

  std::vector<FrontierRow> rows;
  for (int64_t b : {1, 4, 16, 64}) {
    rows.push_back(BenchFrontierPoint(&engine, b));
  }
  return rows;
}

}  // namespace
}  // namespace dlsys

int main(int argc, char** argv) {
  using namespace dlsys;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  if (const char* env = std::getenv("DLSYS_BENCH_SMOKE");
      env != nullptr && env[0] == '1') {
    g_smoke = true;
  }
  RuntimeConfig::SetThreads(4);

  const SteadyState steady = BenchSteadyState();
  std::printf(
      "steady-state  engine %lld allocs/call, %.4f ms | training forward "
      "%lld allocs/call, %.4f ms\n",
      static_cast<long long>(steady.engine_allocs_per_call),
      steady.engine_batch1_ms,
      static_cast<long long>(steady.forward_allocs_per_call),
      steady.forward_batch1_ms);

  const ConvAlgoRow conv = BenchConvAlgo();
  std::printf("conv          im2col %.4f ms | direct %.4f ms | %.2fx\n",
              conv.im2col_ms, conv.direct_ms, conv.direct_ms / conv.im2col_ms);

  const GemmRow gemm = BenchInt8Gemm();
  std::printf(
      "gemm %lldx%lldx%lld  fp32 %.4f ms | int8 %.4f ms (%.2fx) | "
      "int8+requant %.4f ms (%.2fx)\n",
      static_cast<long long>(gemm.m), static_cast<long long>(gemm.k),
      static_cast<long long>(gemm.n), gemm.fp32_ms, gemm.int8_ms,
      gemm.fp32_ms / gemm.int8_ms, gemm.int8_full_ms,
      gemm.fp32_ms / gemm.int8_full_ms);

  const std::vector<FrontierRow> frontier = BenchFrontier();
  for (const FrontierRow& row : frontier) {
    std::printf(
        "microbatch b=%-3lld  %10.0f req/s | p50 %.4f ms | p99 %.4f ms | "
        "mean batch %.1f\n",
        static_cast<long long>(row.max_batch), row.throughput_rps, row.p50_ms,
        row.p99_ms, row.mean_batch);
  }

  FILE* out = std::fopen("BENCH_inference.json", "w");
  if (out == nullptr) {
    std::printf("cannot open BENCH_inference.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"smoke\": %s,\n"
               "  \"steady_state\": {\"engine_allocs_per_call\": %lld, "
               "\"forward_allocs_per_call\": %lld,\n"
               "                   \"engine_batch1_ms\": %.4f, "
               "\"forward_batch1_ms\": %.4f},\n"
               "  \"conv\": {\"im2col_ms\": %.4f, \"direct_ms\": %.4f, "
               "\"speedup\": %.2f},\n"
               "  \"int8_gemm\": {\"m\": %lld, \"k\": %lld, \"n\": %lld, "
               "\"fp32_ms\": %.4f,\n"
               "                \"int8_ms\": %.4f, \"int8_full_ms\": %.4f, "
               "\"speedup_raw\": %.2f, \"speedup_full\": %.2f},\n"
               "  \"microbatch\": [\n",
               g_smoke ? "true" : "false",
               static_cast<long long>(steady.engine_allocs_per_call),
               static_cast<long long>(steady.forward_allocs_per_call),
               steady.engine_batch1_ms, steady.forward_batch1_ms,
               conv.im2col_ms, conv.direct_ms,
               conv.direct_ms / conv.im2col_ms,
               static_cast<long long>(gemm.m), static_cast<long long>(gemm.k),
               static_cast<long long>(gemm.n), gemm.fp32_ms, gemm.int8_ms,
               gemm.int8_full_ms, gemm.fp32_ms / gemm.int8_ms,
               gemm.fp32_ms / gemm.int8_full_ms);
  for (size_t i = 0; i < frontier.size(); ++i) {
    const FrontierRow& row = frontier[i];
    std::fprintf(out,
                 "    {\"max_batch\": %lld, \"throughput_rps\": %.0f, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"mean_batch\": "
                 "%.2f}%s\n",
                 static_cast<long long>(row.max_batch), row.throughput_rps,
                 row.p50_ms, row.p99_ms, row.mean_batch,
                 i + 1 < frontier.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_inference.json\n");
  return 0;
}
