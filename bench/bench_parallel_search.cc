// E7 — Optimize-then-parallelize (Section 2.2, FlexFlow): spending
// optimization time on strategy search buys training throughput.
// Sweeps device counts and search budgets against data-parallel,
// greedy, and random baselines.

#include <cstdio>

#include "src/parallel/strategy.h"

namespace {
// A 12-layer stack alternating parameter-heavy and activation-heavy
// layers, the regime where neither pure data nor pure model parallelism
// is optimal.
std::vector<dlsys::ParLayerCost> Workload() {
  std::vector<dlsys::ParLayerCost> out;
  for (int64_t i = 0; i < 12; ++i) {
    dlsys::ParLayerCost c;
    c.forward_flops = 3'000'000'000;
    c.backward_flops = 6'000'000'000;
    if (i % 2 == 0) {
      c.param_bytes = 96 << 20;
      c.activation_bytes = 2 << 20;
    } else {
      c.param_bytes = 2 << 20;
      c.activation_bytes = 24 << 20;
    }
    out.push_back(c);
  }
  return out;
}
}  // namespace

int main() {
  using namespace dlsys;

  std::printf("E7a: strategy quality by device count "
              "(step time in ms, lower is better)\n");
  std::printf("%-9s %12s %10s %10s %10s %12s\n", "devices", "data-par",
              "greedy", "random", "mcmc", "mcmc_gain");
  for (int64_t devices : {2, 4, 8, 16}) {
    DeviceGraph graph{devices, 1e12, 1e10, 1e-6};
    ParallelSimulator sim(graph, Workload());
    const double baseline = sim.StepSeconds(sim.DataParallelBaseline());
    SearchResult greedy = GreedyStrategy(sim);
    SearchConfig config;
    config.iterations = 4000;
    SearchResult random = RandomStrategy(sim, config);
    SearchResult mcmc = OptimizeStrategy(sim, config);
    std::printf("%-9lld %12.2f %10.2f %10.2f %10.2f %11.2fx\n",
                static_cast<long long>(devices), baseline * 1e3,
                greedy.step_seconds * 1e3, random.step_seconds * 1e3,
                mcmc.step_seconds * 1e3, baseline / mcmc.step_seconds);
  }

  std::printf("\nE7b: search-budget sweep on 8 devices "
              "(optimize time vs achieved step time)\n");
  std::printf("%-10s %14s %14s %12s\n", "budget", "optimize_ms",
              "step_ms", "vs_data-par");
  DeviceGraph graph{8, 1e12, 1e10, 1e-6};
  ParallelSimulator sim(graph, Workload());
  const double baseline = sim.StepSeconds(sim.DataParallelBaseline());
  for (int64_t budget : {10, 50, 200, 1000, 5000, 20000}) {
    SearchConfig config;
    config.iterations = budget;
    SearchResult result = OptimizeStrategy(sim, config);
    std::printf("%-10lld %14.2f %14.2f %11.2fx\n",
                static_cast<long long>(budget),
                result.optimize_seconds * 1e3, result.step_seconds * 1e3,
                baseline / result.step_seconds);
  }
  std::printf("\nexpected shape: the optimized strategy beats pure data "
              "parallelism more as devices grow; quality improves with "
              "budget then saturates — milliseconds of search buy a "
              "persistent per-step speedup (the FlexFlow thesis).\n");
  return 0;
}
