// Serving-layer bench (E32): the batching throughput/p99 frontier across
// worker counts, the shed-rate curve of deadline-aware admission under
// rising offered load, and tail latency across an atomic hot swap under
// sustained load. Results land in BENCH_serving.json.
//
// All scheduling runs on the simulated clock from the declared service
// cost model, so every number except wall_seconds / real_rps replays
// bit for bit for a fixed seed. Engines execute for real on the server's
// worker pool; DLSYS_THREADS stays at 1 so the pool's inter-op
// parallelism is not serialized behind the global intra-op pool (see
// DESIGN.md §2e). Pass --smoke (or DLSYS_BENCH_SMOKE=1) for a
// seconds-scale CI run.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/rng.h"
#include "src/nn/train.h"
#include "src/obs/counters.h"
#include "src/runtime/runtime.h"
#include "src/serve/admission.h"
#include "src/serve/loadgen.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"

namespace dlsys {
namespace {

bool g_smoke = false;

constexpr int64_t kInElems = 32;

Sequential MakeServeNet(uint64_t seed) {
  Sequential net = MakeMlp(kInElems, {g_smoke ? 32 : 128}, 10);
  Rng rng(seed);
  net.Init(&rng);
  return net;
}

struct ServerUnderTest {
  std::unique_ptr<ModelRegistry> registry;
  std::unique_ptr<Server> server;
};

ServerUnderTest MakeServer(const ServerConfig& config) {
  ServerUnderTest sut;
  sut.registry = std::make_unique<ModelRegistry>();
  auto created = Server::Create(sut.registry.get(), config);
  DLSYS_CHECK(created.ok(), "server config invalid");
  sut.server = std::move(created).value();
  auto version = sut.server->Publish("m", MakeServeNet(71), {kInElems});
  DLSYS_CHECK(version.ok(), "publish failed");
  return sut;
}

/// The server records every completion's simulated latency into the
/// registry histogram "serve.latency_ms"; benches read their p50/p99
/// from there instead of keeping local LatencyHistogram copies. Reset
/// before a run scopes the registry's view to that run. (A -DDLSYS_OBS=0
/// build compiles the server's recording sites out, so the quantiles
/// read as zero there.)
obs::SharedHistogram* ServeLatency() {
  return obs::CounterRegistry::Global().histogram("serve.latency_ms");
}

/// Offered rate that saturates the declared cost model at full batches.
double CapacityRps(const ServerConfig& config) {
  return static_cast<double>(config.workers) *
         static_cast<double>(config.batch.max_batch) * 1000.0 /
         EstimateServiceMs(config.cost, config.batch.max_batch);
}

// ------------------------------------------- 1. throughput/p99 frontier

struct FrontierRow {
  int workers = 0;
  int64_t max_batch = 0;
  double max_delay_ms = 0.0;
  double offered_rps = 0.0;
  double sim_rps = 0.0;
  double real_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
};

std::vector<FrontierRow> BenchFrontier() {
  std::vector<FrontierRow> rows;
  const std::vector<int> worker_counts =
      g_smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  struct Policy {
    int64_t max_batch;
    double max_delay_ms;
  };
  const std::vector<Policy> policies =
      g_smoke ? std::vector<Policy>{{1, 0.0}, {8, 0.2}}
              : std::vector<Policy>{{1, 0.0}, {8, 0.2}, {32, 0.5}};

  for (int workers : worker_counts) {
    for (const Policy& policy : policies) {
      ServerConfig config;
      config.workers = workers;
      config.batch.max_batch = policy.max_batch;
      config.batch.max_delay_ms = policy.max_delay_ms;
      config.queue_capacity = 64 * policy.max_batch;
      config.default_deadline_ms = 1e9;  // frontier: nothing sheds
      ServerUnderTest sut = MakeServer(config);

      OpenLoopConfig load;
      load.seed = 72;
      load.requests = g_smoke ? 200 : 4000;
      load.rate_rps = 0.8 * CapacityRps(config);  // feasible but busy
      load.model = "m";
      ServeLatency()->Reset();
      const LoadReport report = RunOpenLoop(sut.server.get(), load);
      DLSYS_CHECK(report.completed == report.admitted, "lost requests");

      FrontierRow row;
      row.workers = workers;
      row.max_batch = policy.max_batch;
      row.max_delay_ms = policy.max_delay_ms;
      row.offered_rps = load.rate_rps;
      row.sim_rps = report.sim_throughput_rps;
      row.real_rps = report.real_throughput_rps;
      row.p50_ms = ServeLatency()->Quantile(0.5);
      row.p99_ms = ServeLatency()->Quantile(0.99);
      const MetricsReport m = sut.server->metrics();
      row.mean_batch = m.Get("serve.batches") > 0
                           ? m.Get("serve.admitted") / m.Get("serve.batches")
                           : 0.0;
      rows.push_back(row);
    }
  }
  return rows;
}

// ------------------------------------------------- 2. shed-rate curve

struct ShedRow {
  double load_multiplier = 0.0;
  double offered_rps = 0.0;
  double shed_fraction = 0.0;
  double deadline_miss_fraction = 0.0;  ///< of completed requests
  double p99_ms = 0.0;
  double goodput_rps = 0.0;  ///< completed within deadline, per sim second
};

std::vector<ShedRow> BenchShedCurve() {
  std::vector<ShedRow> rows;
  const std::vector<double> multipliers =
      g_smoke ? std::vector<double>{0.5, 2.0}
              : std::vector<double>{0.5, 0.8, 1.2, 2.0, 4.0};
  for (double mult : multipliers) {
    ServerConfig config;
    config.workers = 2;
    config.batch.max_batch = 8;
    config.batch.max_delay_ms = 0.2;
    config.queue_capacity = 4 * config.batch.max_batch;
    config.default_deadline_ms = 5.0;
    ServerUnderTest sut = MakeServer(config);

    OpenLoopConfig load;
    load.seed = 73;
    load.requests = g_smoke ? 300 : 4000;
    load.rate_rps = mult * CapacityRps(config);
    load.model = "m";
    ServeLatency()->Reset();
    const LoadReport report = RunOpenLoop(sut.server.get(), load);

    ShedRow row;
    row.load_multiplier = mult;
    row.offered_rps = load.rate_rps;
    row.shed_fraction = static_cast<double>(report.shed) /
                        static_cast<double>(report.offered);
    row.deadline_miss_fraction =
        report.completed > 0 ? static_cast<double>(report.deadline_missed) /
                                   static_cast<double>(report.completed)
                             : 0.0;
    row.p99_ms = ServeLatency()->Quantile(0.99);
    row.goodput_rps =
        report.duration_ms > 0.0
            ? static_cast<double>(report.completed - report.deadline_missed) /
                  (report.duration_ms / 1000.0)
            : 0.0;
    rows.push_back(row);
  }
  return rows;
}

// ---------------------------------------------- 3. hot swap under load

struct SwapResult {
  int64_t offered = 0;
  int64_t admitted = 0;
  int64_t completed = 0;
  int64_t lost = 0;  ///< admitted - completed; the headline must be 0
  int64_t served_v1 = 0;
  int64_t served_v2 = 0;
  double p99_before_ms = 0.0;  ///< first third: steady v1
  double p99_during_ms = 0.0;  ///< middle third: the swap lands here
  double p99_after_ms = 0.0;   ///< last third: steady v2
};

SwapResult BenchHotSwap() {
  ServerConfig config;
  config.workers = 2;
  config.batch.max_batch = 8;
  config.batch.max_delay_ms = 0.2;
  config.queue_capacity = 8 * config.batch.max_batch;
  config.default_deadline_ms = 1e9;  // measure latency, not shedding
  ServerUnderTest sut = MakeServer(config);
  const Sequential net2 = MakeServeNet(74);

  OpenLoopConfig load;
  load.seed = 75;
  load.requests = g_smoke ? 300 : 3000;
  load.rate_rps = 0.7 * CapacityRps(config);
  load.model = "m";
  Server* server = sut.server.get();
  const int64_t swap_at = load.requests / 2;
  const LoadReport report = RunOpenLoop(
      server, load, [server, &net2, swap_at](int64_t i) {
        if (i == swap_at) {
          DLSYS_CHECK(server->Publish("m", net2, {kInElems}).ok(),
                      "hot swap failed");
        }
      });

  SwapResult result;
  result.offered = report.offered;
  result.admitted = report.admitted;
  result.completed = report.completed;
  result.lost = report.admitted - report.completed;
  const MetricsReport m = server->metrics();
  result.served_v1 = static_cast<int64_t>(m.Get("serve.m.served_v1"));
  result.served_v2 = static_cast<int64_t>(m.Get("serve.m.served_v2"));

  // The swap windows slice completions by request id after the fact, so
  // they are recorded here rather than inside the server; they still live
  // in the registry so one ExportJson carries every serving histogram.
  obs::CounterRegistry& reg = obs::CounterRegistry::Global();
  obs::SharedHistogram* windows[3] = {reg.histogram("serve.swap.w0"),
                                      reg.histogram("serve.swap.w1"),
                                      reg.histogram("serve.swap.w2")};
  for (obs::SharedHistogram* w : windows) w->Reset();
  const int64_t third = load.requests / 3;
  for (const Server::Completion& c : server->completions()) {
    const int64_t w = std::min<int64_t>(c.id / third, 2);
    windows[w]->Record(c.finish_ms - c.arrival_ms);
  }
  result.p99_before_ms = windows[0]->Quantile(0.99);
  result.p99_during_ms = windows[1]->Quantile(0.99);
  result.p99_after_ms = windows[2]->Quantile(0.99);
  return result;
}

// ------------------------------------- 4. multi-tenant QoS (E37)

struct TenantBenchRow {
  std::string tenant;
  int64_t offered = 0;
  int64_t admitted = 0;
  int64_t shed = 0;
  double goodput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct QosRun {
  std::string mode;  ///< scheduler configuration under test
  double offered_rps = 0.0;
  double aggregate_goodput_rps = 0.0;
  double max_min_goodput_ratio = 0.0;
  std::vector<TenantBenchRow> tenants;
};

/// One tenanted open-loop run. `use_slots` false is the legacy FIFO
/// baseline; `fair` toggles DWFQ + per-tenant quotas (quota = a fair
/// quarter of declared capacity) in slot mode.
QosRun BenchTenantMix(const std::string& mode, bool use_slots, bool fair,
                      const std::vector<TenantShare>& mix,
                      double load_multiplier) {
  ServerConfig config;
  config.workers = 2;
  config.batch.max_batch = 8;
  config.batch.max_delay_ms = 0.2;
  config.queue_capacity = 8 * config.batch.max_batch;
  // A tight deadline — about five full-batch steps — keeps the run in
  // the admission-controlled regime: the hot tenant's excess sheds at
  // admission (its quota cannot fund the backlog in time) instead of
  // camping in the queue and dragging every tenant into queue-full.
  config.default_deadline_ms =
      5.0 * EstimateServiceMs(config.cost, config.batch.max_batch);
  config.scheduler.use_slots = use_slots;
  config.scheduler.fair_queueing = fair;
  config.scheduler.enforce_quotas = fair;
  if (fair) {
    // Per-tenant quota just under a fair quarter of capacity (so the
    // four quotas sum to 3/4 of the fleet, leaving headroom), plus a
    // burst of one full batch. An unthrottled tenant stays under it;
    // the 8x hot tenant pins against it.
    config.scheduler.default_policy.rate_rps = 0.1875 * CapacityRps(config);
    config.scheduler.default_policy.burst =
        static_cast<double>(config.batch.max_batch);
  }
  ServerUnderTest sut = MakeServer(config);

  TenantedLoadConfig load;
  load.seed = 76;
  load.requests = g_smoke ? 400 : 4000;
  load.rate_rps = load_multiplier * CapacityRps(config);
  load.deadline_ms = config.default_deadline_ms;
  load.model = "m";
  load.mix = mix;
  const TenantedLoadReport report =
      RunTenantedOpenLoop(sut.server.get(), load);

  QosRun run;
  run.mode = mode;
  run.offered_rps = load.rate_rps;
  run.aggregate_goodput_rps =
      report.total.duration_ms > 0.0
          ? static_cast<double>(report.total.completed -
                                report.total.deadline_missed) /
                (report.total.duration_ms / 1000.0)
          : 0.0;
  run.max_min_goodput_ratio = report.max_min_goodput_ratio;
  for (const auto& [tenant, per] : report.by_tenant) {
    TenantBenchRow row;
    row.tenant = tenant;
    row.offered = per.offered;
    row.admitted = per.admitted;
    row.shed = per.shed;
    row.goodput_rps = report.goodput_rps.at(tenant);
    row.p50_ms = per.latency.Quantile(0.5);
    row.p99_ms = per.latency.Quantile(0.99);
    run.tenants.push_back(row);
  }
  return run;
}

std::vector<QosRun> BenchTenantQos() {
  const std::vector<TenantShare> balanced = BalancedTenantMix(4);
  const std::vector<TenantShare> hot = HotTenantMix(4, 8.0);
  std::vector<QosRun> runs;
  // Balanced mix at a feasible load: the slot scheduler must not tax the
  // E32 FIFO plateau.
  runs.push_back(
      BenchTenantMix("fifo_balanced", /*use_slots=*/false, false, balanced,
                     0.8));
  runs.push_back(
      BenchTenantMix("slots_balanced", /*use_slots=*/true, false, balanced,
                     0.8));
  // Adversarial hot tenant at 1.4x capacity: DWFQ + quotas bound the
  // skew; the FIFO control shows the starvation they prevent.
  runs.push_back(BenchTenantMix("slots_fair_hot", /*use_slots=*/true, true,
                                hot, 1.375));
  runs.push_back(BenchTenantMix("slots_fifo_hot", /*use_slots=*/true, false,
                                hot, 1.375));
  return runs;
}

}  // namespace
}  // namespace dlsys

int main(int argc, char** argv) {
  using namespace dlsys;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  if (const char* env = std::getenv("DLSYS_BENCH_SMOKE");
      env != nullptr && env[0] == '1') {
    g_smoke = true;
  }
  // Keep intra-op kernels single-threaded: the server's worker pool
  // provides the parallelism, and nested ParallelFor from its foreign
  // threads would serialize on the global pool's region lock.
  RuntimeConfig::SetThreads(1);

  const std::vector<FrontierRow> frontier = BenchFrontier();
  for (const FrontierRow& row : frontier) {
    std::printf(
        "frontier w=%d b=%-3lld d=%.1fms  offered %8.0f r/s | sim %8.0f r/s "
        "| real %8.0f r/s | p50 %6.3f ms | p99 %6.3f ms | batch %.1f\n",
        row.workers, static_cast<long long>(row.max_batch), row.max_delay_ms,
        row.offered_rps, row.sim_rps, row.real_rps, row.p50_ms, row.p99_ms,
        row.mean_batch);
  }

  const std::vector<ShedRow> shed = BenchShedCurve();
  for (const ShedRow& row : shed) {
    std::printf(
        "shed x%.1f  offered %8.0f r/s | shed %5.1f%% | miss %5.1f%% | "
        "p99 %6.3f ms | goodput %8.0f r/s\n",
        row.load_multiplier, row.offered_rps, 100.0 * row.shed_fraction,
        100.0 * row.deadline_miss_fraction, row.p99_ms, row.goodput_rps);
  }

  const SwapResult swap = BenchHotSwap();
  std::printf(
      "hotswap  admitted %lld | completed %lld | lost %lld | v1 %lld | "
      "v2 %lld | p99 %6.3f / %6.3f / %6.3f ms\n",
      static_cast<long long>(swap.admitted),
      static_cast<long long>(swap.completed),
      static_cast<long long>(swap.lost),
      static_cast<long long>(swap.served_v1),
      static_cast<long long>(swap.served_v2), swap.p99_before_ms,
      swap.p99_during_ms, swap.p99_after_ms);
  DLSYS_CHECK(swap.lost == 0, "hot swap lost admitted requests");

  const std::vector<QosRun> qos = BenchTenantQos();
  for (const QosRun& run : qos) {
    std::printf("tenant %-14s offered %8.0f r/s | goodput %8.0f r/s | "
                "max/min %6.2f\n",
                run.mode.c_str(), run.offered_rps, run.aggregate_goodput_rps,
                run.max_min_goodput_ratio);
    for (const TenantBenchRow& row : run.tenants) {
      std::printf("  %-4s offered %5lld | admitted %5lld | shed %5lld | "
                  "goodput %8.0f r/s | p50 %6.3f ms | p99 %6.3f ms\n",
                  row.tenant.c_str(), static_cast<long long>(row.offered),
                  static_cast<long long>(row.admitted),
                  static_cast<long long>(row.shed), row.goodput_rps,
                  row.p50_ms, row.p99_ms);
    }
  }
  // E37 acceptance, bench-enforced: continuous batching keeps the E32
  // FIFO plateau at a balanced mix, and DWFQ + quotas bound the hot-
  // tenant skew the FIFO control demonstrates.
  DLSYS_CHECK(qos[1].aggregate_goodput_rps >=
                  0.95 * qos[0].aggregate_goodput_rps,
              "slot scheduler lost the balanced-mix goodput plateau");
  DLSYS_CHECK(qos[2].max_min_goodput_ratio <= 3.0,
              "fair scheduling failed to bound hot-tenant goodput skew");
  DLSYS_CHECK(qos[3].max_min_goodput_ratio > qos[2].max_min_goodput_ratio,
              "FIFO control should show more skew than fair scheduling");

  FILE* out = std::fopen("BENCH_serving.json", "w");
  if (out == nullptr) {
    std::printf("cannot open BENCH_serving.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"smoke\": %s,\n  \"frontier\": [\n",
               g_smoke ? "true" : "false");
  for (size_t i = 0; i < frontier.size(); ++i) {
    const FrontierRow& row = frontier[i];
    std::fprintf(
        out,
        "    {\"workers\": %d, \"max_batch\": %lld, \"max_delay_ms\": %.1f, "
        "\"offered_rps\": %.0f, \"sim_rps\": %.0f, \"real_rps\": %.0f, "
        "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"mean_batch\": %.2f}%s\n",
        row.workers, static_cast<long long>(row.max_batch), row.max_delay_ms,
        row.offered_rps, row.sim_rps, row.real_rps, row.p50_ms, row.p99_ms,
        row.mean_batch, i + 1 < frontier.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"shed_curve\": [\n");
  for (size_t i = 0; i < shed.size(); ++i) {
    const ShedRow& row = shed[i];
    std::fprintf(
        out,
        "    {\"load_multiplier\": %.1f, \"offered_rps\": %.0f, "
        "\"shed_fraction\": %.4f, \"deadline_miss_fraction\": %.4f, "
        "\"p99_ms\": %.4f, \"goodput_rps\": %.0f}%s\n",
        row.load_multiplier, row.offered_rps, row.shed_fraction,
        row.deadline_miss_fraction, row.p99_ms, row.goodput_rps,
        i + 1 < shed.size() ? "," : "");
  }
  std::fprintf(
      out,
      "  ],\n"
      "  \"hot_swap\": {\"offered\": %lld, \"admitted\": %lld, "
      "\"completed\": %lld, \"lost\": %lld,\n"
      "               \"served_v1\": %lld, \"served_v2\": %lld, "
      "\"p99_before_ms\": %.4f, \"p99_during_ms\": %.4f, "
      "\"p99_after_ms\": %.4f},\n",
      static_cast<long long>(swap.offered),
      static_cast<long long>(swap.admitted),
      static_cast<long long>(swap.completed),
      static_cast<long long>(swap.lost),
      static_cast<long long>(swap.served_v1),
      static_cast<long long>(swap.served_v2), swap.p99_before_ms,
      swap.p99_during_ms, swap.p99_after_ms);
  std::fprintf(out, "  \"tenant\": [\n");
  for (size_t i = 0; i < qos.size(); ++i) {
    const QosRun& run = qos[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"offered_rps\": %.0f, "
                 "\"aggregate_goodput_rps\": %.0f, "
                 "\"max_min_goodput_ratio\": %.4f, \"tenants\": [\n",
                 run.mode.c_str(), run.offered_rps, run.aggregate_goodput_rps,
                 run.max_min_goodput_ratio);
    for (size_t j = 0; j < run.tenants.size(); ++j) {
      const TenantBenchRow& row = run.tenants[j];
      std::fprintf(
          out,
          "      {\"tenant\": \"%s\", \"offered\": %lld, \"admitted\": %lld, "
          "\"shed\": %lld, \"goodput_rps\": %.0f, \"p50_ms\": %.4f, "
          "\"p99_ms\": %.4f}%s\n",
          row.tenant.c_str(), static_cast<long long>(row.offered),
          static_cast<long long>(row.admitted),
          static_cast<long long>(row.shed), row.goodput_rps, row.p50_ms,
          row.p99_ms, j + 1 < run.tenants.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", i + 1 < qos.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_serving.json\n");
  return 0;
}
