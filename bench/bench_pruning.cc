// E2 — Pruning removes unnecessary parameters with little accuracy loss
// until a cliff (tutorial Section 2.1). Sweeps sparsity x criterion,
// with and without masked finetuning.

#include <cstdio>

#include "src/compress/pruning.h"
#include "src/data/synthetic.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace {

double PruneAndEvaluate(const dlsys::Sequential& base,
                        const dlsys::Dataset& train,
                        const dlsys::Dataset& test,
                        dlsys::PruneCriterion criterion, double sparsity,
                        bool finetune, long long* sparse_bytes) {
  using namespace dlsys;
  Sequential net = base.Clone();
  Rng rng(31);
  auto mask = BuildPruneMask(&net, criterion, sparsity, &train, &rng);
  if (!mask.ok()) return -1.0;
  mask->Apply(&net);
  if (finetune) {
    Sgd opt(0.02, 0.9);
    TrainConfig tc;
    tc.epochs = 5;
    tc.on_step = [&](int64_t, int64_t, double) { mask->Apply(&net); };
    Train(&net, &opt, train, tc);
  }
  *sparse_bytes = SparseModelBytes(&net, *mask);
  return Evaluate(&net, test).accuracy;
}

}  // namespace

int main() {
  using namespace dlsys;
  Rng rng(19);
  Dataset data = MakeGaussianBlobs(4000, 16, 8, 1.5, &rng);
  TrainTestSplit split = Split(data, 0.8);
  Sequential base = MakeMlp(16, {96, 64}, 8);
  base.Init(&rng);
  Sgd opt(0.05, 0.9);
  TrainConfig tc;
  tc.epochs = 25;
  Train(&base, &opt, split.train, tc);
  std::printf("E2: pruning sweep (dense baseline acc=%.3f, %lld bytes)\n",
              Evaluate(&base, split.test).accuracy,
              static_cast<long long>(base.ModelBytes()));
  std::printf("%-9s %-16s %12s %14s %12s\n", "sparsity", "criterion",
              "acc_raw", "acc_finetuned", "sparse_B");
  struct Row {
    PruneCriterion criterion;
    const char* name;
  };
  const Row rows[] = {
      {PruneCriterion::kMagnitude, "magnitude"},
      {PruneCriterion::kLossSensitivity, "loss-sensitivity"},
      {PruneCriterion::kRandom, "random"},
  };
  for (double sparsity : {0.3, 0.5, 0.7, 0.8, 0.9, 0.95}) {
    for (const Row& row : rows) {
      long long bytes = 0;
      const double raw =
          PruneAndEvaluate(base, split.train, split.test, row.criterion,
                           sparsity, false, &bytes);
      const double tuned =
          PruneAndEvaluate(base, split.train, split.test, row.criterion,
                           sparsity, true, &bytes);
      std::printf("%-9.2f %-16s %12.3f %14.3f %12lld\n", sparsity, row.name,
                  raw, tuned, bytes);
    }
  }
  std::printf("\nexpected shape: magnitude/sensitivity hold accuracy past "
              "70-80%% sparsity (finetuned), random collapses first; "
              "structured finetuning recovers most raw-prune loss.\n");
  return 0;
}
