// Runtime scaling bench: single- vs multi-thread throughput of the
// blocked GEMM kernels, Conv2D forward, and a full training step, against
// the seed repo's single-threaded kernels compiled at the project's
// default flags (the pre-runtime baseline). Results land in
// BENCH_runtime.json so the perf trajectory is tracked from this PR on.
//
// This is a standalone binary (not google-benchmark): it needs to emit a
// stable JSON schema and to flip RuntimeConfig between timings.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/rng.h"
#include "src/data/synthetic.h"
#include "src/nn/conv.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"
#include "src/runtime/runtime.h"
#include "src/tensor/ops.h"

namespace dlsys {
namespace {

// ----------------------------------------------------------- seed kernels
// Verbatim copies of the seed repo's MatMul and Conv2D::Forward loop
// nests (including the zero-skip branch), compiled in this TU at the
// project's default flags — i.e. exactly what every caller paid before
// the runtime existed.

Tensor SeedMatMul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = pa[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = pb + p * n;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor SeedConvForward(const Tensor& x, const Tensor& w, const Tensor& bias,
                       int64_t stride, int64_t pad) {
  const int64_t n = x.dim(0), in_ch = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int64_t out_ch = w.dim(0), kernel = w.dim(2);
  const int64_t ho = (h + 2 * pad - kernel) / stride + 1;
  const int64_t wo = (wd + 2 * pad - kernel) / stride + 1;
  Tensor y({n, out_ch, ho, wo});
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t oc = 0; oc < out_ch; ++oc) {
      for (int64_t oy = 0; oy < ho; ++oy) {
        for (int64_t ox = 0; ox < wo; ++ox) {
          double acc = bias[oc];
          const int64_t iy0 = oy * stride - pad;
          const int64_t ix0 = ox * stride - pad;
          for (int64_t ic = 0; ic < in_ch; ++ic) {
            for (int64_t ky = 0; ky < kernel; ++ky) {
              const int64_t iy = iy0 + ky;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kernel; ++kx) {
                const int64_t ix = ix0 + kx;
                if (ix < 0 || ix >= wd) continue;
                acc += x[((img * in_ch + ic) * h + iy) * wd + ix] *
                       w[((oc * in_ch + ic) * kernel + ky) * kernel + kx];
              }
            }
          }
          y[((img * out_ch + oc) * ho + oy) * wo + ox] =
              static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

// ------------------------------------------------------------- harness

volatile float g_sink = 0.0f;  // defeats dead-code elimination

/// Median-of-5 wall time in milliseconds of `iters` calls to fn.
template <typename Fn>
double MedianMs(int iters, Fn&& fn) {
  std::vector<double> reps;
  for (int r = 0; r < 5; ++r) {
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) fn();
    reps.push_back(watch.Seconds() * 1000.0 / iters);
  }
  std::sort(reps.begin(), reps.end());
  return reps[2];
}

struct ScalingRow {
  double seed_ms = 0.0;
  double t1_ms = 0.0;
  double t2_ms = 0.0;
  double t4_ms = 0.0;
};

void PrintRow(const char* name, const ScalingRow& row) {
  std::printf(
      "%-12s seed %8.3f ms | t1 %8.3f ms | t2 %8.3f ms | t4 %8.3f ms | "
      "speedup(t4 vs seed) %.2fx\n",
      name, row.seed_ms, row.t1_ms, row.t2_ms, row.t4_ms,
      row.seed_ms / row.t4_ms);
}

ScalingRow BenchGemm256() {
  Rng rng(1);
  Tensor a({256, 256}), b({256, 256});
  a.FillGaussian(&rng, 1.0f);
  b.FillGaussian(&rng, 1.0f);
  ScalingRow row;
  RuntimeConfig::SetThreads(1);
  row.seed_ms = MedianMs(3, [&] { g_sink = SeedMatMul(a, b)[0]; });
  row.t1_ms = MedianMs(10, [&] { g_sink = MatMul(a, b)[0]; });
  RuntimeConfig::SetThreads(2);
  row.t2_ms = MedianMs(10, [&] { g_sink = MatMul(a, b)[0]; });
  RuntimeConfig::SetThreads(4);
  row.t4_ms = MedianMs(10, [&] { g_sink = MatMul(a, b)[0]; });
  RuntimeConfig::SetThreads(1);
  return row;
}

ScalingRow BenchConvForward() {
  Rng rng(2);
  Conv2D conv(8, 8, 3, 1, 1);
  conv.Init(&rng);
  Tensor x({8, 8, 16, 16});
  x.FillGaussian(&rng, 1.0f);
  std::vector<Tensor*> params = conv.Params();  // {weights, bias}
  ScalingRow row;
  RuntimeConfig::SetThreads(1);
  row.seed_ms = MedianMs(5, [&] {
    g_sink = SeedConvForward(x, *params[0], *params[1], 1, 1)[0];
  });
  row.t1_ms =
      MedianMs(5, [&] { g_sink = conv.Forward(x, CacheMode::kNoCache)[0]; });
  RuntimeConfig::SetThreads(2);
  row.t2_ms =
      MedianMs(5, [&] { g_sink = conv.Forward(x, CacheMode::kNoCache)[0]; });
  RuntimeConfig::SetThreads(4);
  row.t4_ms =
      MedianMs(5, [&] { g_sink = conv.Forward(x, CacheMode::kNoCache)[0]; });
  RuntimeConfig::SetThreads(1);
  return row;
}

/// One-epoch MLP training wall time per optimizer step, at a thread count.
double TrainStepMs(int threads) {
  RuntimeConfig::SetThreads(threads);
  Rng rng(3);
  Dataset data = MakeGaussianBlobs(2048, 32, 8, 3.0, &rng);
  Sequential net = MakeMlp(32, {128, 64}, 8);
  Rng init_rng(4);
  net.Init(&init_rng);
  Sgd opt(0.05, 0.9);
  TrainConfig config;
  config.epochs = 1;
  config.batch_size = 32;
  int64_t steps = 0;
  config.on_step = [&steps](int64_t, int64_t, double) { ++steps; };
  MetricsReport report = Train(&net, &opt, data, config);
  RuntimeConfig::SetThreads(1);
  return report.Get(metric::kTrainSeconds) * 1000.0 /
         static_cast<double>(steps > 0 ? steps : 1);
}

}  // namespace
}  // namespace dlsys

int main() {
  using namespace dlsys;

  const ScalingRow gemm = BenchGemm256();
  PrintRow("gemm256", gemm);
  const ScalingRow conv = BenchConvForward();
  PrintRow("conv8x16", conv);
  const double train1 = TrainStepMs(1);
  const double train4 = TrainStepMs(4);
  std::printf("train_step   t1 %8.3f ms | t4 %8.3f ms\n", train1, train4);

  FILE* out = std::fopen("BENCH_runtime.json", "w");
  if (out == nullptr) {
    std::printf("cannot open BENCH_runtime.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"gemm256\": {\"seed_ms\": %.4f, \"t1_ms\": %.4f, "
               "\"t2_ms\": %.4f, \"t4_ms\": %.4f,\n"
               "              \"speedup_t1_vs_seed\": %.2f, "
               "\"speedup_t4_vs_seed\": %.2f},\n"
               "  \"conv_fwd\": {\"seed_ms\": %.4f, \"t1_ms\": %.4f, "
               "\"t2_ms\": %.4f, \"t4_ms\": %.4f,\n"
               "              \"speedup_t4_vs_seed\": %.2f},\n"
               "  \"train_step\": {\"t1_ms\": %.4f, \"t4_ms\": %.4f}\n"
               "}\n",
               gemm.seed_ms, gemm.t1_ms, gemm.t2_ms, gemm.t4_ms,
               gemm.seed_ms / gemm.t1_ms, gemm.seed_ms / gemm.t4_ms,
               conv.seed_ms, conv.t1_ms, conv.t2_ms, conv.t4_ms,
               conv.seed_ms / conv.t4_ms, train1, train4);
  std::fclose(out);
  std::printf("wrote BENCH_runtime.json\n");
  return 0;
}
