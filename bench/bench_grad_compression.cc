// E6 — Gradient compression cuts communication bandwidth (Section 2.1,
// Deep Gradient Compression / quantized gradients). Sweeps top-k keep
// fractions and quantization bit widths under synchronous SGD.

#include <cstdio>
#include <memory>

#include "src/data/synthetic.h"
#include "src/distributed/cluster.h"
#include "src/distributed/compressor.h"
#include "src/nn/train.h"

int main() {
  using namespace dlsys;
  Rng rng(41);
  Dataset data = MakeGaussianBlobs(6000, 16, 6, 2.5, &rng);
  TrainTestSplit split = Split(data, 0.85);
  Sequential arch = MakeMlp(16, {64}, 6);
  arch.Init(&rng);

  ClusterConfig config;
  config.workers = 8;
  config.rounds = 300;
  config.network.bandwidth_bytes_per_s = 1.25e8;

  std::printf("E6: gradient compression sweep (8 workers, sync SGD)\n");
  std::printf("%-22s %10s %12s %12s\n", "codec", "accuracy", "comm_MB",
              "vs_dense");

  auto run = [&](const char* name, const GradientCompressor* codec,
                 double dense_mb) {
    auto result = TrainOnCluster(arch, split.train, config, codec);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 0.0;
    }
    Sequential model = result->model.Clone();
    const double mb = result->report.Get(metric::kCommBytes) / 1e6;
    std::printf("%-22s %10.3f %12.2f %11.1fx\n", name,
                Evaluate(&model, split.test).accuracy, mb,
                dense_mb > 0 ? dense_mb / mb : 1.0);
    return mb;
  };

  const double dense_mb = run("dense fp32", nullptr, 0.0);
  for (double keep : {0.25, 0.1, 0.05, 0.01}) {
    TopKCompressor topk(keep);
    char name[32];
    std::snprintf(name, sizeof(name), "top-%.0f%%", keep * 100);
    run(name, &topk, dense_mb);
  }
  for (int64_t bits : {8, 4, 2, 1}) {
    QuantizingCompressor q(bits);
    char name[32];
    std::snprintf(name, sizeof(name), "quantize-%lldbit",
                  static_cast<long long>(bits));
    run(name, &q, dense_mb);
  }
  std::printf("\nexpected shape: 10-100x byte reductions with error "
              "feedback keeping accuracy within a few points of dense; "
              "1-bit / top-1%% are the aggressive edge.\n");
  return 0;
}
