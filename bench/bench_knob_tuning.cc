// E13 — RL knob tuning converges to near-optimal configurations with
// fewer evaluations than grid search (Part 2, QTune/CDBTune-flavoured).

#include <cstdio>

#include "src/db/tunable_db.h"
#include "src/learned/knob_tuning.h"

namespace {
double BestAt(const dlsys::TuningResult& r, size_t evals) {
  if (r.best_so_far.empty()) return 1e300;
  return r.best_so_far[std::min(evals, r.best_so_far.size()) - 1];
}
}  // namespace

int main() {
  using namespace dlsys;
  std::printf("E13: knob tuning on the simulated DB (288 configurations)\n");
  struct Workload {
    const char* name;
    DbWorkload profile;
  };
  const Workload workloads[] = {
      {"read-heavy", {0.95, 0.2, 2048}},
      {"scan-heavy", {0.9, 0.8, 1024}},
      {"write-heavy", {0.3, 0.1, 512}},
  };
  for (const auto& w : workloads) {
    TunableDb db(w.profile);
    const double optimal = db.BestLatencyMs();
    QTunerConfig q_config;
    q_config.episodes = 60;
    q_config.steps_per_episode = 30;
    TuningResult q = QLearningTune(db, q_config);
    TuningResult grid = GridSearchTune(db, db.NumConfigs());
    TuningResult random = RandomSearchTune(db, 1800, 71);
    std::printf("\nworkload %s: exhaustive optimum %.3f ms (%s)\n", w.name,
                optimal, db.Describe(db.BestKnobs()).c_str());
    std::printf("%-8s %12s %12s %12s\n", "evals", "qlearn_ms", "grid_ms",
                "random_ms");
    for (size_t evals : {30, 60, 120, 288, 900, 1800}) {
      std::printf("%-8zu %12.3f %12.3f %12.3f\n", evals, BestAt(q, evals),
                  BestAt(grid, evals), BestAt(random, evals));
    }
    std::printf("final q-learning config: %s (%.3f ms, %.1f%% above "
                "optimum)\n",
                db.Describe(q.best).c_str(), q.best_latency_ms,
                100.0 * (q.best_latency_ms / optimal - 1.0));
  }
  std::printf("\nexpected shape: q-learning reaches near-optimal latency "
              "in far fewer evaluations than grid enumeration; random "
              "search sits between.\n");
  return 0;
}
