// E5 — Local SGD cuts communication with small accuracy loss as the
// averaging period H grows (Section 2.1, Stich).

#include <cstdio>

#include "src/data/synthetic.h"
#include "src/distributed/cluster.h"
#include "src/nn/train.h"

int main() {
  using namespace dlsys;
  Rng rng(37);
  Dataset data = MakeGaussianBlobs(6000, 16, 6, 2.5, &rng);
  TrainTestSplit split = Split(data, 0.85);
  Sequential arch = MakeMlp(16, {64}, 6);
  arch.Init(&rng);

  std::printf("E5: Local SGD averaging-period sweep "
              "(8 workers, 480 local steps, 1 Gbps)\n");
  std::printf("%-8s %10s %12s %14s %12s\n", "H", "accuracy", "comm_MB",
              "comm_rounds", "sim_time_s");
  for (int64_t h : {1, 2, 4, 8, 16, 32}) {
    ClusterConfig config;
    config.workers = 8;
    config.rounds = 480;
    config.strategy = SyncStrategy::kLocalSgd;
    config.local_steps = h;
    config.network.bandwidth_bytes_per_s = 1.25e8;
    auto result = TrainOnCluster(arch, split.train, config, nullptr);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    Sequential model = result->model.Clone();
    std::printf("%-8lld %10.3f %12.2f %14lld %12.4f\n",
                static_cast<long long>(h),
                Evaluate(&model, split.test).accuracy,
                result->report.Get(metric::kCommBytes) / 1e6,
                static_cast<long long>(480 / h),
                result->report.Get(metric::kTrainSeconds));
  }
  std::printf("\nexpected shape: comm bytes fall ~1/H; accuracy nearly flat "
              "for small H, degrading slowly at large H.\n");
  return 0;
}
