// E21 (ablation) — Priority-based parameter propagation (Section 2.1,
// P3): overlapping communication with compute, and sending the layers
// the next forward pass needs first, shortens the iteration boundary.

#include <cstdio>

#include "src/distributed/priority.h"

namespace {
std::vector<dlsys::LayerCost> Network(int64_t layers, double comm_ratio) {
  // comm_ratio scales transfer volume relative to compute.
  std::vector<dlsys::LayerCost> out;
  for (int64_t i = 0; i < layers; ++i) {
    dlsys::LayerCost c;
    c.backward_seconds = 0.004;
    c.forward_seconds = 0.002;
    c.gradient_bytes =
        static_cast<int64_t>(comm_ratio * 0.006 * 1.25e9);  // bytes
    out.push_back(c);
  }
  return out;
}
}  // namespace

int main() {
  using namespace dlsys;
  NetworkModel link{1e-5, 1.25e9};
  std::printf("E21: iteration-boundary makespan (ms) by scheduling policy\n");
  std::printf("%-8s %-12s %12s %10s %10s %12s\n", "layers", "comm/comp",
              "no-overlap", "fifo", "priority", "prio_gain");
  for (int64_t layers : {8, 24, 48}) {
    for (double ratio : {0.25, 1.0, 4.0}) {
      auto net = Network(layers, ratio);
      const double none =
          SimulatePropagation(net, link, PropagationPolicy::kNoOverlap);
      const double fifo =
          SimulatePropagation(net, link, PropagationPolicy::kFifo);
      const double prio =
          SimulatePropagation(net, link, PropagationPolicy::kPriority);
      std::printf("%-8lld %-12.2f %12.2f %10.2f %10.2f %11.2fx\n",
                  static_cast<long long>(layers), ratio, none * 1e3,
                  fifo * 1e3, prio * 1e3, none / prio);
    }
  }
  std::printf("\nexpected shape: overlap alone (fifo) removes up to half "
              "the boundary; priority scheduling adds most on comm-bound "
              "configurations where the forward pass would otherwise wait "
              "for early layers queued last.\n");
  return 0;
}
