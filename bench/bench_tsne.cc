// E17 — t-SNE preserves cluster structure of high-dimensional data
// (Section 4.2): purity of the 2-D embedding across separations and
// perplexities, against a PCA-free random-projection baseline.

#include <cstdio>

#include "src/data/synthetic.h"
#include "src/interpret/tsne.h"

namespace {
// Random 2-D projection baseline.
dlsys::Tensor RandomProjection(const dlsys::Tensor& x, dlsys::Rng* rng) {
  const int64_t n = x.dim(0), d = x.dim(1);
  dlsys::Tensor proj({d, 2});
  proj.FillGaussian(rng, 1.0f);
  dlsys::Tensor out({n, 2});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t k = 0; k < 2; ++k) {
      double s = 0.0;
      for (int64_t j = 0; j < d; ++j) s += x[i * d + j] * proj[j * 2 + k];
      out[i * 2 + k] = static_cast<float>(s);
    }
  }
  return out;
}
}  // namespace

int main() {
  using namespace dlsys;
  std::printf("E17: t-SNE embedding purity (64-D, 8 clusters, 320 points, "
              "k=10 neighbours)\n");
  std::printf("%-12s %-12s %10s %12s\n", "separation", "perplexity",
              "tsne", "rand_proj");
  for (double separation : {0.25, 0.5, 1.0}) {
    Rng rng(83);
    Dataset data = MakeGaussianBlobs(320, 64, 8, separation, &rng);
    Tensor baseline = RandomProjection(data.x, &rng);
    const double base_purity = EmbeddingPurity(baseline, data.y, 10);
    for (double perplexity : {5.0, 15.0, 40.0}) {
      TsneConfig config;
      config.perplexity = perplexity;
      config.iterations = 300;
      auto embedding = Tsne(data.x, config);
      if (!embedding.ok()) return 1;
      std::printf("%-12.1f %-12.0f %10.3f %12.3f\n", separation, perplexity,
                  EmbeddingPurity(*embedding, data.y, 10), base_purity);
    }
  }
  std::printf("\nexpected shape: t-SNE purity far above the random "
              "projection at every separation; purity rises with cluster "
              "separation; moderate perplexities work best.\n");
  return 0;
}
