// E18 — Mistique-style activation stores: quantization and dedup cut
// storage by an order of magnitude at bounded query error
// (Section 4.2, Vartak et al.).

#include <cstdio>

#include "src/data/synthetic.h"
#include "src/interpret/model_store.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

int main() {
  using namespace dlsys;
  Rng rng(89);
  Dataset data = MakeGaussianBlobs(1024, 16, 6, 3.0, &rng);
  Sequential net = MakeMlp(16, {128, 128}, 6);
  net.Init(&rng);
  Adam opt(0.005);
  TrainConfig tc;
  tc.epochs = 10;
  Train(&net, &opt, data, tc);

  // Diagnostic batches: unique inputs, and a redundant batch (repeated
  // inputs, as in repeated debugging queries over the same examples).
  Tensor unique_batch = data.x;
  Tensor redundant({1024, 16});
  for (int64_t i = 0; i < 1024; ++i) {
    for (int64_t j = 0; j < 16; ++j) {
      redundant[i * 16 + j] = data.x[(i % 64) * 16 + j];
    }
  }

  std::printf("E18: activation store storage/error tradeoff "
              "(1024 examples, 6-layer MLP)\n");
  std::printf("%-11s %-18s %12s %14s\n", "batch", "mode", "stored_KB",
              "max_abs_err");
  struct Case {
    const char* batch_name;
    const Tensor* batch;
    StorageMode mode;
    const char* mode_name;
  };
  const Case cases[] = {
      {"unique", &unique_batch, StorageMode::kExact, "exact"},
      {"unique", &unique_batch, StorageMode::kQuantized, "8-bit"},
      {"unique", &unique_batch, StorageMode::kQuantizedDedup, "8-bit+dedup"},
      {"redundant", &redundant, StorageMode::kExact, "exact"},
      {"redundant", &redundant, StorageMode::kQuantized, "8-bit"},
      {"redundant", &redundant, StorageMode::kQuantizedDedup,
       "8-bit+dedup"},
  };
  for (const Case& c : cases) {
    auto store = ModelStore::Capture(&net, *c.batch, c.mode);
    if (!store.ok()) return 1;
    // Reference final-layer activations for error measurement.
    Tensor reference = net.Forward(*c.batch, CacheMode::kNoCache);
    auto err = store->MaxAbsError(store->num_layers() - 1, reference);
    std::printf("%-11s %-18s %12.1f %14.5f\n", c.batch_name, c.mode_name,
                static_cast<double>(store->StoredBytes()) / 1e3,
                err.ok() ? *err : -1.0);
  }
  std::printf("\nexpected shape: 8-bit cuts storage ~4x at small bounded "
              "error; dedup adds nothing on unique inputs but collapses "
              "redundant batches by the redundancy factor.\n");
  return 0;
}
