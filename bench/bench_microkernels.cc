// E22 (infrastructure) — google-benchmark microkernels for the
// substrate: GEMM, conv, B+-tree and RMI lookups, bloom probes. These
// are the latency primitives behind every experiment table.

#include <benchmark/benchmark.h>

#include <cmath>
#include <set>
#include <thread>

#include "src/core/rng.h"
#include "src/db/bloom.h"
#include "src/db/btree.h"
#include "src/learned/learned_index.h"
#include "src/nn/conv.h"
#include "src/nn/layers.h"
#include "src/runtime/runtime.h"
#include "src/tensor/ops.h"

namespace dlsys {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  a.FillGaussian(&rng, 1.0f);
  b.FillGaussian(&rng, 1.0f);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransA(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n});  // (K x M), consumed transposed
  Tensor b({n, n});
  a.FillGaussian(&rng, 1.0f);
  b.FillGaussian(&rng, 1.0f);
  for (auto _ : state) {
    Tensor c = MatMulTransA(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulTransA)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransB(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});  // (N x K), consumed transposed
  a.FillGaussian(&rng, 1.0f);
  b.FillGaussian(&rng, 1.0f);
  for (auto _ : state) {
    Tensor c = MatMulTransB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulTransB)->Arg(64)->Arg(128)->Arg(256);

// Thread-count sweep over all three GEMM variants (variant selected by
// arg 0: 0=MatMul, 1=TransA, 2=TransB) at 256^3, so kernel regressions
// are visible per variant and per thread count, not just for plain
// MatMul. Restores the default thread count afterwards.
void BM_GemmThreads(benchmark::State& state) {
  const int64_t variant = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  const int64_t n = 256;
  Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  a.FillGaussian(&rng, 1.0f);
  b.FillGaussian(&rng, 1.0f);
  RuntimeConfig::SetThreads(threads);
  for (auto _ : state) {
    Tensor c = variant == 0   ? MatMul(a, b)
               : variant == 1 ? MatMulTransA(a, b)
                              : MatMulTransB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  RuntimeConfig::SetThreads(RuntimeConfig::DefaultThreads());
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmThreads)
    ->ArgsProduct({{0, 1, 2},
                   {1, 2, 4,
                    static_cast<long>(std::thread::hardware_concurrency())}});

void BM_Conv2DForward(benchmark::State& state) {
  const int64_t channels = state.range(0);
  Conv2D conv(channels, channels, 3, 1, 1);
  Rng rng(2);
  conv.Init(&rng);
  Tensor x({4, channels, 16, 16});
  x.FillGaussian(&rng, 1.0f);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, CacheMode::kNoCache);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2DForward)->Arg(4)->Arg(16);

void BM_DenseForwardBackward(benchmark::State& state) {
  const int64_t width = state.range(0);
  Dense dense(width, width);
  Rng rng(3);
  dense.Init(&rng);
  Tensor x({32, width});
  x.FillGaussian(&rng, 1.0f);
  for (auto _ : state) {
    Tensor y = dense.Forward(x, CacheMode::kCache);
    Tensor dx = dense.Backward(y);
    dense.ZeroGrads();
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_DenseForwardBackward)->Arg(64)->Arg(256);

std::vector<int64_t> BenchKeys(int64_t n) {
  Rng rng(4);
  std::set<int64_t> keys;
  while (static_cast<int64_t>(keys.size()) < n) {
    keys.insert(static_cast<int64_t>(rng.Next() >> 16));
  }
  return {keys.begin(), keys.end()};
}

void BM_BTreeLookup(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<int64_t> keys = BenchKeys(n);
  BTree tree(128);
  for (size_t i = 0; i < keys.size(); ++i) {
    tree.Insert(keys[i], static_cast<int64_t>(i));
  }
  size_t probe = 0;
  for (auto _ : state) {
    auto v = tree.Find(keys[probe]);
    benchmark::DoNotOptimize(v);
    probe = (probe + 7919) % keys.size();
  }
}
BENCHMARK(BM_BTreeLookup)->Arg(100000)->Arg(1000000);

void BM_RmiLookup(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<int64_t> keys = BenchKeys(n);
  auto rmi = LearnedIndex::Build(keys, n / 400);
  size_t probe = 0;
  for (auto _ : state) {
    auto v = rmi->Find(keys[probe]);
    benchmark::DoNotOptimize(v);
    probe = (probe + 7919) % keys.size();
  }
}
BENCHMARK(BM_RmiLookup)->Arg(100000)->Arg(1000000);

void BM_BloomProbe(benchmark::State& state) {
  BloomFilter bloom = BloomFilter::ForKeys(100000, 10.0);
  std::vector<int64_t> keys = BenchKeys(100000);
  for (int64_t key : keys) bloom.Insert(key);
  size_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bloom.MayContain(keys[probe]));
    probe = (probe + 7919) % keys.size();
  }
}
BENCHMARK(BM_BloomProbe);

}  // namespace
}  // namespace dlsys

BENCHMARK_MAIN();
