// Microkernel bench (E34): ISA x format sweep of the dispatched GEMM
// microkernels — fp32 matmul / fp32 transB / conv-GEMM / int8 / q8-block /
// q4-block at the E31 serving shape (64x768x768) and one tail shape —
// plus the lookup primitives (B+-tree, RMI, bloom) behind the learned-index
// experiments. Per-cell latency quantiles come from the PR-5
// CounterRegistry histogram (obs::SharedHistogram), not local timing
// plumbing; results land in BENCH_microkernels.json with speedup vs the
// scalar table per cell.
//
// Standalone binary (not google-benchmark): the sweep forces each SIMD
// table via simd::SetIsa between sections, which must not interleave with
// a framework's own repetition scheduling. Pass --smoke (or set
// DLSYS_BENCH_SMOKE=1) for a seconds-scale CI run at tiny shapes.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/compress/quantization.h"
#include "src/core/metrics.h"
#include "src/core/rng.h"
#include "src/db/bloom.h"
#include "src/db/btree.h"
#include "src/learned/learned_index.h"
#include "src/obs/counters.h"
#include "src/runtime/runtime.h"
#include "src/simd/dispatch.h"
#include "src/tensor/int8_gemm.h"
#include "src/tensor/ops.h"

namespace dlsys {
namespace {

volatile float g_sink = 0.0f;  // defeats dead-code elimination
bool g_smoke = false;

struct Quantiles {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Runs \p fn `iters` times, recording each call's wall time into the
/// shared bench histogram, and returns {p50_ms, p99_ms} read back from the
/// registry. (A -DDLSYS_OBS=0 build still links the registry — only the
/// DLSYS_* recording macros compile out — so this bench works either way.)
template <typename Fn>
Quantiles TimeKernel(int iters, Fn&& fn) {
  obs::SharedHistogram* hist =
      obs::CounterRegistry::Global().histogram("bench.microkernel_ms");
  hist->Reset();
  fn();  // warm: touch every page, resolve the dispatch table
  for (int it = 0; it < iters; ++it) {
    Stopwatch watch;
    fn();
    hist->Record(watch.Seconds() * 1000.0);
  }
  return {hist->Quantile(0.5), hist->Quantile(0.99)};
}

// ------------------------------------------------------ ISA x format sweep

struct SweepCell {
  std::string shape;
  std::string kernel;
  std::string isa;
  Quantiles q;
  double speedup_vs_scalar = 0.0;  ///< scalar p50 / this p50
};

struct GemmShape {
  int64_t m, k, n;
  std::string Name() const {
    return std::to_string(m) + "x" + std::to_string(k) + "x" +
           std::to_string(n);
  }
};

/// All operand/output buffers for one GEMM shape, prepared once so every
/// ISA times identical memory.
struct GemmOperands {
  GemmShape s;
  Tensor a, b, bt, bias;
  Q8BlockMatrix qa8, qb8;
  Q4BlockMatrix qb4;
  std::vector<int8_t> ia, ib;
  std::vector<int32_t> iacc;
  std::vector<float> c;

  explicit GemmOperands(const GemmShape& shape, Rng* rng) : s(shape) {
    a = Tensor({s.m, s.k});
    b = Tensor({s.k, s.n});
    a.FillGaussian(rng, 1.0f);
    b.FillGaussian(rng, 0.5f);
    bt = Transpose(b);  // (n, k) for the TransB family
    bias = Tensor({s.m});
    bias.FillGaussian(rng, 1.0f);
    qa8 = Q8BlockQuantizeRows(a);
    qb8 = Q8BlockQuantizeRows(bt);
    qb4 = Q4BlockQuantizeRows(bt);
    ia.resize(static_cast<size_t>(s.m * s.k));
    ib.resize(static_cast<size_t>(s.n * s.k));
    for (int8_t& v : ia) v = static_cast<int8_t>(rng->Next() % 255 - 127);
    for (int8_t& v : ib) v = static_cast<int8_t>(rng->Next() % 255 - 127);
    iacc.resize(static_cast<size_t>(s.m * s.n));
    c.resize(static_cast<size_t>(s.m * s.n));
  }
};

std::vector<SweepCell> RunSweep(const std::vector<GemmShape>& shapes) {
  const int iters = g_smoke ? 3 : 15;
  std::vector<SweepCell> cells;
  Rng rng(61);

  std::vector<simd::Isa> isas;
  for (simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (simd::IsaSupported(isa)) isas.push_back(isa);
  }

  for (const GemmShape& shape : shapes) {
    GemmOperands op(shape, &rng);
    const int64_t m = shape.m, k = shape.k, n = shape.n;
    const int64_t kp = op.qa8.padded_cols;

    struct KernelDef {
      const char* name;
      std::function<void()> run;
    };
    const std::vector<KernelDef> kernels = {
        {"fp32_matmul",
         [&] {
           MatMulInto(op.a.data(), op.b.data(), op.c.data(), m, k, n);
           g_sink = op.c[0];
         }},
        {"fp32_matmul_tb",
         [&] {
           Tensor out = MatMulTransB(op.a, op.bt);
           g_sink = out[0];
         }},
        {"fp32_conv_gemm",
         [&] {
           ConvGemmBiasInto(op.a.data(), op.bt.data(), op.bias.data(),
                            op.c.data(), m, k, n);
           g_sink = op.c[0];
         }},
        {"int8_rowwise",
         [&] {
           Int8GemmTransBInto(op.ia.data(), op.ib.data(), op.iacc.data(), m,
                              k, n);
           g_sink = static_cast<float>(op.iacc[0]);
         }},
        {"q8_block",
         [&] {
           Q8BlockGemmTransBInto(op.qa8.values.data(), op.qa8.scales.data(),
                                 op.qb8.values.data(), op.qb8.scales.data(),
                                 op.c.data(), m, kp, n);
           g_sink = op.c[0];
         }},
        {"q4_block",
         [&] {
           Q4BlockGemmTransBInto(op.qa8.values.data(), op.qa8.scales.data(),
                                 op.qb4.values.data(), op.qb4.scales.data(),
                                 op.c.data(), m, kp, n);
           g_sink = op.c[0];
         }},
    };

    for (const KernelDef& kernel : kernels) {
      double scalar_p50 = 0.0;
      for (simd::Isa isa : isas) {
        simd::SetIsa(isa);
        SweepCell cell;
        cell.shape = shape.Name();
        cell.kernel = kernel.name;
        cell.isa = simd::IsaName(isa);
        cell.q = TimeKernel(iters, kernel.run);
        if (isa == simd::Isa::kScalar) scalar_p50 = cell.q.p50_ms;
        cell.speedup_vs_scalar =
            cell.q.p50_ms > 0.0 ? scalar_p50 / cell.q.p50_ms : 0.0;
        cells.push_back(cell);
      }
    }
  }
  simd::SetIsa(simd::BestSupportedIsa());
  return cells;
}

// ---------------------------------------------------- lookup primitives

struct LookupRow {
  std::string name;
  Quantiles per_probe_us;  ///< probes run in batches of 1000: ms == us/probe
};

std::vector<int64_t> BenchKeys(int64_t n) {
  Rng rng(4);
  std::set<int64_t> keys;
  while (static_cast<int64_t>(keys.size()) < n) {
    keys.insert(static_cast<int64_t>(rng.Next() >> 16));
  }
  return {keys.begin(), keys.end()};
}

std::vector<LookupRow> RunLookups() {
  const int64_t n = g_smoke ? 10000 : 100000;
  const int batches = g_smoke ? 5 : 30;
  const std::vector<int64_t> keys = BenchKeys(n);

  BTree tree(128);
  for (size_t i = 0; i < keys.size(); ++i) {
    tree.Insert(keys[i], static_cast<int64_t>(i));
  }
  auto rmi = LearnedIndex::Build(keys, n / 400);
  BloomFilter bloom = BloomFilter::ForKeys(n, 10.0);
  for (int64_t key : keys) bloom.Insert(key);

  // Each timed call is a batch of 1000 probes striding through the key
  // set, so the histogram's millisecond quantiles read directly as
  // microseconds per probe.
  std::vector<LookupRow> rows;
  size_t probe = 0;
  rows.push_back({"btree", TimeKernel(batches, [&] {
                    for (int i = 0; i < 1000; ++i) {
                      auto v = tree.Find(keys[probe]);
                      g_sink = v.ok() ? 1.0f : 0.0f;
                      probe = (probe + 7919) % keys.size();
                    }
                  })});
  probe = 0;
  rows.push_back({"rmi", TimeKernel(batches, [&] {
                    for (int i = 0; i < 1000; ++i) {
                      auto v = rmi->Find(keys[probe]);
                      g_sink = v.ok() ? 1.0f : 0.0f;
                      probe = (probe + 7919) % keys.size();
                    }
                  })});
  probe = 0;
  rows.push_back({"bloom", TimeKernel(batches, [&] {
                    for (int i = 0; i < 1000; ++i) {
                      g_sink = bloom.MayContain(keys[probe]) ? 1.0f : 0.0f;
                      probe = (probe + 7919) % keys.size();
                    }
                  })});
  return rows;
}

}  // namespace
}  // namespace dlsys

int main(int argc, char** argv) {
  using namespace dlsys;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  if (const char* env = std::getenv("DLSYS_BENCH_SMOKE");
      env != nullptr && env[0] == '1') {
    g_smoke = true;
  }
  // Single-threaded so the sweep compares kernel codegen, not scheduling.
  RuntimeConfig::SetThreads(1);

  std::vector<GemmShape> shapes;
  if (g_smoke) {
    shapes.push_back({8, 64, 32});
    shapes.push_back({3, 33, 17});
  } else {
    shapes.push_back({64, 768, 768});  // E31 serving shape
    shapes.push_back({61, 765, 771});  // unaligned tails on every dimension
  }

  const std::vector<SweepCell> cells = RunSweep(shapes);
  std::printf("%-12s %-15s %-8s %10s %10s %9s\n", "shape", "kernel", "isa",
              "p50_ms", "p99_ms", "vs_scalar");
  double best_e31_speedup = 0.0;
  std::string best_e31_cell;
  for (const SweepCell& cell : cells) {
    std::printf("%-12s %-15s %-8s %10.4f %10.4f %8.2fx\n", cell.shape.c_str(),
                cell.kernel.c_str(), cell.isa.c_str(), cell.q.p50_ms,
                cell.q.p99_ms, cell.speedup_vs_scalar);
    if (cell.shape == shapes[0].Name() &&
        cell.speedup_vs_scalar > best_e31_speedup) {
      best_e31_speedup = cell.speedup_vs_scalar;
      best_e31_cell = cell.kernel + "/" + cell.isa;
    }
  }
  std::printf("best %s speedup vs scalar: %.2fx (%s)\n",
              shapes[0].Name().c_str(), best_e31_speedup,
              best_e31_cell.c_str());

  const std::vector<LookupRow> lookups = RunLookups();
  for (const LookupRow& row : lookups) {
    std::printf("lookup %-6s  p50 %.4f us | p99 %.4f us\n", row.name.c_str(),
                row.per_probe_us.p50_ms, row.per_probe_us.p99_ms);
  }

  FILE* out = std::fopen("BENCH_microkernels.json", "w");
  if (out == nullptr) {
    std::printf("cannot open BENCH_microkernels.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"smoke\": %s,\n"
               "  \"threads\": 1,\n"
               "  \"best_speedup_vs_scalar\": {\"shape\": \"%s\", "
               "\"cell\": \"%s\", \"speedup\": %.2f},\n"
               "  \"cells\": [\n",
               g_smoke ? "true" : "false", shapes[0].Name().c_str(),
               best_e31_cell.c_str(), best_e31_speedup);
  for (size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    std::fprintf(out,
                 "    {\"shape\": \"%s\", \"kernel\": \"%s\", \"isa\": "
                 "\"%s\", \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"speedup_vs_scalar\": %.2f}%s\n",
                 cell.shape.c_str(), cell.kernel.c_str(), cell.isa.c_str(),
                 cell.q.p50_ms, cell.q.p99_ms, cell.speedup_vs_scalar,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"lookup_us_per_probe\": {\n");
  for (size_t i = 0; i < lookups.size(); ++i) {
    std::fprintf(out, "    \"%s\": {\"p50\": %.4f, \"p99\": %.4f}%s\n",
                 lookups[i].name.c_str(), lookups[i].per_probe_us.p50_ms,
                 lookups[i].per_probe_us.p99_ms,
                 i + 1 < lookups.size() ? "," : "");
  }
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_microkernels.json\n");
  return 0;
}
