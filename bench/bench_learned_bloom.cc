// E11 — Learned Bloom filter vs classic at matched memory (Part 2):
// on structured key sets the classifier absorbs most members, cutting
// FPR (equivalently, memory at equal FPR).

#include <cstdio>

#include "src/db/bloom.h"
#include "src/learned/learned_bloom.h"

int main() {
  using namespace dlsys;
  std::printf("E11: learned vs classic bloom filter "
              "(4000 members, clustered key sets)\n");
  std::printf("%-9s %-9s %10s %12s %12s %10s\n", "clusters", "recall",
              "bytes", "classic_fpr", "learned_fpr", "backup");
  for (int64_t clusters : {2, 4, 8}) {
    Rng rng(59 + static_cast<uint64_t>(clusters));
    MembershipData data =
        MakeClusteredMembership(4000, 12000, 1 << 22, clusters, &rng);
    std::vector<int64_t> train_nm(data.non_members.begin(),
                                  data.non_members.begin() + 6000);
    std::vector<int64_t> test_nm(data.non_members.begin() + 6000,
                                 data.non_members.end());
    for (double recall : {0.5, 0.7, 0.9}) {
      LearnedBloomConfig config;
      config.epochs = 30;
      config.member_recall = recall;
      auto learned = LearnedBloomFilter::Train(data.members, train_nm, 0,
                                               1 << 22, config);
      if (!learned.ok()) return 1;
      const double bits_per_key =
          static_cast<double>(learned->MemoryBytes() * 8) /
          static_cast<double>(data.members.size());
      BloomFilter classic = BloomFilter::ForKeys(
          static_cast<int64_t>(data.members.size()), bits_per_key);
      for (int64_t key : data.members) classic.Insert(key);
      std::printf("%-9lld %-9.1f %10lld %12.4f %12.4f %10lld\n",
                  static_cast<long long>(clusters), recall,
                  static_cast<long long>(learned->MemoryBytes()),
                  classic.MeasureFpr(test_nm), learned->MeasureFpr(test_nm),
                  static_cast<long long>(learned->backup_keys()));
    }
  }
  std::printf("\nexpected shape: at matched memory the learned filter's "
              "FPR undercuts the classic filter when member keys are "
              "clustered; higher classifier recall shrinks the backup "
              "filter at some FPR risk.\n");
  return 0;
}
