// E10 — Learned index vs B+-tree vs binary search (Part 2, Kraska et
// al.): the learned index should be orders of magnitude smaller and
// competitive or better on lookup latency.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "src/core/metrics.h"
#include "src/core/rng.h"
#include "src/db/btree.h"
#include "src/learned/learned_index.h"

namespace {

std::vector<int64_t> MakeKeys(const char* dist, int64_t n, dlsys::Rng* rng) {
  std::set<int64_t> keys;
  while (static_cast<int64_t>(keys.size()) < n) {
    if (std::string(dist) == "uniform") {
      keys.insert(static_cast<int64_t>(rng->Next() >> 16));
    } else {
      keys.insert(
          static_cast<int64_t>(std::exp(rng->Gaussian() * 1.5 + 13.0)));
    }
  }
  return {keys.begin(), keys.end()};
}

}  // namespace

int main() {
  using namespace dlsys;
  std::printf("E10: learned index vs B+-tree vs binary search\n");
  std::printf("%-11s %9s %-8s %12s %12s %12s %10s\n", "dist", "keys",
              "struct", "build_ms", "lookup_ns", "bytes", "window");
  for (const char* dist : {"uniform", "lognormal"}) {
    for (int64_t n : {100000, 1000000}) {
      Rng rng(53);
      std::vector<int64_t> keys = MakeKeys(dist, n, &rng);
      // Probe set: every 13th key.
      std::vector<int64_t> probes;
      for (size_t i = 0; i < keys.size(); i += 13) probes.push_back(keys[i]);

      // B+-tree.
      Stopwatch bt_build;
      BTree btree(128);
      for (size_t i = 0; i < keys.size(); ++i) {
        btree.Insert(keys[i], static_cast<int64_t>(i));
      }
      const double bt_build_ms = bt_build.Seconds() * 1e3;
      Stopwatch bt_lookup;
      int64_t sink = 0;
      for (int64_t key : probes) sink += *btree.Find(key);
      const double bt_ns =
          bt_lookup.Seconds() * 1e9 / static_cast<double>(probes.size());
      std::printf("%-11s %9lld %-8s %12.1f %12.0f %12lld %10s\n", dist,
                  static_cast<long long>(n), "b+tree", bt_build_ms, bt_ns,
                  static_cast<long long>(btree.MemoryBytes()), "-");

      // Learned index (RMI).
      Stopwatch rmi_build;
      auto rmi = LearnedIndex::Build(keys, std::max<int64_t>(16, n / 400));
      const double rmi_build_ms = rmi_build.Seconds() * 1e3;
      if (!rmi.ok()) return 1;
      Stopwatch rmi_lookup;
      for (int64_t key : probes) sink -= *rmi->Find(key);
      const double rmi_ns =
          rmi_lookup.Seconds() * 1e9 / static_cast<double>(probes.size());
      std::printf("%-11s %9lld %-8s %12.1f %12.0f %12lld %10.1f\n", dist,
                  static_cast<long long>(n), "rmi", rmi_build_ms, rmi_ns,
                  static_cast<long long>(rmi->MemoryBytes()),
                  rmi->MeanSearchWindow());

      // Plain binary search over the sorted array (zero index bytes).
      Stopwatch bin_lookup;
      for (int64_t key : probes) {
        sink += std::lower_bound(keys.begin(), keys.end(), key) -
                keys.begin();
      }
      const double bin_ns =
          bin_lookup.Seconds() * 1e9 / static_cast<double>(probes.size());
      std::printf("%-11s %9lld %-8s %12s %12.0f %12d %10s  [sink %lld]\n",
                  dist, static_cast<long long>(n), "binary", "-", bin_ns, 0,
                  "-", static_cast<long long>(sink % 1000));
    }
  }
  std::printf("\nexpected shape: RMI is 10-100x smaller than the B+-tree "
              "and at least competitive on lookups (beating full binary "
              "search via its narrow certified windows).\n");
  return 0;
}
