// E1 — Quantization trades size for accuracy (tutorial Section 2.1).
// Sweeps bit width x quantizer kind on a trained MLP; prints accuracy,
// packed bytes, and Huffman-coded bytes per cell. A second table covers
// the serving-path block formats (ggml-style q8/q4, one scale per
// 32-element block) executed through the real InferenceEngine integer
// GEMM, and a timing section reads per-row vs per-block activation
// quantization latency quantiles back from the CounterRegistry histogram
// rather than local timing plumbing.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/compress/quantization.h"
#include "src/core/metrics.h"
#include "src/data/synthetic.h"
#include "src/infer/engine.h"
#include "src/nn/layers.h"
#include "src/nn/train.h"
#include "src/obs/counters.h"
#include "src/optim/optimizer.h"
#include "src/tensor/ops.h"

namespace dlsys {
namespace {

/// Fraction of \p split test examples the engine classifies correctly.
double EngineAccuracy(const Sequential& net, const TrainTestSplit& split,
                      EngineNumeric numeric) {
  EngineConfig config;
  config.max_batch = 64;
  config.numeric = numeric;
  auto compiled = InferenceEngine::Compile(net, {16}, config);
  if (!compiled.ok()) {
    std::fprintf(stderr, "engine compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return 0.0;
  }
  InferenceEngine engine = std::move(compiled).value();
  int64_t hits = 0;
  const int64_t n = split.test.size();
  for (int64_t begin = 0; begin < n; begin += 64) {
    const int64_t end = std::min<int64_t>(begin + 64, n);
    const Tensor logits =
        std::move(engine.Predict(SliceRows(split.test.x, begin, end))).value();
    const std::vector<int64_t> pred = ArgMaxRows(logits);
    for (int64_t i = 0; i < end - begin; ++i) {
      if (pred[static_cast<size_t>(i)] ==
          split.test.y[static_cast<size_t>(begin + i)]) {
        ++hits;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

/// Block-format storage and reconstruction error across every Dense weight
/// matrix of \p net (quantized per output feature, as the engine stores
/// them).
struct BlockCell {
  int64_t packed_bytes = 0;
  double max_err = 0.0;
};

template <typename QuantizeFn>
BlockCell MeasureBlockFormat(const Sequential& net, QuantizeFn&& quantize) {
  BlockCell cell;
  for (int64_t i = 0; i < net.size(); ++i) {
    const Dense* dense = dynamic_cast<const Dense*>(net.layer(i));
    if (dense == nullptr) continue;
    const Tensor wt = Transpose(dense->weight());
    auto q = quantize(wt);
    cell.packed_bytes += q.PackedBytes();
    Tensor back = q.Dequantize();
    for (int64_t i = 0; i < wt.size(); ++i) {
      cell.max_err = std::max(
          cell.max_err, static_cast<double>(std::abs(back[i] - wt[i])));
    }
  }
  return cell;
}

/// p50/p99 ms of `iters` runs of \p fn, via the registry histogram.
template <typename Fn>
void TimeIntoHistogram(const char* name, int iters, Fn&& fn) {
  obs::SharedHistogram* hist =
      obs::CounterRegistry::Global().histogram("bench.quantize_ms");
  hist->Reset();
  fn();  // warm
  for (int it = 0; it < iters; ++it) {
    Stopwatch watch;
    fn();
    hist->Record(watch.Seconds() * 1000.0);
  }
  std::printf("%-22s p50 %.4f ms | p99 %.4f ms\n", name,
              hist->Quantile(0.5), hist->Quantile(0.99));
}

}  // namespace
}  // namespace dlsys

int main() {
  using namespace dlsys;
  Rng rng(17);
  Dataset data = MakeGaussianBlobs(4000, 16, 8, 3.0, &rng);
  TrainTestSplit split = Split(data, 0.8);
  Sequential base = MakeMlp(16, {96, 64}, 8);
  base.Init(&rng);
  Sgd opt(0.05, 0.9);
  TrainConfig tc;
  tc.epochs = 25;
  Train(&base, &opt, split.train, tc);
  const double fp32_acc = Evaluate(&base, split.test).accuracy;

  std::printf("E1: quantization bit-width sweep "
              "(fp32 baseline: acc=%.3f, %lld bytes)\n",
              fp32_acc, static_cast<long long>(base.ModelBytes()));
  std::printf("%-10s %5s %10s %12s %13s %10s\n", "quantizer", "bits",
              "accuracy", "packed_B", "huffman_B", "max_err");

  struct Cell {
    QuantizerKind kind;
    const char* name;
    int64_t bits;
  };
  std::vector<Cell> cells;
  for (int64_t bits : {16, 8, 4, 2, 1}) {
    cells.push_back({QuantizerKind::kUniform, "uniform", bits});
    cells.push_back({QuantizerKind::kKMeans, "kmeans", bits});
  }
  cells.push_back({QuantizerKind::kBinary, "binary", 1});

  for (const Cell& cell : cells) {
    Sequential net = base.Clone();
    auto nq = QuantizeNetwork(&net, cell.kind, cell.bits);
    if (!nq.ok()) {
      std::fprintf(stderr, "quantize failed: %s\n",
                   nq.status().ToString().c_str());
      return 1;
    }
    const double acc = Evaluate(&net, split.test).accuracy;
    std::printf("%-10s %5lld %10.3f %12lld %13lld %10.4f\n", cell.name,
                static_cast<long long>(cell.bits), acc,
                static_cast<long long>(nq->packed_bytes),
                static_cast<long long>(nq->huffman_bytes),
                nq->max_abs_error);
  }

  // Block formats run through the actual integer serving path (fused
  // dequant GEMM in InferenceEngine), not simulated quantize-dequantize:
  // the accuracy column includes runtime q8 activation quantization.
  std::printf("\nblock formats (engine-executed, scale per %lld elements):\n",
              static_cast<long long>(kQuantBlock));
  std::printf("%-10s %5s %10s %12s %10s\n", "format", "bits", "accuracy",
              "packed_B", "max_err");
  const BlockCell q8 = MeasureBlockFormat(
      base, [](const Tensor& t) { return Q8BlockQuantizeRows(t); });
  const BlockCell q4 = MeasureBlockFormat(
      base, [](const Tensor& t) { return Q4BlockQuantizeRows(t); });
  std::printf("%-10s %5d %10.3f %12lld %10.4f\n", "q8-block", 8,
              EngineAccuracy(base, split, EngineNumeric::kInt8),
              static_cast<long long>(q8.packed_bytes), q8.max_err);
  std::printf("%-10s %5d %10.3f %12lld %10.4f\n", "q4-block", 4,
              EngineAccuracy(base, split, EngineNumeric::kInt4),
              static_cast<long long>(q4.packed_bytes), q4.max_err);

  // Activation quantization latency at the E31 serving shape, quantiles
  // from the registry histogram.
  std::printf("\nactivation quantization 64x768 (registry histogram):\n");
  Tensor act({64, 768});
  act.FillGaussian(&rng, 1.0f);
  {
    std::vector<int8_t> codes(64 * 768);
    std::vector<float> scales(64);
    TimeIntoHistogram("per-row int8", 50, [&] {
      SymmetricQuantizeRowsInto(act.data(), 64, 768, codes.data(),
                                scales.data());
    });
  }
  {
    std::vector<int8_t> codes(64 * 768);
    std::vector<float> scales(64 * 768 / kQuantBlock);
    TimeIntoHistogram("per-block q8", 50, [&] {
      Q8BlockQuantizeRowsInto(act.data(), 64, 768, codes.data(),
                              scales.data());
    });
  }

  std::printf("\nexpected shape: accuracy flat down to ~4 bits, cliff at "
              "1-2 bits; kmeans >= uniform at equal bits; size ~ bits/32; "
              "block formats hold the envelope at 32x finer scale "
              "granularity with q4 halving q8's bytes.\n");
  return 0;
}
