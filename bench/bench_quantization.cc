// E1 — Quantization trades size for accuracy (tutorial Section 2.1).
// Sweeps bit width x quantizer kind on a trained MLP; prints accuracy,
// packed bytes, and Huffman-coded bytes per cell.

#include <cstdio>

#include "src/compress/quantization.h"
#include "src/data/synthetic.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

int main() {
  using namespace dlsys;
  Rng rng(17);
  Dataset data = MakeGaussianBlobs(4000, 16, 8, 3.0, &rng);
  TrainTestSplit split = Split(data, 0.8);
  Sequential base = MakeMlp(16, {96, 64}, 8);
  base.Init(&rng);
  Sgd opt(0.05, 0.9);
  TrainConfig tc;
  tc.epochs = 25;
  Train(&base, &opt, split.train, tc);
  const double fp32_acc = Evaluate(&base, split.test).accuracy;

  std::printf("E1: quantization bit-width sweep "
              "(fp32 baseline: acc=%.3f, %lld bytes)\n",
              fp32_acc, static_cast<long long>(base.ModelBytes()));
  std::printf("%-10s %5s %10s %12s %13s %10s\n", "quantizer", "bits",
              "accuracy", "packed_B", "huffman_B", "max_err");

  struct Cell {
    QuantizerKind kind;
    const char* name;
    int64_t bits;
  };
  std::vector<Cell> cells;
  for (int64_t bits : {16, 8, 4, 2, 1}) {
    cells.push_back({QuantizerKind::kUniform, "uniform", bits});
    cells.push_back({QuantizerKind::kKMeans, "kmeans", bits});
  }
  cells.push_back({QuantizerKind::kBinary, "binary", 1});

  for (const Cell& cell : cells) {
    Sequential net = base.Clone();
    auto nq = QuantizeNetwork(&net, cell.kind, cell.bits);
    if (!nq.ok()) {
      std::fprintf(stderr, "quantize failed: %s\n",
                   nq.status().ToString().c_str());
      return 1;
    }
    const double acc = Evaluate(&net, split.test).accuracy;
    std::printf("%-10s %5lld %10.3f %12lld %13lld %10.4f\n", cell.name,
                static_cast<long long>(cell.bits), acc,
                static_cast<long long>(nq->packed_bytes),
                static_cast<long long>(nq->huffman_bytes),
                nq->max_abs_error);
  }
  std::printf("\nexpected shape: accuracy flat down to ~4 bits, cliff at "
              "1-2 bits; kmeans >= uniform at equal bits; size ~ bits/32.\n");
  return 0;
}
