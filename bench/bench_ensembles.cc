// E4 — Ensemble training strategies (Section 2.1): full independent
// training vs Snapshot Ensembles vs MotherNets vs TreeNets. Reports
// accuracy, training time, model bytes, and inference time for a
// 5-member ensemble.

#include <cstdio>

#include "src/data/synthetic.h"
#include "src/ensemble/ensemble.h"
#include "src/ensemble/treenet.h"
#include "src/nn/layers.h"
#include "src/nn/train.h"

int main() {
  using namespace dlsys;
  Rng rng(29);
  // Close classes: single models plateau below the ensemble ceiling, so
  // averaging has visible headroom.
  Dataset data = MakeGaussianBlobs(6000, 16, 8, 1.0, &rng);
  TrainTestSplit split = Split(data, 0.85);
  const int64_t k = 5;
  const int64_t epochs_per_member = 12;

  std::printf("E4: 5-member ensemble strategies\n");
  std::printf("%-22s %10s %12s %12s %12s\n", "strategy", "accuracy",
              "train_s", "model_KB", "infer_s");

  MemberBuilder builder = [](int64_t) { return MakeMlp(16, {48}, 8); };

  // Full independent ensemble (the baseline).
  {
    TrainConfig tc;
    tc.epochs = epochs_per_member;
    auto run = TrainFullEnsemble(builder, k, split.train, tc, 0.05, 3);
    if (!run.ok()) return 1;
    auto& e = const_cast<Ensemble&>(run->ensemble);
    std::printf("%-22s %10.3f %12.3f %12.1f %12.4f\n", "full (baseline)",
                e.Accuracy(split.test),
                run->report.Get(metric::kTrainSeconds),
                run->report.Get(metric::kModelBytes) / 1e3,
                e.MeasureInferenceSeconds(split.test));
    // Single member for reference.
    std::printf("%-22s %10.3f %12s %12.1f %12s\n", "  (single member)",
                Evaluate(&e.member(0), split.test).accuracy, "-",
                static_cast<double>(e.member(0).ModelBytes()) / 1e3, "-");
  }
  // Snapshot ensemble: one training run, k cosine cycles — roughly one
  // member's training budget in total (3 epochs per cycle).
  {
    auto run = TrainSnapshotEnsemble(builder, k, 3, split.train, 32, 0.1, 3);
    if (!run.ok()) return 1;
    auto& e = const_cast<Ensemble&>(run->ensemble);
    std::printf("%-22s %10.3f %12.3f %12.1f %12.4f\n", "snapshot",
                e.Accuracy(split.test),
                run->report.Get(metric::kTrainSeconds),
                run->report.Get(metric::kModelBytes) / 1e3,
                e.MeasureInferenceSeconds(split.test));
  }
  // Fast Geometric Ensembles: converge once, then short triangular
  // exploration cycles (1 epoch each).
  {
    auto run = TrainFastGeometricEnsemble(builder, k, epochs_per_member, 2,
                                          split.train, 32, 0.05, 0.05, 0.005,
                                          3);
    if (!run.ok()) return 1;
    auto& e = const_cast<Ensemble&>(run->ensemble);
    std::printf("%-22s %10.3f %12.3f %12.1f %12.4f\n", "fge",
                e.Accuracy(split.test),
                run->report.Get(metric::kTrainSeconds),
                run->report.Get(metric::kModelBytes) / 1e3,
                e.MeasureInferenceSeconds(split.test));
  }
  // MotherNets: shared mother + hatch + short finetune.
  {
    auto run = TrainMotherNets(16, 8, {40, 44, 48, 52, 56},
                               /*mother_epochs=*/epochs_per_member,
                               /*finetune_epochs=*/3, split.train, 32, 0.05,
                               3);
    if (!run.ok()) return 1;
    auto& e = const_cast<Ensemble&>(run->ensemble);
    std::printf("%-22s %10.3f %12.3f %12.1f %12.4f\n", "mothernets",
                e.Accuracy(split.test),
                run->report.Get(metric::kTrainSeconds),
                run->report.Get(metric::kModelBytes) / 1e3,
                e.MeasureInferenceSeconds(split.test));
  }
  // TreeNet: shared trunk, k heads, trained jointly.
  {
    Sequential trunk = MakeMlp(16, {}, 48);
    trunk.Emplace<ReLU>();
    Sequential head = MakeMlp(48, {}, 8);
    Rng trng(3);
    trunk.Init(&trng);
    TreeNet tree(std::move(trunk), head, k, 4);
    MetricsReport report = TrainTreeNet(&tree, split.train,
                                        epochs_per_member, 32, 0.05, 5);
    Stopwatch infer;
    tree.Accuracy(split.test);
    std::printf("%-22s %10.3f %12.3f %12.1f %12.4f\n", "treenet",
                tree.Accuracy(split.test),
                report.Get(metric::kTrainSeconds),
                report.Get(metric::kModelBytes) / 1e3, infer.Seconds());
  }
  std::printf("\nexpected shape: full ensemble is the accuracy ceiling and "
              "the cost ceiling; snapshot ~1/k train time at small accuracy "
              "cost; mothernets/treenet also cut memory and inference.\n");
  return 0;
}
