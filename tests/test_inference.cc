// Tests for the batched inference engine (src/infer): fp32 bitwise parity
// with the training forward across thread counts and conv algorithms, the
// arena's plan-once discipline, zero steady-state tensor allocations, the
// int8 path's exactness and accuracy envelope, and the micro-batching
// front door.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/compress/quantization.h"
#include "src/data/dataset.h"
#include "src/data/synthetic.h"
#include "src/infer/arena.h"
#include "src/infer/batcher.h"
#include "src/infer/engine.h"
#include "src/infer/passes.h"
#include "src/obs/counters.h"
#include "src/nn/conv.h"
#include "src/nn/layers.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"
#include "src/runtime/runtime.h"
#include "src/simd/dispatch.h"
#include "src/tensor/int8_gemm.h"
#include "src/tensor/ops.h"

namespace dlsys {
namespace {

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.bytes())) == 0;
}

/// Pins DLSYS_PASSES for a test's lifetime and restores the prior value on
/// exit. The env var overrides EngineConfig::passes in every Compile, so
/// tests that assert graph structure must pin it — otherwise the CI
/// passes-off job (which exports DLSYS_PASSES=none for the whole suite)
/// would disable the rewrites they are asserting on.
class PassEnvOverride {
 public:
  explicit PassEnvOverride(const char* value) {
    const char* prev = std::getenv("DLSYS_PASSES");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (value != nullptr) {
      setenv("DLSYS_PASSES", value, 1);
    } else {
      unsetenv("DLSYS_PASSES");
    }
  }
  ~PassEnvOverride() {
    if (had_prev_) {
      setenv("DLSYS_PASSES", prev_.c_str(), 1);
    } else {
      unsetenv("DLSYS_PASSES");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

// ------------------------------------------------------------ TensorArena

TEST(TensorArenaTest, ReserveCommitResolve) {
  TensorArena arena;
  const TensorArena::BufferId f = arena.ReserveFloats(100);
  const TensorArena::BufferId q = arena.ReserveInt8s(33);
  const TensorArena::BufferId a = arena.ReserveInt32s(7);
  EXPECT_FALSE(arena.committed());
  arena.Commit();
  EXPECT_TRUE(arena.committed());
  EXPECT_EQ(arena.buffer_count(), 3);
  EXPECT_EQ(arena.ElementCount(f), 100);
  EXPECT_EQ(arena.ElementCount(q), 33);
  EXPECT_GT(arena.total_bytes(), 0);
  // Every buffer is 64-byte aligned.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(arena.Floats(f)) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(arena.Int8s(q)) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(arena.Int32s(a)) % 64, 0u);
  // Buffers are disjoint and writable end to end.
  float* pf = arena.Floats(f);
  for (int i = 0; i < 100; ++i) pf[i] = 1.0f;
  int8_t* pq = arena.Int8s(q);
  for (int i = 0; i < 33; ++i) pq[i] = -5;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(pf[i], 1.0f);
}

TEST(TensorArenaTest, RegistersWithMemoryTracker) {
  const int64_t before = MemoryTracker::Global().current_bytes();
  {
    TensorArena arena;
    arena.ReserveFloats(1024);
    arena.Commit();
    EXPECT_GE(MemoryTracker::Global().current_bytes() - before,
              1024 * static_cast<int64_t>(sizeof(float)));
  }
  EXPECT_EQ(MemoryTracker::Global().current_bytes(), before);
}

TEST(TensorArenaDeathTest, ReserveAfterCommitAborts) {
  TensorArena arena;
  arena.ReserveFloats(8);
  arena.Commit();
  // The in-place reuse guarantee: once the plan is frozen, any attempt to
  // grow the workspace is a planning bug and must abort loudly.
  EXPECT_DEATH(arena.ReserveFloats(8), "after Commit");
}

TEST(TensorArenaDeathTest, AccessBeforeCommitAborts) {
  TensorArena arena;
  const TensorArena::BufferId id = arena.ReserveFloats(8);
  EXPECT_DEATH(arena.Floats(id), "before Commit");
}

// -------------------------------------------------------- fp32 bit parity

/// An MLP exercising every supported rank-1 layer kind.
Sequential MakeMixedMlp() {
  Sequential net;
  net.Emplace<Dense>(16, 32);
  net.Emplace<BatchNorm1d>(32);
  net.Emplace<Tanh>();
  net.Emplace<Dense>(32, 24);
  net.Emplace<Sigmoid>();
  net.Emplace<Dropout>(0.3f);
  net.Emplace<Dense>(24, 4);
  return net;
}

TEST(InferenceEngineTest, MlpBitwiseMatchesSequentialAcrossThreads) {
  Rng rng(31);
  Sequential net = MakeMixedMlp();
  net.Init(&rng);
  // A few cached forwards move the BatchNorm running statistics off their
  // initial values, so the inference path has something real to fold in.
  Tensor warm({32, 16});
  warm.FillGaussian(&rng, 1.0f);
  net.Forward(warm, CacheMode::kCache);
  net.Forward(warm, CacheMode::kCache);

  Tensor x({13, 16});
  x.FillGaussian(&rng, 1.0f);
  RuntimeConfig::SetThreads(1);
  const Tensor ref = net.Forward(x, CacheMode::kNoCache);

  auto compiled = InferenceEngine::Compile(net, {16}, EngineConfig{16});
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  InferenceEngine engine = std::move(compiled).value();
  EXPECT_EQ(engine.output_elems_per_example(), 4);

  for (int threads : {1, 2, 8}) {
    RuntimeConfig::SetThreads(threads);
    auto y = engine.Predict(x);
    ASSERT_TRUE(y.ok()) << y.status().ToString();
    EXPECT_TRUE(BitwiseEqual(*y, ref)) << "threads=" << threads;
  }
  RuntimeConfig::SetThreads(1);
}

TEST(InferenceEngineTest, CnnBitwiseMatchesSequentialBothConvAlgos) {
  Rng rng(32);
  Sequential net = MakeCnn(12, 4, 6, 5);
  net.Init(&rng);
  Tensor x({3, 1, 12, 12});
  x.FillGaussian(&rng, 1.0f);
  RuntimeConfig::SetThreads(1);
  const Tensor ref = net.Forward(x, CacheMode::kNoCache);

  for (ConvAlgo algo : {ConvAlgo::kIm2col, ConvAlgo::kDirect}) {
    EngineConfig config;
    config.max_batch = 8;
    config.conv_algo = algo;
    auto compiled = InferenceEngine::Compile(net, {1, 12, 12}, config);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    InferenceEngine engine = std::move(compiled).value();
    for (int threads : {1, 2, 8}) {
      RuntimeConfig::SetThreads(threads);
      auto y = engine.Predict(x);
      ASSERT_TRUE(y.ok()) << y.status().ToString();
      EXPECT_TRUE(BitwiseEqual(*y, ref))
          << "algo=" << (algo == ConvAlgo::kIm2col ? "im2col" : "direct")
          << " threads=" << threads;
    }
  }
  RuntimeConfig::SetThreads(1);
}

TEST(InferenceEngineTest, RepeatedCallsAreBitwiseStable) {
  Rng rng(33);
  Sequential net = MakeMlp(16, {32, 24}, 4);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {16}, EngineConfig{16});
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();

  Tensor big({16, 16}), small({3, 16});
  big.FillGaussian(&rng, 1.0f);
  small.FillGaussian(&rng, 1.0f);

  RuntimeConfig::SetThreads(8);
  const Tensor first = std::move(engine.Predict(big)).value();
  // Interleave a different batch size: workspace reuse across calls must
  // not leak one request's activations into the next.
  const Tensor small_out = std::move(engine.Predict(small)).value();
  const Tensor second = std::move(engine.Predict(big)).value();
  const Tensor small_again = std::move(engine.Predict(small)).value();
  RuntimeConfig::SetThreads(1);
  EXPECT_TRUE(BitwiseEqual(first, second));
  EXPECT_TRUE(BitwiseEqual(small_out, small_again));
}

TEST(InferenceEngineTest, BatchRowsMatchSingleExamplePredictions) {
  Rng rng(34);
  Sequential net = MakeMlp(16, {32}, 4);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {16}, EngineConfig{8});
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();
  Tensor x({8, 16});
  x.FillGaussian(&rng, 1.0f);
  const Tensor batched = std::move(engine.Predict(x)).value();
  for (int64_t i = 0; i < 8; ++i) {
    const Tensor one = SliceRows(x, i, i + 1);
    const Tensor single = std::move(engine.Predict(one)).value();
    EXPECT_TRUE(BitwiseEqual(single, SliceRows(batched, i, i + 1)))
        << "row " << i;
  }
}

TEST(InferenceEngineTest, SteadyStateMakesNoTensorAllocations) {
  Rng rng(35);
  Sequential net = MakeCnn(8, 3, 4, 3);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {1, 8, 8}, EngineConfig{4});
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();

  Tensor in({4, 1, 8, 8});
  in.FillGaussian(&rng, 1.0f);
  Tensor out({4, engine.output_elems_per_example()});
  RuntimeConfig::SetThreads(8);
  ASSERT_TRUE(engine.PredictInto(in.data(), 4, out.data()).ok());  // warm

  const int64_t count_before = MemoryTracker::Global().allocation_count();
  for (int iter = 0; iter < 10; ++iter) {
    ASSERT_TRUE(engine.PredictInto(in.data(), 4, out.data()).ok());
  }
  RuntimeConfig::SetThreads(1);
  EXPECT_EQ(MemoryTracker::Global().allocation_count(), count_before)
      << "PredictInto allocated tensor memory in steady state";
}

// ------------------------------------------------------------- int8 path

TEST(Int8GemmTest, MatchesNaiveReferenceAcrossThreadCounts) {
  Rng rng(36);
  const int64_t m = 33, k = 65, n = 17;
  std::vector<int8_t> a(static_cast<size_t>(m * k));
  std::vector<int8_t> b(static_cast<size_t>(n * k));
  for (auto& v : a) {
    v = static_cast<int8_t>(static_cast<int64_t>(rng.Uniform(0, 255)) - 127);
  }
  for (auto& v : b) {
    v = static_cast<int8_t>(static_cast<int64_t>(rng.Uniform(0, 255)) - 127);
  }
  std::vector<int32_t> ref(static_cast<size_t>(m * n));
  NaiveInt8GemmTransBInto(a.data(), b.data(), ref.data(), m, k, n);
  for (int threads : {1, 2, 8}) {
    RuntimeConfig::SetThreads(threads);
    std::vector<int32_t> c(static_cast<size_t>(m * n), -1);
    Int8GemmTransBInto(a.data(), b.data(), c.data(), m, k, n);
    EXPECT_EQ(c, ref) << "threads=" << threads;
  }
  RuntimeConfig::SetThreads(1);
}

TEST(SymmetricQuantizeTest, RoundTripBoundedByScale) {
  Rng rng(37);
  Tensor t({7, 40});
  t.FillGaussian(&rng, 2.0f);
  SymmetricInt8Matrix q = SymmetricQuantizeRows(t);
  ASSERT_EQ(q.rows, 7);
  Tensor back = q.Dequantize();
  for (int64_t i = 0; i < 7; ++i) {
    const float scale = q.scales[static_cast<size_t>(i)];
    for (int64_t j = 0; j < 40; ++j) {
      EXPECT_NEAR(back[i * 40 + j], t[i * 40 + j], scale * 0.5f + 1e-6f);
    }
  }
}

TEST(Int8EngineTest, AccuracyWithinEnvelopeOnBlobsTask) {
  // The E1 setup of EXPERIMENTS.md at reduced scale: simulated 8-bit
  // weight quantization there held accuracy at 1.000; the real int8
  // execution path must stay within 0.02 of its own fp32 baseline.
  RuntimeConfig::SetThreads(4);
  Rng rng(17);
  Dataset data = MakeGaussianBlobs(2000, 16, 8, 3.0, &rng);
  TrainTestSplit split = Split(data, 0.8);
  Sequential net = MakeMlp(16, {96, 64}, 8);
  Rng init_rng(18);
  net.Init(&init_rng);
  Sgd opt(0.05, 0.9);
  TrainConfig config;
  config.epochs = 15;
  config.batch_size = 32;
  Train(&net, &opt, split.train, config);
  const double fp32_acc = Evaluate(&net, split.test).accuracy;
  ASSERT_GT(fp32_acc, 0.9);

  EngineConfig engine_config;
  engine_config.max_batch = 64;
  engine_config.numeric = EngineNumeric::kInt8;
  auto compiled = InferenceEngine::Compile(net, {16}, engine_config);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  InferenceEngine engine = std::move(compiled).value();

  int64_t hits = 0;
  const int64_t n = split.test.size();
  for (int64_t begin = 0; begin < n; begin += 64) {
    const int64_t end = std::min<int64_t>(begin + 64, n);
    const Tensor logits =
        std::move(engine.Predict(SliceRows(split.test.x, begin, end)))
            .value();
    const std::vector<int64_t> pred = ArgMaxRows(logits);
    for (int64_t i = 0; i < end - begin; ++i) {
      if (pred[static_cast<size_t>(i)] ==
          split.test.y[static_cast<size_t>(begin + i)]) {
        ++hits;
      }
    }
  }
  const double int8_acc = static_cast<double>(hits) / static_cast<double>(n);
  RuntimeConfig::SetThreads(1);
  EXPECT_GE(int8_acc, fp32_acc - 0.02)
      << "int8=" << int8_acc << " fp32=" << fp32_acc;
}

TEST(Int8EngineTest, DeterministicAcrossThreadCounts) {
  Rng rng(38);
  Sequential net = MakeMlp(16, {48}, 4);
  net.Init(&rng);
  EngineConfig config;
  config.max_batch = 8;
  config.numeric = EngineNumeric::kInt8;
  auto compiled = InferenceEngine::Compile(net, {16}, config);
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();
  Tensor x({8, 16});
  x.FillGaussian(&rng, 1.0f);
  RuntimeConfig::SetThreads(1);
  const Tensor ref = std::move(engine.Predict(x)).value();
  for (int threads : {2, 8}) {
    RuntimeConfig::SetThreads(threads);
    const Tensor y = std::move(engine.Predict(x)).value();
    EXPECT_TRUE(BitwiseEqual(y, ref)) << "threads=" << threads;
  }
  RuntimeConfig::SetThreads(1);
}

TEST(Int4EngineTest, AccuracyWithinEnvelopeOnBlobsTask) {
  // Same setup as the int8 envelope test; q4 weights (scale = max|block|/7)
  // are coarser, so the envelope widens to 0.05. Activations stay q8.
  RuntimeConfig::SetThreads(4);
  Rng rng(17);
  Dataset data = MakeGaussianBlobs(2000, 16, 8, 3.0, &rng);
  TrainTestSplit split = Split(data, 0.8);
  Sequential net = MakeMlp(16, {96, 64}, 8);
  Rng init_rng(18);
  net.Init(&init_rng);
  Sgd opt(0.05, 0.9);
  TrainConfig config;
  config.epochs = 15;
  config.batch_size = 32;
  Train(&net, &opt, split.train, config);
  const double fp32_acc = Evaluate(&net, split.test).accuracy;
  ASSERT_GT(fp32_acc, 0.9);

  EngineConfig engine_config;
  engine_config.max_batch = 64;
  engine_config.numeric = EngineNumeric::kInt4;
  auto compiled = InferenceEngine::Compile(net, {16}, engine_config);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  InferenceEngine engine = std::move(compiled).value();

  int64_t hits = 0;
  const int64_t n = split.test.size();
  for (int64_t begin = 0; begin < n; begin += 64) {
    const int64_t end = std::min<int64_t>(begin + 64, n);
    const Tensor logits =
        std::move(engine.Predict(SliceRows(split.test.x, begin, end)))
            .value();
    const std::vector<int64_t> pred = ArgMaxRows(logits);
    for (int64_t i = 0; i < end - begin; ++i) {
      if (pred[static_cast<size_t>(i)] ==
          split.test.y[static_cast<size_t>(begin + i)]) {
        ++hits;
      }
    }
  }
  const double int4_acc = static_cast<double>(hits) / static_cast<double>(n);
  RuntimeConfig::SetThreads(1);
  EXPECT_GE(int4_acc, fp32_acc - 0.05)
      << "int4=" << int4_acc << " fp32=" << fp32_acc;
}

TEST(QuantizedEngineTest, DeterministicAcrossThreadCountsAndIsas) {
  // Both quantized paths must be bitwise reproducible not only across
  // DLSYS_THREADS but across every dispatched SIMD ISA: int32 block dots
  // are exact and the float epilogue order is fixed per element.
  Rng rng(40);
  Sequential net = MakeMlp(16, {48}, 4);
  net.Init(&rng);
  Tensor x({8, 16});
  x.FillGaussian(&rng, 1.0f);
  const simd::Isa initial_isa = simd::ActiveIsa();
  for (EngineNumeric numeric : {EngineNumeric::kInt8, EngineNumeric::kInt4}) {
    EngineConfig config;
    config.max_batch = 8;
    config.numeric = numeric;
    auto compiled = InferenceEngine::Compile(net, {16}, config);
    ASSERT_TRUE(compiled.ok());
    InferenceEngine engine = std::move(compiled).value();
    RuntimeConfig::SetThreads(1);
    const Tensor ref = std::move(engine.Predict(x)).value();
    for (simd::Isa isa :
         {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kAvx512}) {
      if (!simd::IsaSupported(isa)) continue;
      simd::SetIsa(isa);
      for (int threads : {1, 2, 8}) {
        RuntimeConfig::SetThreads(threads);
        const Tensor y = std::move(engine.Predict(x)).value();
        EXPECT_TRUE(BitwiseEqual(y, ref))
            << "numeric=" << (numeric == EngineNumeric::kInt8 ? "int8" : "int4")
            << " isa=" << simd::IsaName(isa) << " threads=" << threads;
      }
    }
    simd::SetIsa(initial_isa);
  }
  RuntimeConfig::SetThreads(1);
}

// --------------------------------------------------------- error statuses

/// A layer type the engine has no lowering for.
class MysteryLayer : public Layer {
 public:
  std::string name() const override { return "mystery"; }
  Tensor Forward(const Tensor& x, CacheMode mode) override {
    (void)mode;
    return x;
  }
  Tensor Backward(const Tensor& grad_output) override { return grad_output; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<MysteryLayer>();
  }
};

TEST(InferenceEngineTest, CompileErrors) {
  Rng rng(39);
  Sequential mlp = MakeMlp(16, {8}, 4);
  mlp.Init(&rng);

  // Shape does not thread through the first Dense.
  auto bad_shape = InferenceEngine::Compile(mlp, {4, 4});
  ASSERT_FALSE(bad_shape.ok());
  EXPECT_EQ(bad_shape.status().code(), StatusCode::kInvalidArgument);

  // Malformed config.
  auto bad_batch = InferenceEngine::Compile(mlp, {16}, EngineConfig{0});
  ASSERT_FALSE(bad_batch.ok());
  EXPECT_EQ(bad_batch.status().code(), StatusCode::kInvalidArgument);

  // Unknown layer type.
  Sequential odd;
  odd.Emplace<MysteryLayer>();
  auto unsupported = InferenceEngine::Compile(odd, {16});
  ASSERT_FALSE(unsupported.ok());
  EXPECT_EQ(unsupported.status().code(), StatusCode::kUnimplemented);
}

TEST(InferenceEngineTest, PredictErrors) {
  Rng rng(40);
  Sequential net = MakeMlp(16, {8}, 4);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {16}, EngineConfig{4});
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();

  Tensor too_big({5, 16});
  auto over = engine.Predict(too_big);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kInvalidArgument);

  Tensor wrong_shape({2, 8});
  auto mis = engine.Predict(wrong_shape);
  ASSERT_FALSE(mis.ok());
  EXPECT_EQ(mis.status().code(), StatusCode::kInvalidArgument);

  Tensor ok_in({2, 16});
  EXPECT_TRUE(engine.Predict(ok_in).ok());
}

// ------------------------------------------------------------ MicroBatcher

TEST(MicroBatcherTest, DispatchesOnMaxBatchAndMaxDelay) {
  Rng rng(41);
  Sequential net = MakeMlp(16, {8}, 4);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {16}, EngineConfig{8});
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();

  MicroBatcherConfig config;
  config.max_batch = 4;
  config.max_delay_ms = 1.0;
  MicroBatcher batcher(&engine, config);

  std::vector<Tensor> examples;
  for (int i = 0; i < 9; ++i) {
    Tensor e({16});
    e.FillGaussian(&rng, 1.0f);
    examples.push_back(std::move(e));
  }

  // Three arrivals, then the delay budget expires: one batch of 3 at the
  // oldest arrival + max_delay.
  batcher.Submit(examples[0], 0.0);
  batcher.Submit(examples[1], 0.1);
  batcher.Submit(examples[2], 0.2);
  EXPECT_EQ(batcher.pending(), 3);
  batcher.AdvanceTo(0.5);
  EXPECT_EQ(batcher.pending(), 3);  // 0.0 + 1.0 not yet reached
  batcher.AdvanceTo(2.0);
  EXPECT_EQ(batcher.pending(), 0);
  ASSERT_EQ(batcher.batches_run(), 1);
  ASSERT_EQ(batcher.completions().size(), 3u);
  EXPECT_DOUBLE_EQ(batcher.completions()[0].start_ms, 1.0);
  EXPECT_EQ(batcher.completions()[0].batch_size, 3);

  // Four rapid arrivals: dispatch on the example that fills the batch.
  for (int i = 3; i < 7; ++i) batcher.Submit(examples[i], 3.0);
  EXPECT_EQ(batcher.pending(), 0);
  EXPECT_EQ(batcher.batches_run(), 2);
  EXPECT_DOUBLE_EQ(batcher.completions()[3].start_ms, 3.0);
  EXPECT_EQ(batcher.completions()[3].batch_size, 4);

  // Flush drains the remainder immediately.
  batcher.Submit(examples[7], 4.0);
  batcher.Submit(examples[8], 4.1);
  batcher.Flush();
  EXPECT_EQ(batcher.pending(), 0);
  EXPECT_EQ(batcher.batches_run(), 3);
  ASSERT_EQ(batcher.completions().size(), 9u);

  // Batched outputs equal individual predictions, bitwise.
  for (size_t i = 0; i < 9; ++i) {
    const MicroBatcher::Completion& done = batcher.completions()[i];
    Tensor one({1, 16});
    const Tensor& src = examples[static_cast<size_t>(done.id)];
    std::copy(src.data(), src.data() + 16, one.data());
    const Tensor want = std::move(engine.Predict(one)).value();
    EXPECT_TRUE(BitwiseEqual(done.output.Reshaped({1, 4}), want))
        << "completion " << i;
    EXPECT_GE(done.finish_ms, done.start_ms);
    EXPECT_GE(done.start_ms, done.arrival_ms);
  }
}

TEST(MicroBatcherTest, MaxBatchOnePassesEverySubmitThrough) {
  Rng rng(42);
  Sequential net = MakeMlp(16, {8}, 4);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {16}, EngineConfig{8});
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();

  MicroBatcherConfig config;
  config.max_batch = 1;
  config.max_delay_ms = 5.0;  // irrelevant: every batch fills instantly
  MicroBatcher batcher(&engine, config);

  Tensor e({16});
  for (int i = 0; i < 3; ++i) {
    e.FillGaussian(&rng, 1.0f);
    batcher.Submit(e, static_cast<double>(i));
    EXPECT_EQ(batcher.pending(), 0) << "submit " << i;
  }
  EXPECT_EQ(batcher.batches_run(), 3);
  ASSERT_EQ(batcher.completions().size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    const MicroBatcher::Completion& done = batcher.completions()[i];
    EXPECT_EQ(done.batch_size, 1);
    // Pass-through dispatches at the arrival itself, never the delay.
    EXPECT_DOUBLE_EQ(done.start_ms, done.arrival_ms);
  }
}

TEST(MicroBatcherTest, SameTickArrivalsCoalesceDeterministically) {
  Rng rng(43);
  Sequential net = MakeMlp(16, {8}, 4);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {16}, EngineConfig{8});
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();

  // The hostile setting: zero delay budget, where a naive "dispatch when
  // expired at arrival" rule would split simultaneous arrivals into
  // single-example batches.
  MicroBatcherConfig config;
  config.max_batch = 4;
  config.max_delay_ms = 0.0;
  MicroBatcher batcher(&engine, config);

  Tensor e({16});
  for (int i = 0; i < 3; ++i) {
    e.FillGaussian(&rng, 1.0f);
    batcher.Submit(e, 1.0);  // one tick, three arrivals
  }
  EXPECT_EQ(batcher.pending(), 3);  // budget expires *at* 1.0, not before
  batcher.AdvanceTo(1.0);           // inclusive: fires the expired batch
  EXPECT_EQ(batcher.pending(), 0);
  EXPECT_EQ(batcher.batches_run(), 1);
  ASSERT_EQ(batcher.completions().size(), 3u);
  EXPECT_EQ(batcher.completions()[0].batch_size, 3);
  EXPECT_DOUBLE_EQ(batcher.completions()[0].start_ms, 1.0);

  // A later arrival first flushes the now strictly-expired queue, at the
  // expiry time rather than the new arrival's.
  e.FillGaussian(&rng, 1.0f);
  batcher.Submit(e, 2.0);
  e.FillGaussian(&rng, 1.0f);
  batcher.Submit(e, 2.5);
  EXPECT_EQ(batcher.batches_run(), 2);
  EXPECT_EQ(batcher.pending(), 1);
  ASSERT_EQ(batcher.completions().size(), 4u);
  EXPECT_EQ(batcher.completions()[3].batch_size, 1);
  EXPECT_DOUBLE_EQ(batcher.completions()[3].start_ms, 2.0);
  batcher.Flush();
  EXPECT_EQ(batcher.pending(), 0);
}

TEST(MicroBatcherTest, FlushOnEmptyQueueIsNoOp) {
  Rng rng(44);
  Sequential net = MakeMlp(16, {8}, 4);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {16}, EngineConfig{8});
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();
  MicroBatcherConfig config;
  config.max_batch = 8;
  MicroBatcher batcher(&engine, config);

  batcher.Flush();  // nothing pending: must not run an empty batch
  EXPECT_EQ(batcher.batches_run(), 0);
  EXPECT_TRUE(batcher.completions().empty());

  Tensor e({16});
  e.FillGaussian(&rng, 1.0f);
  batcher.Submit(e, 1.0);
  batcher.Flush();
  batcher.Flush();  // idempotent after a real flush too
  EXPECT_EQ(batcher.batches_run(), 1);
  EXPECT_EQ(batcher.completions().size(), 1u);
}

// ------------------------------------------------- graph pass pipeline

TEST(PassPipelineTest, Fp32BitwiseInvariantAcrossPassesIsasThreads) {
  // The acceptance bar for every rewrite pass: fp32 output with all
  // passes on is bitwise identical to the unfused (all-off) schedule and
  // to the training forward, at threads 1/2/8 under each supported ISA.
  Rng rng(50);
  Sequential mlp = MakeMlp(16, {32, 24}, 4);
  mlp.Init(&rng);
  Sequential mixed = MakeMixedMlp();
  mixed.Init(&rng);
  Tensor warm({32, 16});
  warm.FillGaussian(&rng, 1.0f);
  mixed.Forward(warm, CacheMode::kCache);
  Sequential cnn = MakeCnn(12, 4, 6, 5);
  cnn.Init(&rng);

  struct Case {
    Sequential* net;
    Shape shape;
    Tensor x;
    const char* label;
  };
  Tensor x_mlp({9, 16}), x_mixed({9, 16}), x_cnn({3, 1, 12, 12});
  x_mlp.FillGaussian(&rng, 1.0f);
  x_mixed.FillGaussian(&rng, 1.0f);
  x_cnn.FillGaussian(&rng, 1.0f);
  Case cases[] = {{&mlp, {16}, std::move(x_mlp), "mlp"},
                  {&mixed, {16}, std::move(x_mixed), "mixed"},
                  {&cnn, {1, 12, 12}, std::move(x_cnn), "cnn"}};

  const simd::Isa initial_isa = simd::ActiveIsa();
  for (Case& c : cases) {
    RuntimeConfig::SetThreads(1);
    const Tensor ref = c.net->Forward(c.x, CacheMode::kNoCache);
    for (const char* passes : {"all", "none", "fuse", "fuse,pack"}) {
      PassEnvOverride env(passes);
      auto compiled = InferenceEngine::Compile(*c.net, c.shape,
                                               EngineConfig{16});
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      InferenceEngine engine = std::move(compiled).value();
      for (simd::Isa isa :
           {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kAvx512}) {
        if (!simd::IsaSupported(isa)) continue;
        simd::SetIsa(isa);
        for (int threads : {1, 2, 8}) {
          RuntimeConfig::SetThreads(threads);
          auto y = engine.Predict(c.x);
          ASSERT_TRUE(y.ok()) << y.status().ToString();
          EXPECT_TRUE(BitwiseEqual(*y, ref))
              << c.label << " passes=" << passes
              << " isa=" << simd::IsaName(isa) << " threads=" << threads;
        }
      }
      simd::SetIsa(initial_isa);
    }
  }
  RuntimeConfig::SetThreads(1);
}

TEST(PassPipelineTest, QuantizedOutputsIdenticalWithPassesOnAndOff) {
  // In the quantized paths the passes move *where* identical work happens
  // (weights fold at compile time, codes pass through layer boundaries),
  // so all-on and all-off must still agree bit for bit.
  Rng rng(51);
  Sequential net = MakeMlp(16, {48, 32}, 4);
  net.Init(&rng);
  Tensor x({8, 16});
  x.FillGaussian(&rng, 1.0f);
  for (EngineNumeric numeric : {EngineNumeric::kInt8, EngineNumeric::kInt4}) {
    EngineConfig config;
    config.max_batch = 8;
    config.numeric = numeric;
    Tensor ref;
    {
      PassEnvOverride env("none");
      auto compiled = InferenceEngine::Compile(net, {16}, config);
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      ref = std::move(std::move(compiled).value().Predict(x)).value();
    }
    for (const char* passes : {"all", "fuse,quant_elim", "fold"}) {
      PassEnvOverride env(passes);
      auto compiled = InferenceEngine::Compile(net, {16}, config);
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      InferenceEngine engine = std::move(compiled).value();
      for (int threads : {1, 2, 8}) {
        RuntimeConfig::SetThreads(threads);
        const Tensor y = std::move(engine.Predict(x)).value();
        EXPECT_TRUE(BitwiseEqual(y, ref))
            << "numeric="
            << (numeric == EngineNumeric::kInt8 ? "int8" : "int4")
            << " passes=" << passes << " threads=" << threads;
      }
    }
  }
  RuntimeConfig::SetThreads(1);
}

TEST(PassPipelineTest, FusionAbsorbsReluNodesIntoProducers) {
  Rng rng(52);
  Sequential net = MakeMlp(16, {32, 24}, 4);  // 3 dense + 2 relu layers
  net.Init(&rng);
  {
    PassEnvOverride env("none");
    auto compiled = InferenceEngine::Compile(net, {16}, EngineConfig{8});
    ASSERT_TRUE(compiled.ok());
    const InferenceEngine engine = std::move(compiled).value();
    EXPECT_EQ(engine.graph_node_count(), 5);
    EXPECT_EQ(engine.step_count(), 5);
    EXPECT_EQ(engine.pass_stats().fused, 0);
    EXPECT_FALSE(engine.pass_config().fuse);
  }
  {
    PassEnvOverride env("all");
    auto compiled = InferenceEngine::Compile(net, {16}, EngineConfig{8});
    ASSERT_TRUE(compiled.ok());
    const InferenceEngine engine = std::move(compiled).value();
    // Both relus fold into their dense producers; all three dense nodes
    // carry a fused epilogue.
    EXPECT_EQ(engine.graph_node_count(), 3);
    EXPECT_EQ(engine.step_count(), 3);
    EXPECT_EQ(engine.pass_stats().fused, 3);
  }
}

TEST(PassPipelineTest, QuantElimRequiresAdjacencyThroughFusion) {
  Rng rng(53);
  Sequential net = MakeMlp(16, {48, 32}, 4);
  net.Init(&rng);
  EngineConfig config;
  config.max_batch = 8;
  config.numeric = EngineNumeric::kInt8;
  {
    // Without fusion the relu between quantized denses blocks elision:
    // its fp32 output must materialize, so codes cannot pass through.
    PassEnvOverride env("quant_elim");
    auto compiled = InferenceEngine::Compile(net, {16}, config);
    ASSERT_TRUE(compiled.ok());
    EXPECT_EQ(std::move(compiled).value().pass_stats().quant_elided, 0);
  }
  {
    // Fusion runs first and absorbs the relus, making the dense layers
    // adjacent: both interior boundaries elide their quant/dequant pair.
    PassEnvOverride env("fuse,quant_elim");
    auto compiled = InferenceEngine::Compile(net, {16}, config);
    ASSERT_TRUE(compiled.ok());
    EXPECT_EQ(std::move(compiled).value().pass_stats().quant_elided, 2);
  }
}

TEST(PassPipelineTest, ConstantFoldingQuantizesWeightsAtCompileTime) {
  Rng rng(54);
  Sequential net = MakeMlp(16, {48}, 4);
  net.Init(&rng);
  EngineConfig config;
  config.max_batch = 8;
  config.numeric = EngineNumeric::kInt8;
  PassEnvOverride env("fold");
  auto compiled = InferenceEngine::Compile(net, {16}, config);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(std::move(compiled).value().pass_stats().folded, 2);
}

TEST(PassPipelineTest, LivenessPackingShrinksWorkspaceOnFunnelMlp) {
  // A funnel MLP (widths strictly shrinking) is where first-fit liveness
  // packing beats the ping-pong pair: the pair charges 2x the *widest*
  // activation, while packing overlaps wide early buffers with the
  // narrow late ones.
  Rng rng(55);
  Sequential net = MakeMlp(512, {256, 128, 64, 32}, 8);  // 9 layers
  net.Init(&rng);
  PassEnvOverride env("all");
  auto compiled = InferenceEngine::Compile(net, {512}, EngineConfig{8});
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();
  EXPECT_LT(engine.workspace_bytes(), engine.unpacked_workspace_bytes())
      << "packed=" << engine.workspace_bytes()
      << " unpacked=" << engine.unpacked_workspace_bytes();

  // And packing must never *grow* the plan on any model.
  PassEnvOverride env_off("fuse,quant_elim,fold");
  auto unpacked = InferenceEngine::Compile(net, {512}, EngineConfig{8});
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(std::move(unpacked).value().workspace_bytes(),
            engine.unpacked_workspace_bytes());
}

TEST(PassPipelineTest, DlsysPassesEnvOverridesConfig) {
  Rng rng(56);
  Sequential net = MakeMlp(16, {32}, 4);
  net.Init(&rng);
  EngineConfig config;
  config.max_batch = 8;
  config.passes = PassConfig{false, false, false, false};
  {
    PassEnvOverride env("all");  // env wins over the all-off config
    auto compiled = InferenceEngine::Compile(net, {16}, config);
    ASSERT_TRUE(compiled.ok());
    const InferenceEngine engine = std::move(compiled).value();
    EXPECT_TRUE(engine.pass_config().fuse);
    EXPECT_TRUE(engine.pass_config().pack);
    EXPECT_GT(engine.pass_stats().fused, 0);
  }
  {
    PassEnvOverride env("fuse");  // single-pass spelling
    auto compiled = InferenceEngine::Compile(net, {16}, EngineConfig{8});
    ASSERT_TRUE(compiled.ok());
    const InferenceEngine engine = std::move(compiled).value();
    EXPECT_TRUE(engine.pass_config().fuse);
    EXPECT_FALSE(engine.pass_config().quant_elim);
    EXPECT_FALSE(engine.pass_config().fold);
    EXPECT_FALSE(engine.pass_config().pack);
  }
  {
    PassEnvOverride env(nullptr);  // no env: the config stands
    auto compiled = InferenceEngine::Compile(net, {16}, config);
    ASSERT_TRUE(compiled.ok());
    EXPECT_FALSE(std::move(compiled).value().pass_config().fuse);
  }
}

TEST(PassPipelineTest, ParsePassListSpellings) {
  PassConfig c;
  EXPECT_TRUE(infer::ParsePassList("all", &c).ok());
  EXPECT_TRUE(c.fuse && c.quant_elim && c.fold && c.pack);
  EXPECT_TRUE(infer::ParsePassList("none", &c).ok());
  EXPECT_FALSE(c.fuse || c.quant_elim || c.fold || c.pack);
  EXPECT_TRUE(infer::ParsePassList("fold,pack", &c).ok());
  EXPECT_FALSE(c.fuse);
  EXPECT_FALSE(c.quant_elim);
  EXPECT_TRUE(c.fold);
  EXPECT_TRUE(c.pack);
  EXPECT_FALSE(infer::ParsePassList("warp_drive", &c).ok());
  EXPECT_FALSE(infer::ParsePassList("fuse,,pack", &c).ok());
}

#if DLSYS_OBS
TEST(PassPipelineTest, CompileExportsWorkspaceAndGraphGauges) {
  Rng rng(57);
  Sequential net = MakeMlp(16, {32, 24}, 4);
  net.Init(&rng);
  PassEnvOverride env("all");
  auto compiled = InferenceEngine::Compile(net, {16}, EngineConfig{8});
  ASSERT_TRUE(compiled.ok());
  const InferenceEngine engine = std::move(compiled).value();
  obs::CounterRegistry& reg = obs::CounterRegistry::Global();
  EXPECT_EQ(reg.gauge("infer.workspace_bytes")->Value(),
            engine.workspace_bytes());
  EXPECT_EQ(reg.gauge("infer.graph.nodes")->Value(),
            engine.graph_node_count());
  EXPECT_EQ(reg.gauge("infer.graph.fused")->Value(),
            engine.pass_stats().fused);
}
#endif  // DLSYS_OBS

// ------------------------------------------------- liveness packing unit

TEST(PackLiveRangesTest, DisjointLifetimesShareOffsets) {
  // Two buffers alive at different steps first-fit into the same bytes.
  std::vector<int64_t> offsets;
  const int64_t total = infer::PackLiveRanges(
      {{256, 0, 1}, {256, 2, 3}}, &offsets);
  ASSERT_EQ(offsets.size(), 2u);
  EXPECT_EQ(offsets[0], offsets[1]);
  EXPECT_EQ(total, 256);
}

TEST(PackLiveRangesTest, OverlappingLifetimesGetDisjointRanges) {
  std::vector<int64_t> offsets;
  const int64_t total = infer::PackLiveRanges(
      {{100, 0, 2}, {100, 1, 3}, {100, 3, 4}}, &offsets);
  ASSERT_EQ(offsets.size(), 3u);
  // 0 and 1 overlap at step 1-2; 1 and 2 overlap at step 3; 0 and 2 are
  // disjoint, so the third buffer reuses the first's offset.
  EXPECT_NE(offsets[0], offsets[1]);
  EXPECT_EQ(offsets[2], offsets[0]);
  EXPECT_EQ(offsets[1] % 64, 0);
  EXPECT_EQ(total, 256);  // two 64-aligned 100-byte lanes
}

TEST(PackLiveRangesTest, OffsetsAreAlwaysAligned) {
  std::vector<int64_t> offsets;
  infer::PackLiveRanges({{1, 0, 9}, {65, 0, 9}, {128, 0, 9}, {0, 5, 5}},
                        &offsets);
  for (const int64_t off : offsets) EXPECT_EQ(off % 64, 0) << off;
}

// ------------------------------------------------- arena move + placement

TEST(TensorArenaTest, MoveTransfersCommittedStorage) {
  TensorArena arena;
  const TensorArena::BufferId id = arena.ReserveFloats(32);
  arena.Commit();
  float* data = arena.Floats(id);
  for (int i = 0; i < 32; ++i) data[i] = static_cast<float>(i);
  const int64_t bytes = arena.total_bytes();

  TensorArena moved(std::move(arena));
  EXPECT_TRUE(moved.committed());
  EXPECT_EQ(moved.total_bytes(), bytes);
  EXPECT_EQ(moved.Floats(id), data);  // same backing storage, same bits
  for (int i = 0; i < 32; ++i) EXPECT_EQ(data[i], static_cast<float>(i));

  TensorArena assigned;
  assigned.ReserveInt8s(16);
  assigned.Commit();
  assigned = std::move(moved);
  EXPECT_EQ(assigned.Floats(id), data);
  EXPECT_EQ(assigned.total_bytes(), bytes);
}

TEST(TensorArenaTest, PlacedBuffersResolveAtTheirOffsets) {
  TensorArena arena;
  const TensorArena::BufferId a = arena.PlaceFloats(0, 16, 0, 1);
  const TensorArena::BufferId b = arena.PlaceInt8s(64, 100, 0, 1);
  const TensorArena::BufferId c = arena.PlaceFloats(0, 16, 2, 3);  // reuse
  arena.Commit();
  uint8_t* base = reinterpret_cast<uint8_t*>(arena.Floats(a));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(base) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uint8_t*>(arena.Int8s(b)), base + 64);
  EXPECT_EQ(arena.Floats(c), arena.Floats(a));  // disjoint lifetimes alias
  EXPECT_GE(arena.total_bytes(), 64 + 100);
}

TEST(TensorArenaDeathTest, OverlappingLifetimesAtSameBytesAbort) {
  TensorArena arena;
  arena.PlaceFloats(0, 16, 0, 2);
  arena.PlaceFloats(0, 16, 1, 3);  // lifetimes intersect at steps 1-2
  EXPECT_DEATH(arena.Commit(), "overlapping-lifetime");
}

TEST(TensorArenaDeathTest, MisalignedPlaceAborts) {
  TensorArena arena;
  EXPECT_DEATH(arena.PlaceFloats(32, 16, 0, 1), "align");
}

}  // namespace
}  // namespace dlsys
