#include <gtest/gtest.h>

#include "src/fairness/loan_data.h"
#include "src/fairness/metrics.h"
#include "src/fairness/mitigation.h"
#include "src/nn/layers.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace dlsys {
namespace {

// ------------------------------------------------------------- Metrics

TEST(FairnessMetricsTest, RejectsBadInput) {
  EXPECT_FALSE(AuditFairness({1}, {1, 0}, {0, 1}).ok());
  EXPECT_FALSE(AuditFairness({}, {}, {}).ok());
  EXPECT_FALSE(AuditFairness({2}, {1}, {0}).ok());  // non-binary
}

TEST(FairnessMetricsTest, PerfectlyFairPredictor) {
  // Identical distributions in both groups.
  std::vector<int64_t> pred = {1, 0, 1, 0, 1, 0, 1, 0};
  std::vector<int64_t> label = {1, 0, 1, 0, 1, 0, 1, 0};
  std::vector<int64_t> group = {0, 0, 0, 0, 1, 1, 1, 1};
  auto report = AuditFairness(pred, label, group);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->DemographicParityGap(), 0.0);
  EXPECT_DOUBLE_EQ(report->DisparateImpactRatio(), 1.0);
  EXPECT_DOUBLE_EQ(report->EqualizedOddsGap(), 0.0);
  EXPECT_DOUBLE_EQ(report->OverallAccuracy(), 1.0);
}

TEST(FairnessMetricsTest, FullyBiasedPredictor) {
  // Group 1 never approved despite identical labels.
  std::vector<int64_t> pred = {1, 1, 0, 0, 0, 0, 0, 0};
  std::vector<int64_t> label = {1, 1, 0, 0, 1, 1, 0, 0};
  std::vector<int64_t> group = {0, 0, 0, 0, 1, 1, 1, 1};
  auto report = AuditFairness(pred, label, group);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->positive_rate[0], 0.5);
  EXPECT_DOUBLE_EQ(report->positive_rate[1], 0.0);
  EXPECT_DOUBLE_EQ(report->DisparateImpactRatio(), 0.0);
  EXPECT_DOUBLE_EQ(report->EqualOpportunityGap(), 1.0);
}

TEST(FairnessMetricsTest, KnownRatesComputeExactly) {
  // Group 0: TP=2 FP=1 TN=1 FN=0 -> tpr=1, fpr=.5, pos=.75
  // Group 1: TP=1 FP=0 TN=2 FN=1 -> tpr=.5, fpr=0, pos=.25
  std::vector<int64_t> pred = {1, 1, 1, 0, 1, 0, 0, 0};
  std::vector<int64_t> label = {1, 1, 0, 0, 1, 1, 0, 0};
  std::vector<int64_t> group = {0, 0, 0, 0, 1, 1, 1, 1};
  auto report = AuditFairness(pred, label, group);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->tpr[0], 1.0);
  EXPECT_DOUBLE_EQ(report->tpr[1], 0.5);
  EXPECT_DOUBLE_EQ(report->fpr[0], 0.5);
  EXPECT_DOUBLE_EQ(report->fpr[1], 0.0);
  EXPECT_DOUBLE_EQ(report->DemographicParityGap(), 0.5);
  EXPECT_NEAR(report->DisparateImpactRatio(), 1.0 / 3.0, 1e-12);
}

// ------------------------------------------------------------ Loan data

TEST(LoanDataTest, LatentIsGroupNeutralButLabelsAreBiased) {
  LoanDataConfig config;
  config.n = 8000;
  config.bias_strength = 0.5;
  LoanData loans = MakeLoanData(config);
  // Fair labels: similar positive rates across groups.
  double fair_pos[2] = {0, 0};
  double obs_pos[2] = {0, 0};
  double count[2] = {0, 0};
  for (size_t i = 0; i < loans.group.size(); ++i) {
    count[loans.group[i]] += 1;
    fair_pos[loans.group[i]] += static_cast<double>(loans.fair_label[i]);
    obs_pos[loans.group[i]] += static_cast<double>(loans.data.y[i]);
  }
  const double fair_gap =
      std::abs(fair_pos[0] / count[0] - fair_pos[1] / count[1]);
  const double obs_gap =
      std::abs(obs_pos[0] / count[0] - obs_pos[1] / count[1]);
  EXPECT_LT(fair_gap, 0.05) << "fair labels must be group-neutral";
  EXPECT_GT(obs_gap, 0.15) << "observed labels must carry the bias";
}

TEST(LoanDataTest, ZeroBiasGivesNeutralObservedLabels) {
  LoanDataConfig config;
  config.n = 8000;
  config.bias_strength = 0.0;
  LoanData loans = MakeLoanData(config);
  double obs_pos[2] = {0, 0}, count[2] = {0, 0};
  for (size_t i = 0; i < loans.group.size(); ++i) {
    count[loans.group[i]] += 1;
    obs_pos[loans.group[i]] += static_cast<double>(loans.data.y[i]);
  }
  EXPECT_LT(std::abs(obs_pos[0] / count[0] - obs_pos[1] / count[1]), 0.05);
}

// ----------------------------------------------------------- Reweighing

TEST(ReweighingTest, WeightsEqualizeJointDistribution) {
  // 3:1 group imbalance with label skew.
  std::vector<int64_t> labels = {1, 1, 1, 0, 1, 0, 0, 0};
  std::vector<int64_t> group = {0, 0, 0, 0, 1, 1, 1, 1};
  auto weights = ReweighingWeights(labels, group);
  ASSERT_TRUE(weights.ok());
  // Weighted joint should satisfy independence: check one cell.
  // P(g=0)=0.5, P(y=1)=0.5, P(g=0,y=1)=3/8 -> w = 0.25/0.375 = 2/3.
  EXPECT_NEAR((*weights)[0], 2.0 / 3.0, 1e-9);
  // P(g=1,y=1)=1/8 -> w = 0.25/0.125 = 2.
  EXPECT_NEAR((*weights)[4], 2.0, 1e-9);
}

TEST(ReweighingTest, ResampledDataReducesLabelBias) {
  LoanDataConfig config;
  config.n = 6000;
  config.bias_strength = 0.5;
  LoanData loans = MakeLoanData(config);
  auto reweighed = ReweighDataset(loans.data, loans.group, 99);
  ASSERT_TRUE(reweighed.ok());
  EXPECT_EQ(reweighed->data.size(), loans.data.size());
  double pos[2] = {0, 0}, count[2] = {0, 0};
  for (size_t i = 0; i < reweighed->group.size(); ++i) {
    count[reweighed->group[i]] += 1;
    pos[reweighed->group[i]] +=
        static_cast<double>(reweighed->data.y[i]);
  }
  EXPECT_LT(std::abs(pos[0] / count[0] - pos[1] / count[1]), 0.06)
      << "reweighing must roughly equalize group positive rates";
}

// --------------------------------------------------- End-to-end pipeline

struct PipelineResult {
  FairnessReport report;
  double accuracy_vs_fair;
};

PipelineResult TrainAndAudit(const LoanData& train, const LoanData& test,
                             bool reweigh, double adv_lambda,
                             int64_t ablate_k) {
  Sequential net = MakeMlp(5, {16}, 2);
  Rng rng(7);
  net.Init(&rng);
  if (adv_lambda > 0.0) {
    AdversarialConfig config;
    config.lambda = adv_lambda;
    config.epochs = 25;
    DLSYS_CHECK(
        AdversarialDebias(&net, train.data, train.group, config).ok(),
        "adversarial debias failed");
  } else {
    Dataset train_data = train.data;
    std::vector<int64_t> group = train.group;
    if (reweigh) {
      auto rw = ReweighDataset(train.data, train.group, 55);
      DLSYS_CHECK(rw.ok(), "reweigh failed");
      train_data = std::move(rw->data);
      group = rw->group;
    }
    Sgd opt(0.05, 0.9);
    TrainConfig tc;
    tc.epochs = 25;
    Train(&net, &opt, train_data, tc);
  }
  if (ablate_k > 0) {
    DLSYS_CHECK(
        AblateCorrelatedNeurons(&net, train.data, train.group, ablate_k).ok(),
        "ablation failed");
  }
  std::vector<int64_t> pred = Predict(&net, test.data.x);
  auto report = AuditFairness(pred, test.fair_label, test.group);
  DLSYS_CHECK(report.ok(), "audit failed");
  int64_t hits = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == test.fair_label[i]) ++hits;
  }
  return {*report, static_cast<double>(hits) /
                       static_cast<double>(pred.size())};
}

class FairnessPipeline : public ::testing::Test {
 protected:
  static LoanData Train() {
    LoanDataConfig config;
    config.n = 4000;
    config.bias_strength = 0.6;
    config.seed = 1;
    return MakeLoanData(config);
  }
  static LoanData Test() {
    LoanDataConfig config;
    config.n = 2000;
    config.bias_strength = 0.6;
    config.seed = 2;
    return MakeLoanData(config);
  }
};

TEST_F(FairnessPipeline, BiasPropagatesFromDataToModel) {
  PipelineResult biased = TrainAndAudit(Train(), Test(), false, 0.0, 0);
  EXPECT_GT(biased.report.DemographicParityGap(), 0.08)
      << "a model trained on biased labels must show a parity gap vs the "
         "fair ground truth";
  EXPECT_GT(biased.accuracy_vs_fair, 0.7);
}

TEST_F(FairnessPipeline, ReweighingShrinksTheGap) {
  PipelineResult biased = TrainAndAudit(Train(), Test(), false, 0.0, 0);
  PipelineResult reweighed = TrainAndAudit(Train(), Test(), true, 0.0, 0);
  EXPECT_LT(reweighed.report.DemographicParityGap(),
            biased.report.DemographicParityGap());
  EXPECT_GT(reweighed.accuracy_vs_fair, biased.accuracy_vs_fair - 0.05);
}

TEST_F(FairnessPipeline, AdversarialDebiasingShrinksTheGap) {
  PipelineResult biased = TrainAndAudit(Train(), Test(), false, 0.0, 0);
  PipelineResult adv = TrainAndAudit(Train(), Test(), false, 0.5, 0);
  EXPECT_LT(adv.report.DemographicParityGap(),
            biased.report.DemographicParityGap() + 0.02);
  EXPECT_GT(adv.accuracy_vs_fair, 0.6);
}

TEST_F(FairnessPipeline, AblationTradesAccuracyForFairness) {
  PipelineResult biased = TrainAndAudit(Train(), Test(), false, 0.0, 0);
  PipelineResult ablated = TrainAndAudit(Train(), Test(), false, 0.0, 4);
  // Ablating group-correlated neurons should not worsen the gap much and
  // typically shrinks it, at some accuracy cost.
  EXPECT_LT(ablated.report.DemographicParityGap(),
            biased.report.DemographicParityGap() + 0.03);
}

TEST(AblationTest, RejectsBadShapes) {
  Sequential tiny;
  tiny.Emplace<Dense>(4, 2);
  Rng rng(3);
  tiny.Init(&rng);
  Dataset data;
  data.x = Tensor({4, 4});
  data.y = {0, 1, 0, 1};
  std::vector<int64_t> group = {0, 1, 0, 1};
  EXPECT_FALSE(AblateCorrelatedNeurons(&tiny, data, group, 1).ok());
}

TEST(AdversarialTest, LambdaZeroStillLearns) {
  LoanDataConfig config;
  config.n = 1500;
  LoanData loans = MakeLoanData(config);
  Sequential net = MakeMlp(5, {8}, 2);
  Rng rng(5);
  net.Init(&rng);
  AdversarialConfig adv_config;
  adv_config.lambda = 0.0;
  adv_config.epochs = 15;
  ASSERT_TRUE(
      AdversarialDebias(&net, loans.data, loans.group, adv_config).ok());
  std::vector<int64_t> pred = Predict(&net, loans.data.x);
  int64_t hits = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == loans.data.y[i]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / pred.size(), 0.75);
}

}  // namespace
}  // namespace dlsys
