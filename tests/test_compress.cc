#include <gtest/gtest.h>

#include <cmath>

#include "src/compress/distill.h"
#include "src/compress/pruning.h"
#include "src/compress/quantization.h"
#include "src/data/synthetic.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace dlsys {
namespace {

// ------------------------------------------------------------ Quantize

TEST(QuantizationTest, RejectsBadBits) {
  Tensor t({4}, 1.0f);
  EXPECT_FALSE(Quantize(t, QuantizerKind::kUniform, 0).ok());
  EXPECT_FALSE(Quantize(t, QuantizerKind::kUniform, 17).ok());
  EXPECT_TRUE(Quantize(t, QuantizerKind::kUniform, 1).ok());
}

TEST(QuantizationTest, RejectsEmptyTensor) {
  Tensor t;
  EXPECT_FALSE(Quantize(t, QuantizerKind::kUniform, 8).ok());
}

// Property sweep: round-trip error of the uniform quantizer is bounded by
// half the step size, for every bit width.
class UniformQuantSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(UniformQuantSweep, RoundTripErrorBounded) {
  const int64_t bits = GetParam();
  Rng rng(42 + static_cast<uint64_t>(bits));
  Tensor t({500});
  t.FillGaussian(&rng, 1.0f);
  auto q = Quantize(t, QuantizerKind::kUniform, bits);
  ASSERT_TRUE(q.ok());
  Tensor deq = q->Dequantize();
  float lo = t[0], hi = t[0];
  for (int64_t i = 0; i < t.size(); ++i) {
    lo = std::min(lo, t[i]);
    hi = std::max(hi, t[i]);
  }
  const float step =
      (hi - lo) / static_cast<float>((int64_t{1} << bits) - 1);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::abs(t[i] - deq[i]), step * 0.5f + 1e-6f)
        << "bits=" << bits << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, UniformQuantSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 16));

// Property sweep: k-means never does worse (in MSE) than uniform seeding.
class KMeansSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(KMeansSweep, KMeansAtLeastAsGoodAsUniform) {
  const int64_t bits = GetParam();
  Rng rng(7);
  Tensor t({1000});
  t.FillGaussian(&rng, 2.0f);
  auto qu = Quantize(t, QuantizerKind::kUniform, bits);
  auto qk = Quantize(t, QuantizerKind::kKMeans, bits);
  ASSERT_TRUE(qu.ok() && qk.ok());
  auto mse = [&](const QuantizedTensor& q) {
    Tensor d = q.Dequantize();
    double s = 0.0;
    for (int64_t i = 0; i < t.size(); ++i) {
      s += (t[i] - d[i]) * (t[i] - d[i]);
    }
    return s / t.size();
  };
  EXPECT_LE(mse(*qk), mse(*qu) + 1e-9) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Bits, KMeansSweep, ::testing::Values(1, 2, 4, 6));

TEST(QuantizationTest, BinaryUsesOneBitAndSignStructure) {
  Tensor t({6}, {-3.0f, -1.0f, -2.0f, 1.0f, 2.0f, 3.0f});
  auto q = Quantize(t, QuantizerKind::kBinary, 8);  // bits ignored
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->bits, 1);
  EXPECT_EQ(q->codebook.size(), 2u);
  Tensor d = q->Dequantize();
  // alpha = mean(|w|) = 2.
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(d[i], -2.0f);
  for (int64_t i = 3; i < 6; ++i) EXPECT_FLOAT_EQ(d[i], 2.0f);
}

TEST(QuantizationTest, PackedBytesShrinkWithBits) {
  Rng rng(9);
  Tensor t({4096});
  t.FillGaussian(&rng, 1.0f);
  auto q8 = Quantize(t, QuantizerKind::kUniform, 8);
  auto q2 = Quantize(t, QuantizerKind::kUniform, 2);
  ASSERT_TRUE(q8.ok() && q2.ok());
  EXPECT_LT(q2->PackedBytes(), q8->PackedBytes());
  EXPECT_LT(q8->PackedBytes(), t.bytes());
}

TEST(QuantizationTest, HuffmanNeverBeatsEntropyNorExceedsPacked) {
  Rng rng(10);
  Tensor t({8192});
  // Skewed data: Huffman should beat fixed-width packing clearly.
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = rng.Bernoulli(0.9) ? 0.0f : static_cast<float>(rng.Gaussian());
  }
  auto q = Quantize(t, QuantizerKind::kKMeans, 4);
  ASSERT_TRUE(q.ok());
  EXPECT_LT(q->HuffmanBytes(), q->PackedBytes());
}

TEST(HuffmanTest, KnownSmallCase) {
  // Frequencies {1, 1, 2}: optimal code lengths {2, 2, 1} -> total 6 bits.
  EXPECT_EQ(HuffmanBitLength({1, 1, 2}), 6);
  // Single symbol: 1 bit per occurrence.
  EXPECT_EQ(HuffmanBitLength({5}), 5);
  EXPECT_EQ(HuffmanBitLength({}), 0);
  EXPECT_EQ(HuffmanBitLength({0, 0, 7}), 7);
}

TEST(QuantizationTest, NetworkQuantizationKeepsAccuracyAt8Bits) {
  Rng rng(17);
  Dataset data = MakeGaussianBlobs(500, 6, 3, 4.0, &rng);
  auto split = Split(data, 0.8);
  Sequential net = MakeMlp(6, {24}, 3);
  net.Init(&rng);
  Sgd opt(0.05, 0.9);
  TrainConfig config;
  config.epochs = 12;
  Train(&net, &opt, split.train, config);
  const double acc_before = Evaluate(&net, split.test).accuracy;
  auto nq = QuantizeNetwork(&net, QuantizerKind::kUniform, 8);
  ASSERT_TRUE(nq.ok());
  const double acc_after = Evaluate(&net, split.test).accuracy;
  EXPECT_GT(acc_before, 0.9);
  EXPECT_GT(acc_after, acc_before - 0.03) << "8-bit uniform should be benign";
  // 8-bit codes + affine codebooks: close to a 4x size reduction.
  EXPECT_LT(nq->packed_bytes, nq->original_bytes / 3);
}

// -------------------------------------------------------------- Pruning

TEST(PruningTest, MaskStartsDense) {
  Rng rng(1);
  Sequential net = MakeMlp(4, {8}, 2);
  net.Init(&rng);
  PruneMask mask(&net);
  EXPECT_DOUBLE_EQ(mask.Sparsity(), 0.0);
  EXPECT_EQ(mask.NumAlive(), 4 * 8 + 8 * 2);
}

// Property sweep: achieved sparsity tracks the request across criteria.
struct PruneCase {
  PruneCriterion criterion;
  double sparsity;
};

class PruneSweep : public ::testing::TestWithParam<PruneCase> {};

TEST_P(PruneSweep, AchievesRequestedSparsity) {
  const PruneCase c = GetParam();
  Rng rng(3);
  Dataset data = MakeGaussianBlobs(128, 6, 3, 3.0, &rng);
  Sequential net = MakeMlp(6, {32}, 3);
  net.Init(&rng);
  auto mask = BuildPruneMask(&net, c.criterion, c.sparsity, &data, &rng);
  ASSERT_TRUE(mask.ok());
  EXPECT_NEAR(mask->Sparsity(), c.sparsity, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    CriteriaAndLevels, PruneSweep,
    ::testing::Values(PruneCase{PruneCriterion::kMagnitude, 0.3},
                      PruneCase{PruneCriterion::kMagnitude, 0.7},
                      PruneCase{PruneCriterion::kMagnitude, 0.9},
                      PruneCase{PruneCriterion::kLossSensitivity, 0.5},
                      PruneCase{PruneCriterion::kLossSensitivity, 0.8},
                      PruneCase{PruneCriterion::kRandom, 0.5},
                      PruneCase{PruneCriterion::kRandom, 0.9}));

TEST(PruningTest, MagnitudePrunesSmallestWeights) {
  Rng rng(4);
  Sequential net = MakeMlp(2, {2}, 2);
  net.Init(&rng);
  // Make one weight clearly tiny.
  Tensor* w = net.Params()[0];
  w->Fill(1.0f);
  (*w)[0] = 1e-6f;
  auto mask = BuildPruneMask(&net, PruneCriterion::kMagnitude, 0.1, nullptr,
                             nullptr);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->masks()[0][0], 0.0f);
}

TEST(PruningTest, ApplyZeroesWeights) {
  Rng rng(5);
  Sequential net = MakeMlp(4, {8}, 2);
  net.Init(&rng);
  auto mask =
      BuildPruneMask(&net, PruneCriterion::kMagnitude, 0.5, nullptr, nullptr);
  ASSERT_TRUE(mask.ok());
  mask->Apply(&net);
  int64_t zeros = 0, total = 0;
  for (Tensor* p : net.Params()) {
    if (p->rank() < 2) continue;
    total += p->size();
    for (int64_t j = 0; j < p->size(); ++j) {
      if ((*p)[j] == 0.0f) ++zeros;
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / total, 0.5, 0.03);
}

TEST(PruningTest, RejectsInvalidSparsity) {
  Rng rng(6);
  Sequential net = MakeMlp(2, {2}, 2);
  net.Init(&rng);
  EXPECT_FALSE(
      BuildPruneMask(&net, PruneCriterion::kMagnitude, 1.0, nullptr, nullptr)
          .ok());
  EXPECT_FALSE(
      BuildPruneMask(&net, PruneCriterion::kMagnitude, -0.1, nullptr, nullptr)
          .ok());
}

TEST(PruningTest, LossSensitivityNeedsCalibration) {
  Rng rng(7);
  Sequential net = MakeMlp(2, {2}, 2);
  net.Init(&rng);
  EXPECT_FALSE(BuildPruneMask(&net, PruneCriterion::kLossSensitivity, 0.5,
                              nullptr, nullptr)
                   .ok());
}

TEST(PruningTest, FilterPruningRemovesWholeColumns) {
  Rng rng(8);
  Sequential net = MakeMlp(4, {8}, 2);
  net.Init(&rng);
  auto mask = BuildFilterPruneMask(&net, 0.4);
  ASSERT_TRUE(mask.ok());
  // In the first weight matrix (4 x 8), every column must be all-kept or
  // all-pruned.
  const Tensor& m = mask->masks()[0];
  for (int64_t c = 0; c < 8; ++c) {
    const float first = m[c];
    for (int64_t r = 1; r < 4; ++r) {
      EXPECT_EQ(m[r * 8 + c], first) << "column " << c << " not structured";
    }
  }
  EXPECT_GE(mask->Sparsity(), 0.4);
}

TEST(PruningTest, MaskedFinetuneKeepsPrunedWeightsZero) {
  Rng rng(9);
  Dataset data = MakeGaussianBlobs(256, 6, 3, 3.0, &rng);
  Sequential net = MakeMlp(6, {16}, 3);
  net.Init(&rng);
  auto mask =
      BuildPruneMask(&net, PruneCriterion::kMagnitude, 0.6, nullptr, nullptr);
  ASSERT_TRUE(mask.ok());
  mask->Apply(&net);
  Sgd opt(0.05, 0.9);
  TrainConfig config;
  config.epochs = 3;
  config.on_step = [&](int64_t, int64_t, double) {
    // The standard sparse-finetune recipe: re-zero after each step.
    mask->Apply(&net);
  };
  Train(&net, &opt, data, config);
  // Every masked coordinate must still be zero.
  size_t wi = 0;
  for (Tensor* p : net.Params()) {
    if (p->rank() < 2) continue;
    const Tensor& m = mask->masks()[wi++];
    for (int64_t j = 0; j < p->size(); ++j) {
      if (m[j] == 0.0f) {
        ASSERT_EQ((*p)[j], 0.0f);
      }
    }
  }
}

TEST(PruningTest, SparseBytesShrinkWithSparsity) {
  Rng rng(10);
  Sequential net = MakeMlp(16, {64}, 4);
  net.Init(&rng);
  auto m30 =
      BuildPruneMask(&net, PruneCriterion::kMagnitude, 0.3, nullptr, nullptr);
  auto m90 =
      BuildPruneMask(&net, PruneCriterion::kMagnitude, 0.9, nullptr, nullptr);
  ASSERT_TRUE(m30.ok() && m90.ok());
  EXPECT_LT(SparseModelBytes(&net, *m90), SparseModelBytes(&net, *m30));
}

// ---------------------------------------------------------- Distillation

TEST(DistillTest, RejectsBadConfig) {
  Rng rng(11);
  Dataset data = MakeGaussianBlobs(64, 4, 2, 3.0, &rng);
  Sequential teacher = MakeMlp(4, {8}, 2);
  Sequential student = MakeMlp(4, {4}, 2);
  teacher.Init(&rng);
  student.Init(&rng);
  Sgd opt(0.05);
  DistillConfig config;
  config.temperature = 0.0;
  EXPECT_FALSE(Distill(&teacher, &student, &opt, data, config).ok());
  config.temperature = 2.0;
  config.alpha = 1.5;
  EXPECT_FALSE(Distill(&teacher, &student, &opt, data, config).ok());
}

TEST(DistillTest, StudentApproachesTeacherAccuracy) {
  Rng rng(12);
  Dataset data = MakeGaussianBlobs(800, 8, 4, 3.0, &rng);
  auto split = Split(data, 0.8);
  Sequential teacher = MakeMlp(8, {64, 64}, 4);
  teacher.Init(&rng);
  Sgd teacher_opt(0.05, 0.9);
  TrainConfig tc;
  tc.epochs = 20;
  Train(&teacher, &teacher_opt, split.train, tc);
  const double teacher_acc = Evaluate(&teacher, split.test).accuracy;
  ASSERT_GT(teacher_acc, 0.85);

  Sequential student = MakeMlp(8, {8}, 4);
  student.Init(&rng);
  Sgd student_opt(0.05, 0.9);
  DistillConfig config;
  config.epochs = 25;
  auto report = Distill(&teacher, &student, &student_opt, split.train, config);
  ASSERT_TRUE(report.ok());
  const double student_acc = Evaluate(&student, split.test).accuracy;
  EXPECT_GT(student_acc, teacher_acc - 0.1)
      << "distilled 8-unit student should track the 64x64 teacher";
  EXPECT_LT(student.ModelBytes(), teacher.ModelBytes() / 4);
}

TEST(DistillTest, PureSoftLossNeedsNoAccurateLabels) {
  // alpha=1: the student never sees hard labels, only the teacher.
  Rng rng(13);
  Dataset data = MakeGaussianBlobs(600, 6, 3, 4.0, &rng);
  auto split = Split(data, 0.8);
  Sequential teacher = MakeMlp(6, {32}, 3);
  teacher.Init(&rng);
  Sgd topt(0.05, 0.9);
  TrainConfig tc;
  tc.epochs = 15;
  Train(&teacher, &topt, split.train, tc);

  // Corrupt the labels; distillation should not care with alpha=1.
  Dataset corrupted = split.train;
  for (auto& y : corrupted.y) y = 0;
  Sequential student = MakeMlp(6, {12}, 3);
  student.Init(&rng);
  Sgd sopt(0.05, 0.9);
  DistillConfig config;
  config.alpha = 1.0;
  config.epochs = 20;
  ASSERT_TRUE(Distill(&teacher, &student, &sopt, corrupted, config).ok());
  EXPECT_GT(Evaluate(&student, split.test).accuracy, 0.8);
}

}  // namespace
}  // namespace dlsys
