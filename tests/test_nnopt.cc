#include "src/nnopt/morphnet.h"

#include <gtest/gtest.h>

#include "src/data/synthetic.h"

namespace dlsys {
namespace {

TEST(MlpFlopsTest, KnownValues) {
  // 4 -> 8 -> 2: 2*(4*8) + 2*(8*2) = 64 + 32 = 96.
  EXPECT_EQ(MlpFlops(4, {8}, 2), 96);
  EXPECT_EQ(MlpFlops(4, {8, 8}, 2), 64 + 128 + 32);
}

TEST(MorphNetTest, RejectsBadConfig) {
  Rng rng(1);
  Dataset data = MakeGaussianBlobs(100, 4, 2, 3.0, &rng);
  MorphConfig config;
  config.flop_budget = 0.0;
  EXPECT_FALSE(MorphNetOptimize(4, 2, {8}, data, data, config).ok());
  config.flop_budget = 1000;
  EXPECT_FALSE(MorphNetOptimize(4, 2, {}, data, data, config).ok());
  config.shrink_fraction = 1.5;
  EXPECT_FALSE(MorphNetOptimize(4, 2, {8}, data, data, config).ok());
}

TEST(MorphNetTest, RespectsFlopBudget) {
  Rng rng(2);
  Dataset data = MakeGaussianBlobs(600, 8, 4, 3.0, &rng);
  auto split = Split(data, 0.8);
  MorphConfig config;
  config.flop_budget = 2000;
  config.iterations = 2;
  config.train_epochs = 4;
  auto result = MorphNetOptimize(8, 4, {32, 32}, split.train, split.test,
                                 config);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(MlpFlops(8, result->widths, 4),
            static_cast<int64_t>(config.flop_budget * 1.15))
      << "final structure must respect the budget (within rounding)";
  EXPECT_EQ(result->trajectory.size(), 2u);
}

TEST(MorphNetTest, CapacityMigratesAcrossLayers) {
  // A task where the first layer matters more (high input dim): widths
  // should become non-uniform even though they start uniform.
  Rng rng(3);
  Dataset data = MakeGaussianBlobs(800, 16, 4, 2.0, &rng);
  auto split = Split(data, 0.8);
  MorphConfig config;
  config.flop_budget = static_cast<double>(MlpFlops(16, {24, 24}, 4));
  config.iterations = 3;
  config.train_epochs = 6;
  auto result = MorphNetOptimize(16, 4, {24, 24}, split.train, split.test,
                                 config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->widths.size(), 2u);
  // Accuracy at the end should be sensible.
  EXPECT_GT(result->trajectory.back(), 0.6);
}

TEST(MorphNetTest, ComparableOrBetterThanUniformBaseline) {
  Rng rng(4);
  Dataset data = MakeGaussianBlobs(1000, 16, 4, 2.0, &rng);
  auto split = Split(data, 0.8);
  MorphConfig config;
  config.flop_budget = static_cast<double>(MlpFlops(16, {20, 20}, 4));
  config.iterations = 3;
  config.train_epochs = 8;
  auto morph = MorphNetOptimize(16, 4, {20, 20}, split.train, split.test,
                                config);
  auto uniform = UniformScaleBaseline(16, 4, {20, 20}, split.train,
                                      split.test, config);
  ASSERT_TRUE(morph.ok() && uniform.ok());
  EXPECT_GT(morph->report.Get(metric::kAccuracy),
            uniform->report.Get(metric::kAccuracy) - 0.08)
      << "structure search must not badly lose to uniform scaling";
}

TEST(UniformBaselineTest, HitsBudget) {
  Rng rng(5);
  Dataset data = MakeGaussianBlobs(300, 8, 2, 3.0, &rng);
  MorphConfig config;
  config.flop_budget = 1500;
  config.train_epochs = 2;
  auto result = UniformScaleBaseline(8, 2, {64, 64}, data, data, config);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(MlpFlops(8, result->widths, 2), 1700);
}

}  // namespace
}  // namespace dlsys
