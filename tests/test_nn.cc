#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/nn/conv.h"
#include "src/nn/layers.h"
#include "src/nn/loss.h"
#include "src/nn/sequential.h"
#include "src/tensor/ops.h"

namespace dlsys {
namespace {

// ---------------------------------------------------------------------
// Finite-difference gradient checking across layer types (property-based
// sweep via TEST_P): analytic backward must match numeric gradients.
// ---------------------------------------------------------------------

// Builds a layer by name for the parameterized gradient check.
std::unique_ptr<Layer> MakeLayerByName(const std::string& kind) {
  if (kind == "dense") return std::make_unique<Dense>(5, 4);
  if (kind == "relu") return std::make_unique<ReLU>();
  if (kind == "sigmoid") return std::make_unique<Sigmoid>();
  if (kind == "tanh") return std::make_unique<Tanh>();
  if (kind == "batchnorm") return std::make_unique<BatchNorm1d>(5);
  return nullptr;
}

int64_t InputDimFor(const std::string& kind) {
  return kind == "dense" || kind == "batchnorm" ? 5 : 5;
}

// Scalar objective: sum of squares of layer output. Uses the training
// path (kCache) so batch-statistic layers evaluate the same function the
// analytic backward differentiates.
double Objective(Layer* layer, const Tensor& x) {
  Tensor y = layer->Forward(x, CacheMode::kCache);
  double s = 0.0;
  for (int64_t i = 0; i < y.size(); ++i) {
    s += 0.5 * static_cast<double>(y[i]) * y[i];
  }
  return s;
}

class LayerGradCheck : public ::testing::TestWithParam<std::string> {};

TEST_P(LayerGradCheck, InputGradientMatchesFiniteDifference) {
  const std::string kind = GetParam();
  auto layer = MakeLayerByName(kind);
  ASSERT_NE(layer, nullptr);
  Rng rng(11);
  layer->Init(&rng);
  const int64_t n = 3, d = InputDimFor(kind);
  Tensor x({n, d});
  x.FillGaussian(&rng, 1.0f);
  // ReLU has a kink at 0: nudge values away from it.
  for (int64_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i]) < 0.05f) x[i] += 0.1f;
  }

  // Analytic gradient of 0.5*||y||^2 w.r.t. x is Backward(y).
  Tensor y = layer->Forward(x, CacheMode::kCache);
  layer->ZeroGrads();
  Tensor dx = layer->Backward(y);

  const float eps = 1e-3f;
  for (int64_t i = 0; i < x.size(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double fp = Objective(layer.get(), xp);
    const double fm = Objective(layer.get(), xm);
    const double numeric = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(dx[i], numeric, 5e-2)
        << kind << " input grad mismatch at " << i;
  }
}

TEST_P(LayerGradCheck, ParameterGradientMatchesFiniteDifference) {
  const std::string kind = GetParam();
  auto layer = MakeLayerByName(kind);
  ASSERT_NE(layer, nullptr);
  if (layer->Params().empty()) GTEST_SKIP() << "parameter-free layer";
  Rng rng(13);
  layer->Init(&rng);
  const int64_t n = 3, d = InputDimFor(kind);
  Tensor x({n, d});
  x.FillGaussian(&rng, 1.0f);

  Tensor y = layer->Forward(x, CacheMode::kCache);
  layer->ZeroGrads();
  layer->Backward(y);

  const float eps = 1e-3f;
  auto params = layer->Params();
  auto grads = layer->Grads();
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor* p = params[pi];
    Tensor* g = grads[pi];
    // Spot-check a handful of coordinates per parameter tensor.
    const int64_t stride = std::max<int64_t>(1, p->size() / 7);
    for (int64_t i = 0; i < p->size(); i += stride) {
      const float orig = (*p)[i];
      (*p)[i] = orig + eps;
      const double fp = Objective(layer.get(), x);
      (*p)[i] = orig - eps;
      const double fm = Objective(layer.get(), x);
      (*p)[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      EXPECT_NEAR((*g)[i], numeric, 5e-2)
          << kind << " param " << pi << " grad mismatch at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLayers, LayerGradCheck,
                         ::testing::Values("dense", "relu", "sigmoid", "tanh",
                                           "batchnorm"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------- Conv

TEST(ConvTest, ForwardKnownValues) {
  // 1x1x3x3 input, identity-ish 1-channel kernel.
  Conv2D conv(1, 1, 3, 1, 1);
  Rng rng(1);
  conv.Init(&rng);
  // Set kernel to pick out the center pixel.
  Tensor* w = conv.Params()[0];
  w->Fill(0.0f);
  (*w)[4] = 1.0f;  // center of 3x3
  conv.Params()[1]->Fill(0.0f);
  Tensor x({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor y = conv.Forward(x, CacheMode::kNoCache);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 3, 3}));
  for (int64_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(ConvTest, GradientMatchesFiniteDifference) {
  Conv2D conv(2, 3, 3, 1, 1);
  Rng rng(5);
  conv.Init(&rng);
  Tensor x({2, 2, 4, 4});
  x.FillGaussian(&rng, 1.0f);

  Tensor y = conv.Forward(x, CacheMode::kCache);
  conv.ZeroGrads();
  Tensor dx = conv.Backward(y);

  auto objective = [&](const Tensor& xx) {
    Tensor yy = conv.Forward(xx, CacheMode::kNoCache);
    double s = 0.0;
    for (int64_t i = 0; i < yy.size(); ++i) {
      s += 0.5 * static_cast<double>(yy[i]) * yy[i];
    }
    return s;
  };
  const float eps = 1e-2f;
  const int64_t stride = std::max<int64_t>(1, x.size() / 11);
  for (int64_t i = 0; i < x.size(); i += stride) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (objective(xp) - objective(xm)) / (2.0 * eps);
    EXPECT_NEAR(dx[i], numeric, 0.1) << "conv dx mismatch at " << i;
  }
}

TEST(ConvTest, OutputExtentFormula) {
  Conv2D conv(1, 1, 3, 2, 1);
  EXPECT_EQ(conv.OutExtent(8), 4);
  Conv2D conv2(1, 1, 5, 1, 0);
  EXPECT_EQ(conv2.OutExtent(8), 4);
}

TEST(MaxPoolTest, ForwardPicksMaxAndBackwardRoutes) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 2, 2}, {1, 7, 3, 2});
  Tensor y = pool.Forward(x, CacheMode::kCache);
  ASSERT_EQ(y.size(), 1);
  EXPECT_EQ(y[0], 7.0f);
  Tensor g({1, 1, 1, 1}, {2.0f});
  Tensor dx = pool.Backward(g);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 2.0f);
  EXPECT_EQ(dx[2], 0.0f);
}

// -------------------------------------------------------------- Dropout

TEST(DropoutTest, InferenceIsIdentity) {
  Dropout drop(0.5f);
  Tensor x({4, 4}, 1.0f);
  Tensor y = drop.Forward(x, CacheMode::kNoCache);
  for (int64_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], 1.0f);
}

TEST(DropoutTest, TrainingPreservesExpectation) {
  Dropout drop(0.5f, 99);
  Tensor x({100, 100}, 1.0f);
  Tensor y = drop.Forward(x, CacheMode::kCache);
  // Inverted dropout: mean stays ~1.
  EXPECT_NEAR(y.Sum() / y.size(), 1.0, 0.05);
}

// ----------------------------------------------------------------- Loss

TEST(LossTest, SoftmaxCrossEntropyUniformLogits) {
  Tensor logits({2, 4});  // all-zero logits -> uniform
  LossGrad lg = SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(lg.loss, std::log(4.0), 1e-5);
}

TEST(LossTest, SoftmaxCrossEntropyGradCheck) {
  Rng rng(21);
  Tensor logits({3, 5});
  logits.FillGaussian(&rng, 1.0f);
  std::vector<int64_t> labels = {1, 4, 0};
  LossGrad lg = SoftmaxCrossEntropy(logits, labels);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const double numeric = (SoftmaxCrossEntropy(lp, labels).loss -
                            SoftmaxCrossEntropy(lm, labels).loss) /
                           (2.0 * eps);
    EXPECT_NEAR(lg.grad[i], numeric, 1e-3);
  }
}

TEST(LossTest, SoftCrossEntropyMatchesHardOnOneHot) {
  Rng rng(22);
  Tensor logits({4, 3});
  logits.FillGaussian(&rng, 1.0f);
  std::vector<int64_t> labels = {0, 1, 2, 1};
  LossGrad hard = SoftmaxCrossEntropy(logits, labels);
  LossGrad soft = SoftCrossEntropy(logits, OneHot(labels, 3));
  EXPECT_NEAR(hard.loss, soft.loss, 1e-5);
  for (int64_t i = 0; i < hard.grad.size(); ++i) {
    EXPECT_NEAR(hard.grad[i], soft.grad[i], 1e-6);
  }
}

TEST(LossTest, MseZeroAtTarget) {
  Tensor pred({2, 1}, {1.0f, 2.0f});
  LossGrad lg = MeanSquaredError(pred, pred);
  EXPECT_DOUBLE_EQ(lg.loss, 0.0);
  EXPECT_EQ(lg.grad[0], 0.0f);
}

TEST(LossTest, BinaryCrossEntropyGradientSign) {
  Tensor pred({2, 1}, {0.9f, 0.1f});
  LossGrad lg = BinaryCrossEntropy(pred, {1, 0});
  // Confident and correct: small-magnitude gradients.
  EXPECT_LT(std::abs(lg.grad[0]), 1.0f);
  EXPECT_LT(lg.loss, 0.2);
}

// ------------------------------------------------------------ Sequential

TEST(SequentialTest, ForwardBackwardShapeFlow) {
  Sequential net;
  net.Emplace<Dense>(4, 8).Emplace<ReLU>().Emplace<Dense>(8, 3);
  Rng rng(2);
  net.Init(&rng);
  Tensor x({5, 4});
  x.FillGaussian(&rng, 1.0f);
  Tensor y = net.Forward(x, CacheMode::kCache);
  EXPECT_EQ(y.shape(), (Shape{5, 3}));
  Tensor dx = net.Backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(SequentialTest, ParameterVectorRoundTrip) {
  Sequential net;
  net.Emplace<Dense>(3, 2);
  Rng rng(9);
  net.Init(&rng);
  std::vector<float> flat = net.GetParameterVector();
  EXPECT_EQ(static_cast<int64_t>(flat.size()), net.NumParams());
  Sequential copy = net.Clone();
  for (float& v : flat) v += 1.0f;
  copy.SetParameterVector(flat);
  std::vector<float> back = copy.GetParameterVector();
  for (size_t i = 0; i < flat.size(); ++i) EXPECT_EQ(back[i], flat[i]);
}

TEST(SequentialTest, CloneIsIndependent) {
  Sequential net;
  net.Emplace<Dense>(2, 2);
  Rng rng(1);
  net.Init(&rng);
  Sequential copy = net.Clone();
  Tensor x({1, 2}, {1.0f, 1.0f});
  Tensor y1 = net.Forward(x, CacheMode::kNoCache);
  Tensor y2 = copy.Forward(x, CacheMode::kNoCache);
  EXPECT_EQ(y1[0], y2[0]);
  (*net.Params()[0])[0] += 1.0f;
  Tensor y3 = copy.Forward(x, CacheMode::kNoCache);
  EXPECT_EQ(y2[0], y3[0]);  // clone unaffected
}

TEST(SequentialTest, CachedBytesDropAfterDropCaches) {
  Sequential net;
  net.Emplace<Dense>(8, 8).Emplace<ReLU>().Emplace<Dense>(8, 2);
  Rng rng(3);
  net.Init(&rng);
  Tensor x({16, 8});
  x.FillGaussian(&rng, 1.0f);
  net.Forward(x, CacheMode::kCache);
  EXPECT_GT(net.CachedBytes(), 0);
  net.DropCaches();
  EXPECT_EQ(net.CachedBytes(), 0);
}

TEST(SequentialTest, NoCacheForwardLeavesNoState) {
  Sequential net;
  net.Emplace<Dense>(4, 4).Emplace<ReLU>();
  Rng rng(4);
  net.Init(&rng);
  Tensor x({2, 4});
  x.FillGaussian(&rng, 1.0f);
  net.Forward(x, CacheMode::kNoCache);
  EXPECT_EQ(net.CachedBytes(), 0);
}

TEST(SequentialTest, FlattenRoundTripInCnnShape) {
  Sequential net;
  net.Emplace<Flatten>();
  Tensor x({2, 3, 4, 4});
  Tensor y = net.Forward(x, CacheMode::kCache);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  Tensor dx = net.Backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

}  // namespace
}  // namespace dlsys
