#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/nlq/query_language.h"
#include "src/nlq/rnn.h"
#include "src/nn/loss.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"
#include "src/vecsearch/knn.h"

namespace dlsys {
namespace {

// ---------------------------------------------------------------- RNN

TEST(RnnTest, ForwardShapes) {
  RnnClassifier rnn(10, 4, 6, 3);
  Rng rng(1);
  rnn.Init(&rng);
  SequenceDataset batch;
  batch.seq_len = 5;
  batch.tokens = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  batch.labels = {0, 1};
  Tensor logits = rnn.Forward(batch);
  EXPECT_EQ(logits.shape(), (Shape{2, 3}));
}

TEST(RnnTest, BpttGradientsMatchFiniteDifferences) {
  RnnClassifier rnn(6, 3, 4, 3);
  Rng rng(2);
  rnn.Init(&rng);
  SequenceDataset batch;
  batch.seq_len = 4;
  batch.tokens = {0, 1, 2, 3, 4, 5, 0, 2, 1, 3, 5, 0};
  batch.labels = {0, 2, 1};

  // Capture analytic gradients by reproducing TrainStep's backward with
  // lr=0 (parameters unchanged, grads filled).
  RnnClassifier probe = rnn;
  probe.TrainStep(batch, 0.0);
  auto params = rnn.Params();
  auto grads = probe.Grads();

  auto loss_at = [&](RnnClassifier* model) {
    Tensor logits = model->Forward(batch);
    LossGrad lg = SoftmaxCrossEntropy(logits, batch.labels);
    return lg.loss;
  };
  const float eps = 1e-3f;
  for (size_t p = 0; p < params.size(); ++p) {
    Tensor* param = params[p];
    const int64_t stride = std::max<int64_t>(1, param->size() / 5);
    for (int64_t i = 0; i < param->size(); i += stride) {
      RnnClassifier plus = rnn;
      (*plus.Params()[p])[i] += eps;
      RnnClassifier minus = rnn;
      (*minus.Params()[p])[i] -= eps;
      const double numeric =
          (loss_at(&plus) - loss_at(&minus)) / (2.0 * eps);
      EXPECT_NEAR((*grads[p])[i], numeric, 2e-2)
          << "param " << p << " index " << i;
    }
  }
}

TEST(RnnTest, LearnsAnOrderSensitiveTask) {
  Rng rng(3);
  SequenceDataset train = MakeNlqData(1500, &rng);
  SequenceDataset test = MakeNlqData(400, &rng);
  RnnClassifier rnn(kNlqVocabSize, 8, 24, kNlqNumClasses);
  rnn.Init(&rng);
  rnn.Train(train, 25, 32, 0.1, 7);
  EXPECT_GT(rnn.Accuracy(test), 0.95)
      << "the RNN must resolve which column is left of the comparator";
}

TEST(RnnTest, BeatsBagOfWordsBaseline) {
  Rng rng(4);
  SequenceDataset train = MakeNlqData(1500, &rng);
  SequenceDataset test = MakeNlqData(400, &rng);

  RnnClassifier rnn(kNlqVocabSize, 8, 24, kNlqNumClasses);
  rnn.Init(&rng);
  rnn.Train(train, 25, 32, 0.1, 7);

  // Bag-of-words MLP: same label space, order destroyed.
  Dataset bow_train;
  bow_train.x = NlqBagOfWords(train);
  bow_train.y = train.labels;
  Dataset bow_test;
  bow_test.x = NlqBagOfWords(test);
  bow_test.y = test.labels;
  Sequential bow = MakeMlp(kNlqVocabSize, {32}, kNlqNumClasses);
  bow.Init(&rng);
  Adam opt(0.01);
  TrainConfig tc;
  tc.epochs = 40;
  Train(&bow, &opt, bow_train, tc);
  const double bow_acc = Evaluate(&bow, bow_test).accuracy;

  EXPECT_LT(bow_acc, 0.75)
      << "bag-of-words cannot tell which column is on the left";
  EXPECT_GT(rnn.Accuracy(test), bow_acc + 0.2);
}

TEST(NlqDataTest, LabelsAreConsistentWithSentences) {
  Rng rng(5);
  SequenceDataset data = MakeNlqData(50, &rng);
  for (int64_t i = 0; i < data.size(); ++i) {
    const std::string text = NlqToString(data, i);
    // The left column token appears before "below"/"above" in the text.
    const size_t op_pos = std::min(text.find("below"), text.find("above"));
    ASSERT_NE(op_pos, std::string::npos) << text;
    const int64_t label = data.labels[static_cast<size_t>(i)];
    const std::string left_col =
        "c" + std::to_string(label / kNlqNumOps);
    const size_t col_pos = text.find(left_col);
    ASSERT_NE(col_pos, std::string::npos) << text;
    EXPECT_LT(col_pos, op_pos) << text;
    const bool above = (label % kNlqNumOps) == 1;
    EXPECT_EQ(above, text.find("above") != std::string::npos) << text;
  }
}

TEST(NlqDataTest, BagOfWordsCountsTokens) {
  SequenceDataset data;
  data.seq_len = 3;
  data.tokens = {0, 0, 4};
  data.labels = {0};
  Tensor bow = NlqBagOfWords(data);
  EXPECT_EQ(bow[0], 2.0f);
  EXPECT_EQ(bow[4], 1.0f);
}

// ----------------------------------------------------------- Vecsearch

TEST(KnnTest, BruteForceFindsExactNeighbours) {
  Tensor base({4, 2}, {0, 0, 1, 0, 5, 5, 0.9f, 0.1f});
  const float query[2] = {1.0f, 0.05f};
  auto nn = BruteForceKnn(base, query, 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0], 1);  // (1, 0)
  EXPECT_EQ(nn[1], 3);  // (0.9, 0.1)
}

TEST(IvfTest, RejectsBadConfig) {
  Tensor base({4, 2});
  EXPECT_FALSE(IvfIndex::Build(base, 0, 3, 1).ok());
  EXPECT_FALSE(IvfIndex::Build(base, 9, 3, 1).ok());
  Tensor empty;
  EXPECT_FALSE(IvfIndex::Build(empty, 1, 3, 1).ok());
}

TEST(IvfTest, FullProbeMatchesBruteForce) {
  Rng rng(6);
  Tensor base = MakeEmbeddingCorpus(500, 8, 5, &rng);
  auto index = IvfIndex::Build(base, 10, 5, 7);
  ASSERT_TRUE(index.ok());
  for (int q = 0; q < 10; ++q) {
    const float* query = base.data() + (q * 37) * 8;
    auto exact = BruteForceKnn(base, query, 5);
    auto approx = index->Search(query, 5, /*nprobe=*/10);
    EXPECT_EQ(RecallAtK(approx, exact), 1.0)
        << "probing every list must be exact";
  }
}

// Property sweep: recall grows monotonically with nprobe.
class IvfRecallSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(IvfRecallSweep, RecallImprovesWithProbes) {
  const int64_t lists = GetParam();
  Rng rng(8);
  Tensor base = MakeEmbeddingCorpus(2000, 16, 12, &rng);
  auto index = IvfIndex::Build(base, lists, 6, 9);
  ASSERT_TRUE(index.ok());
  double prev_recall = -1.0;
  for (int64_t nprobe : std::vector<int64_t>{1, 2, 4, lists}) {
    double recall = 0.0;
    for (int q = 0; q < 20; ++q) {
      const float* query = base.data() + (q * 91) * 16;
      auto exact = BruteForceKnn(base, query, 10);
      auto approx = index->Search(query, 10, nprobe);
      recall += RecallAtK(approx, exact);
    }
    recall /= 20.0;
    EXPECT_GE(recall, prev_recall - 0.02) << "nprobe " << nprobe;
    prev_recall = recall;
  }
  EXPECT_NEAR(prev_recall, 1.0, 1e-9) << "full probe is exact";
}

INSTANTIATE_TEST_SUITE_P(ListCounts, IvfRecallSweep,
                         ::testing::Values(8, 16, 32));

TEST(IvfTest, ClusteredDataGetsHighRecallAtFewProbes) {
  Rng rng(10);
  Tensor base = MakeEmbeddingCorpus(5000, 16, 16, &rng);
  auto index = IvfIndex::Build(base, 16, 8, 11);
  ASSERT_TRUE(index.ok());
  double recall = 0.0;
  for (int q = 0; q < 30; ++q) {
    const float* query = base.data() + (q * 113) * 16;
    auto exact = BruteForceKnn(base, query, 10);
    auto approx = index->Search(query, 10, /*nprobe=*/2);
    recall += RecallAtK(approx, exact);
  }
  EXPECT_GT(recall / 30.0, 0.9)
      << "clustered embeddings: 2 of 16 probes should nearly suffice";
}

TEST(RecallTest, Formula) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK({1, 9, 8}, {1, 2, 3}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK({}, {1}), 0.0);
}

}  // namespace
}  // namespace dlsys
