#include "src/parallel/strategy.h"

#include <gtest/gtest.h>

namespace dlsys {
namespace {

// A transformer-ish stack: alternating heavy-param layers (favour model
// parallelism) and heavy-activation layers (favour data parallelism).
std::vector<ParLayerCost> MixedLayers(int64_t n) {
  std::vector<ParLayerCost> out;
  for (int64_t i = 0; i < n; ++i) {
    ParLayerCost c;
    c.forward_flops = 2'000'000'000;
    c.backward_flops = 4'000'000'000;
    if (i % 2 == 0) {
      c.param_bytes = 64 << 20;       // 64 MiB params: costly to all-reduce
      c.activation_bytes = 1 << 20;
    } else {
      c.param_bytes = 1 << 20;
      c.activation_bytes = 16 << 20;
    }
    out.push_back(c);
  }
  return out;
}

TEST(ParallelSimTest, ValidDegreesAreDivisors) {
  ParallelSimulator sim({12, 1e12, 1e10, 1e-6}, MixedLayers(2));
  EXPECT_EQ(sim.ValidDegrees(), (std::vector<int64_t>{1, 2, 3, 4, 6, 12}));
}

TEST(ParallelSimTest, SingleDeviceHasNoCommCost) {
  DeviceGraph g{1, 1e12, 1e10, 1e-6};
  auto layers = MixedLayers(4);
  ParallelSimulator sim(g, layers);
  Strategy s;
  s.layers.assign(4, {1, ParallelDim::kData});
  double expect = 0.0;
  for (const auto& c : layers) {
    expect += static_cast<double>(c.forward_flops + c.backward_flops) / 1e12;
  }
  EXPECT_NEAR(sim.StepSeconds(s), expect, 1e-12);
}

TEST(ParallelSimTest, DataParallelComputesKnownCost) {
  DeviceGraph g{4, 1e12, 1e10, 0.0};
  std::vector<ParLayerCost> layers(1);
  layers[0].forward_flops = 4'000'000'000;
  layers[0].backward_flops = 8'000'000'000;
  layers[0].param_bytes = 100'000'000;
  ParallelSimulator sim(g, layers);
  Strategy s;
  s.layers = {{4, ParallelDim::kData}};
  // compute: 12e9 / (4 * 1e12) = 3e-3; ring: 2*(3/4)*1e8/1e10 = 1.5e-2.
  EXPECT_NEAR(sim.StepSeconds(s), 3e-3 + 1.5e-2, 1e-9);
}

TEST(ParallelSimTest, ModelParallelAvoidsParamSync) {
  DeviceGraph g{4, 1e12, 1e10, 0.0};
  std::vector<ParLayerCost> layers(1);
  layers[0].forward_flops = 1'000'000'000;
  layers[0].backward_flops = 2'000'000'000;
  layers[0].param_bytes = 400'000'000;   // huge params
  layers[0].activation_bytes = 1'000'000;  // tiny activations
  ParallelSimulator sim(g, layers);
  Strategy data;
  data.layers = {{4, ParallelDim::kData}};
  Strategy model;
  model.layers = {{4, ParallelDim::kModel}};
  EXPECT_LT(sim.StepSeconds(model), sim.StepSeconds(data));
}

TEST(ParallelSimTest, BoundaryRedistributionIsCharged) {
  DeviceGraph g{4, 1e12, 1e10, 0.0};
  auto layers = MixedLayers(2);
  ParallelSimulator sim(g, layers);
  Strategy uniform;
  uniform.layers = {{4, ParallelDim::kData}, {4, ParallelDim::kData}};
  Strategy mixed = uniform;
  mixed.layers[1].dim = ParallelDim::kModel;
  // The mixed strategy pays the layer-0 activation redistribution on top
  // of whatever its own comm costs are; with layer 1 identical costs
  // except sync type, verify the boundary term specifically: set both
  // layers to degree 4 data, then flip only the boundary by changing
  // degree of layer 1 to 2.
  Strategy degree_change = uniform;
  degree_change.layers[1].degree = 2;
  const double base = sim.StepSeconds(uniform);
  const double changed = sim.StepSeconds(degree_change);
  // Redistribution adds activation_bytes/bw; layer 1 comm shrinks but
  // compute doubles. Just assert the simulator is sensitive to the
  // boundary at all:
  EXPECT_NE(base, changed);
}

TEST(SearchTest, OptimizedBeatsOrMatchesDataParallel) {
  DeviceGraph g{8, 1e12, 1e10, 1e-6};
  ParallelSimulator sim(g, MixedLayers(8));
  const double baseline = sim.StepSeconds(sim.DataParallelBaseline());
  SearchConfig config;
  config.iterations = 3000;
  SearchResult mcmc = OptimizeStrategy(sim, config);
  EXPECT_LE(mcmc.step_seconds, baseline);
  // The mixed workload has big-param layers: model parallelism must win
  // somewhere, so the optimum is strictly better.
  EXPECT_LT(mcmc.step_seconds, baseline * 0.95);
  EXPECT_GT(mcmc.optimize_seconds, 0.0);
  EXPECT_GT(mcmc.evaluated, 1000);
}

TEST(SearchTest, GreedyBeatsBaselineButMcmcAtLeastMatchesGreedy) {
  DeviceGraph g{8, 1e12, 1e10, 1e-6};
  ParallelSimulator sim(g, MixedLayers(8));
  const double baseline = sim.StepSeconds(sim.DataParallelBaseline());
  SearchResult greedy = GreedyStrategy(sim);
  SearchConfig config;
  config.iterations = 6000;
  SearchResult mcmc = OptimizeStrategy(sim, config);
  EXPECT_LE(greedy.step_seconds, baseline);
  EXPECT_LE(mcmc.step_seconds, greedy.step_seconds * 1.02)
      << "with a healthy budget MCMC should not lose to greedy";
}

TEST(SearchTest, MoreBudgetNeverHurts) {
  DeviceGraph g{8, 1e12, 1e10, 1e-6};
  ParallelSimulator sim(g, MixedLayers(10));
  SearchConfig small;
  small.iterations = 50;
  small.seed = 3;
  SearchConfig large;
  large.iterations = 5000;
  large.seed = 3;
  SearchResult s = OptimizeStrategy(sim, small);
  SearchResult l = OptimizeStrategy(sim, large);
  EXPECT_LE(l.step_seconds, s.step_seconds);
}

TEST(SearchTest, RandomSearchFindsSomethingValid) {
  DeviceGraph g{4, 1e12, 1e10, 1e-6};
  ParallelSimulator sim(g, MixedLayers(6));
  SearchConfig config;
  config.iterations = 500;
  SearchResult r = RandomStrategy(sim, config);
  EXPECT_EQ(static_cast<int64_t>(r.strategy.layers.size()), 6);
  for (const auto& a : r.strategy.layers) {
    EXPECT_GE(a.degree, 1);
    EXPECT_LE(a.degree, 4);
  }
}

TEST(SearchTest, DeterministicForFixedSeed) {
  DeviceGraph g{8, 1e12, 1e10, 1e-6};
  ParallelSimulator sim(g, MixedLayers(8));
  SearchConfig config;
  config.iterations = 500;
  config.seed = 11;
  SearchResult a = OptimizeStrategy(sim, config);
  SearchResult b = OptimizeStrategy(sim, config);
  EXPECT_EQ(a.step_seconds, b.step_seconds);
  EXPECT_EQ(a.strategy.ToString(), b.strategy.ToString());
}

}  // namespace
}  // namespace dlsys
