#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/data/synthetic.h"
#include "src/distributed/cluster.h"
#include "src/distributed/compressor.h"
#include "src/distributed/network_model.h"
#include "src/distributed/priority.h"
#include "src/nn/train.h"

namespace dlsys {
namespace {

// ------------------------------------------------------- NetworkModel

TEST(NetworkModelTest, TransferTimeIsAffine) {
  NetworkModel net{1e-3, 1e9};
  EXPECT_DOUBLE_EQ(net.TransferSeconds(0), 1e-3);
  EXPECT_DOUBLE_EQ(net.TransferSeconds(1000000000), 1e-3 + 1.0);
}

TEST(NetworkModelTest, AllReduceFreeForOneWorker) {
  NetworkModel net;
  EXPECT_DOUBLE_EQ(net.AllReduceSeconds(1 << 20, 1), 0.0);
  EXPECT_GT(net.AllReduceSeconds(1 << 20, 4), 0.0);
}

TEST(NetworkModelTest, AllReduceScalesWithWorkersAtFixedBytes) {
  NetworkModel net{1e-4, 1e9};
  // Latency term grows linearly with workers; bandwidth term saturates.
  EXPECT_LT(net.AllReduceSeconds(1 << 20, 2),
            net.AllReduceSeconds(1 << 20, 16));
}

TEST(NetworkModelTest, RetryPenaltyIsTimeoutPlusDoublingBackoff) {
  NetworkModel net;
  net.timeout_seconds = 5e-3;
  net.backoff_base_seconds = 1e-3;
  net.max_retries = 5;
  EXPECT_DOUBLE_EQ(net.RetryPenaltySeconds(0), 0.0);
  EXPECT_DOUBLE_EQ(net.RetryPenaltySeconds(1), 5e-3 + 1e-3);
  // Each lost attempt pays the detection timeout plus a doubling backoff:
  // 3 * 5ms + (1 + 2 + 4)ms.
  EXPECT_DOUBLE_EQ(net.RetryPenaltySeconds(3), 3 * 5e-3 + 7e-3);
  EXPECT_DOUBLE_EQ(net.TransferWithRetries(0, 1),
                   net.RetryPenaltySeconds(1) + net.TransferSeconds(0));
}

TEST(NetworkModelTest, RetryPenaltySaturatesAtMaxRetries) {
  NetworkModel net;
  net.max_retries = 2;
  const double capped = net.RetryPenaltySeconds(2);
  // Drops past the cap accrue no further time: the capped attempt is the
  // one that succeeds, so the penalty saturates instead of diverging.
  EXPECT_DOUBLE_EQ(net.RetryPenaltySeconds(3), capped);
  EXPECT_DOUBLE_EQ(net.RetryPenaltySeconds(1000), capped);
  EXPECT_GT(capped, net.RetryPenaltySeconds(1));
}

TEST(NetworkModelTest, ZeroLatencyAndZeroBytesEdges) {
  NetworkModel net{0.0, 1e6};  // zero-latency link, 1 MB/s
  EXPECT_DOUBLE_EQ(net.TransferSeconds(0), 0.0);
  EXPECT_DOUBLE_EQ(net.TransferSeconds(1000000), 1.0);
  // All-reduce of zero bytes over a zero-latency link is free at any N.
  EXPECT_DOUBLE_EQ(net.AllReduceSeconds(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(net.TransferWithRetries(0, 0), 0.0);
}

TEST(NetworkModelTest, WithLatencyScaledTouchesOnlyLatency) {
  NetworkModel net{1e-3, 1e9};
  net.timeout_seconds = 7e-3;
  net.backoff_base_seconds = 2e-3;
  net.max_retries = 3;
  const NetworkModel slow = net.WithLatencyScaled(10.0);
  // The slow-partition knob: per-message latency inflates...
  EXPECT_DOUBLE_EQ(slow.latency_seconds, 1e-2);
  // ...while bandwidth and the retry machinery stay untouched.
  EXPECT_DOUBLE_EQ(slow.bandwidth_bytes_per_s, net.bandwidth_bytes_per_s);
  EXPECT_DOUBLE_EQ(slow.timeout_seconds, net.timeout_seconds);
  EXPECT_DOUBLE_EQ(slow.backoff_base_seconds, net.backoff_base_seconds);
  EXPECT_EQ(slow.max_retries, net.max_retries);
  EXPECT_DOUBLE_EQ(slow.RetryPenaltySeconds(2), net.RetryPenaltySeconds(2));
  // Scaling by zero is the degenerate-but-legal edge: a free link.
  EXPECT_DOUBLE_EQ(net.WithLatencyScaled(0.0).TransferSeconds(0), 0.0);
}

// -------------------------------------------------------- Compressors

TEST(CompressorTest, IdentityIsLossless) {
  IdentityCompressor c;
  std::vector<float> g = {1.0f, -2.0f, 0.5f};
  CompressedGrad out = c.Compress(g);
  EXPECT_EQ(out.values, g);
  EXPECT_EQ(out.wire_bytes, 12);
}

TEST(CompressorTest, TopKKeepsLargestMagnitudes) {
  TopKCompressor c(0.25, /*error_feedback=*/false);
  std::vector<float> g = {0.1f, -5.0f, 0.2f, 0.3f, 1.0f, -0.1f, 0.0f, 0.05f};
  CompressedGrad out = c.Compress(g);
  EXPECT_EQ(out.wire_bytes, 2 * 8);  // 2 of 8 coordinates
  EXPECT_FLOAT_EQ(out.values[1], -5.0f);
  EXPECT_FLOAT_EQ(out.values[4], 1.0f);
  for (size_t i : {0u, 2u, 3u, 5u, 6u, 7u}) EXPECT_EQ(out.values[i], 0.0f);
}

TEST(CompressorTest, TopKErrorFeedbackRecoversDroppedMass) {
  // keep = 1 of 2 coordinates. Index 1 (0.1 per round) loses to index 0
  // (1.0 per round) at first, but its residual accumulates and it must
  // eventually transmit. Over 40 rounds the transmitted mass approaches
  // the true total of 0.1 * 40 = 4.
  TopKCompressor with_fb(0.5, /*error_feedback=*/true);
  TopKCompressor no_fb(0.5, /*error_feedback=*/false);
  std::vector<float> g = {1.0f, 0.1f};
  double mass_fb = 0.0, mass_no_fb = 0.0;
  for (int i = 0; i < 40; ++i) {
    mass_fb += with_fb.Compress(g).values[1];
    mass_no_fb += no_fb.Compress(g).values[1];
  }
  EXPECT_EQ(mass_no_fb, 0.0) << "without feedback the small coord is lost";
  EXPECT_GT(mass_fb, 2.0) << "feedback must recover most of the 4.0 mass";
  EXPECT_LE(mass_fb, 4.0 + 1e-4);
}

TEST(CompressorTest, QuantizerBoundsError) {
  QuantizingCompressor c(8, /*error_feedback=*/false);
  std::vector<float> g(100);
  Rng rng(5);
  for (float& v : g) v = static_cast<float>(rng.Gaussian());
  CompressedGrad out = c.Compress(g);
  float lo = *std::min_element(g.begin(), g.end());
  float hi = *std::max_element(g.begin(), g.end());
  const float step = (hi - lo) / 255.0f;
  for (size_t i = 0; i < g.size(); ++i) {
    EXPECT_LE(std::abs(out.values[i] - g[i]), step * 0.5f + 1e-6f);
  }
  EXPECT_EQ(out.wire_bytes, 100 + 8);
}

TEST(CompressorTest, WireBytesOrdering) {
  std::vector<float> g(1024);
  Rng rng(6);
  for (float& v : g) v = static_cast<float>(rng.Gaussian());
  IdentityCompressor ident;
  TopKCompressor topk(0.01);
  QuantizingCompressor q2(2);
  EXPECT_LT(topk.Compress(g).wire_bytes, ident.Compress(g).wire_bytes);
  EXPECT_LT(q2.Compress(g).wire_bytes, ident.Compress(g).wire_bytes);
}

// ------------------------------------------------------------ Sharding

TEST(ShardTest, RoundRobinCoversAll) {
  Rng rng(7);
  Dataset data = MakeGaussianBlobs(103, 4, 3, 3.0, &rng);
  auto shards = ShardDataset(data, 4);
  ASSERT_EQ(shards.size(), 4u);
  int64_t total = 0;
  for (const auto& s : shards) total += s.size();
  EXPECT_EQ(total, 103);
  EXPECT_EQ(shards[0].size(), 26);
  EXPECT_EQ(shards[3].size(), 25);
}

// -------------------------------------------------------- Cluster runs

Dataset ClusterData(uint64_t seed) {
  Rng rng(seed);
  return MakeGaussianBlobs(800, 8, 4, 3.0, &rng);
}

Sequential ClusterArch(uint64_t seed) {
  Sequential net = MakeMlp(8, {16}, 4);
  Rng rng(seed);
  net.Init(&rng);
  return net;
}

TEST(ClusterTest, RejectsBadConfig) {
  Dataset data = ClusterData(1);
  Sequential arch = ClusterArch(2);
  ClusterConfig config;
  config.workers = 0;
  EXPECT_FALSE(TrainOnCluster(arch, data, config, nullptr).ok());
  config.workers = 4;
  config.strategy = SyncStrategy::kLocalSgd;
  config.local_steps = 0;
  EXPECT_FALSE(TrainOnCluster(arch, data, config, nullptr).ok());
}

TEST(ClusterTest, SyncSgdLearns) {
  Dataset data = ClusterData(3);
  auto split = Split(data, 0.8);
  Sequential arch = ClusterArch(4);
  ClusterConfig config;
  config.workers = 4;
  config.rounds = 150;
  auto result = TrainOnCluster(arch, split.train, config, nullptr);
  ASSERT_TRUE(result.ok());
  Sequential model = result->model.Clone();
  EXPECT_GT(Evaluate(&model, split.test).accuracy, 0.85);
  EXPECT_GT(result->report.Get(metric::kCommBytes), 0.0);
}

TEST(ClusterTest, LocalSgdCutsCommBytes) {
  Dataset data = ClusterData(5);
  Sequential arch = ClusterArch(6);
  ClusterConfig sync_config;
  sync_config.workers = 4;
  sync_config.rounds = 64;
  sync_config.strategy = SyncStrategy::kSyncSgd;
  ClusterConfig local_config = sync_config;
  local_config.strategy = SyncStrategy::kLocalSgd;
  local_config.local_steps = 8;
  auto sync = TrainOnCluster(arch, data, sync_config, nullptr);
  auto local = TrainOnCluster(arch, data, local_config, nullptr);
  ASSERT_TRUE(sync.ok() && local.ok());
  EXPECT_LT(local->report.Get(metric::kCommBytes),
            sync->report.Get(metric::kCommBytes) / 2.0);
}

TEST(ClusterTest, LocalSgdStillLearns) {
  Dataset data = ClusterData(7);
  auto split = Split(data, 0.8);
  Sequential arch = ClusterArch(8);
  ClusterConfig config;
  config.workers = 4;
  config.rounds = 160;
  config.strategy = SyncStrategy::kLocalSgd;
  config.local_steps = 8;
  auto result = TrainOnCluster(arch, split.train, config, nullptr);
  ASSERT_TRUE(result.ok());
  Sequential model = result->model.Clone();
  EXPECT_GT(Evaluate(&model, split.test).accuracy, 0.85);
}

TEST(ClusterTest, CompressionCutsBytesKeepsLearning) {
  Dataset data = ClusterData(9);
  auto split = Split(data, 0.8);
  Sequential arch = ClusterArch(10);
  ClusterConfig config;
  config.workers = 4;
  config.rounds = 150;
  TopKCompressor topk(0.1);
  auto plain = TrainOnCluster(arch, split.train, config, nullptr);
  auto compressed = TrainOnCluster(arch, split.train, config, &topk);
  ASSERT_TRUE(plain.ok() && compressed.ok());
  EXPECT_LT(compressed->report.Get(metric::kCommBytes),
            plain->report.Get(metric::kCommBytes) / 2.0);
  Sequential model = compressed->model.Clone();
  EXPECT_GT(Evaluate(&model, split.test).accuracy, 0.8)
      << "top-10% with error feedback should still converge";
}

TEST(ClusterTest, SyncReplicasStayIdentical) {
  Dataset data = ClusterData(11);
  Sequential arch = ClusterArch(12);
  ClusterConfig config;
  config.workers = 3;
  config.rounds = 10;
  auto result = TrainOnCluster(arch, data, config, nullptr);
  ASSERT_TRUE(result.ok());
  // In sync mode the final model equals any replica; determinism check:
  auto result2 = TrainOnCluster(arch, data, config, nullptr);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result->model.GetParameterVector(),
            result2->model.GetParameterVector());
}

// ----------------------------------------------- Priority propagation

std::vector<LayerCost> UniformLayers(int64_t n, double bwd, double fwd,
                                     int64_t bytes) {
  return std::vector<LayerCost>(static_cast<size_t>(n), {bwd, fwd, bytes});
}

TEST(PriorityTest, NoOverlapIsSumOfPhases) {
  NetworkModel net{0.0, 1e6};  // zero latency, 1 MB/s
  auto layers = UniformLayers(4, 0.1, 0.1, 100000);  // 0.1 s per transfer
  const double t =
      SimulatePropagation(layers, net, PropagationPolicy::kNoOverlap);
  // backward (0.4) + all transfers (0.4) + forward (0.4): no overlap.
  EXPECT_NEAR(t, 1.2, 1e-9);
}

TEST(PriorityTest, OverlapBeatsNoOverlap) {
  NetworkModel net{0.0, 1e6};
  auto layers = UniformLayers(8, 0.05, 0.05, 50000);
  const double none =
      SimulatePropagation(layers, net, PropagationPolicy::kNoOverlap);
  const double fifo =
      SimulatePropagation(layers, net, PropagationPolicy::kFifo);
  EXPECT_LT(fifo, none);
}

TEST(PriorityTest, PriorityBeatsFifoWhenCommBound) {
  // Communication-heavy: transfers dominate; sending layer 0 first lets
  // the forward pass start while later layers still stream.
  NetworkModel net{0.0, 1e6};
  auto layers = UniformLayers(8, 0.01, 0.05, 100000);  // 0.1 s per transfer
  const double fifo =
      SimulatePropagation(layers, net, PropagationPolicy::kFifo);
  const double prio =
      SimulatePropagation(layers, net, PropagationPolicy::kPriority);
  EXPECT_LT(prio, fifo);
}

TEST(PriorityTest, SingleLayerAllPoliciesAgree) {
  NetworkModel net{1e-3, 1e9};
  auto layers = UniformLayers(1, 0.2, 0.1, 4000000);
  const double a =
      SimulatePropagation(layers, net, PropagationPolicy::kNoOverlap);
  const double b = SimulatePropagation(layers, net, PropagationPolicy::kFifo);
  const double c =
      SimulatePropagation(layers, net, PropagationPolicy::kPriority);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(b, c);
}

}  // namespace
}  // namespace dlsys
