#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/db/btree.h"
#include "src/db/histogram.h"
#include "src/learned/cardinality.h"
#include "src/learned/knob_tuning.h"
#include "src/learned/learned_bloom.h"
#include "src/learned/learned_index.h"
#include "src/learned/semantic_compression.h"

namespace dlsys {
namespace {

// ----------------------------------------------------------- LinearModel

TEST(LinearModelTest, FitsExactLine) {
  LinearModel m = LinearModel::Fit({0, 1, 2, 3}, {1, 3, 5, 7});
  EXPECT_NEAR(m.slope, 2.0, 1e-9);
  EXPECT_NEAR(m.intercept, 1.0, 1e-9);
}

TEST(LinearModelTest, ConstantInputGivesConstantModel) {
  LinearModel m = LinearModel::Fit({5, 5, 5}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(m.slope, 0.0);
  EXPECT_NEAR(m.Predict(5), 2.0, 1e-9);
}

// ---------------------------------------------------------- LearnedIndex

std::vector<int64_t> LognormalKeys(int64_t n, Rng* rng) {
  std::set<int64_t> keys;
  while (static_cast<int64_t>(keys.size()) < n) {
    keys.insert(static_cast<int64_t>(std::exp(rng->Gaussian() * 2.0 + 10.0)));
  }
  return {keys.begin(), keys.end()};
}

TEST(LearnedIndexTest, RejectsBadInput) {
  EXPECT_FALSE(LearnedIndex::Build({}, 4).ok());
  EXPECT_FALSE(LearnedIndex::Build({1, 2, 3}, 0).ok());
  EXPECT_FALSE(LearnedIndex::Build({1, 1, 2}, 4).ok());  // duplicate
  EXPECT_FALSE(LearnedIndex::Build({3, 2, 1}, 4).ok());  // unsorted
}

// Property sweep: every present key is found at its exact position, for
// several distributions and leaf counts.
struct RmiCase {
  const char* dist;
  int64_t leaves;
};

class RmiSweep : public ::testing::TestWithParam<RmiCase> {};

TEST_P(RmiSweep, FindsEveryKeyExactly) {
  const RmiCase c = GetParam();
  Rng rng(101);
  std::vector<int64_t> keys;
  if (std::string(c.dist) == "uniform") {
    std::set<int64_t> s;
    while (static_cast<int64_t>(s.size()) < 20000) {
      s.insert(static_cast<int64_t>(rng.Next() >> 20));
    }
    keys.assign(s.begin(), s.end());
  } else if (std::string(c.dist) == "lognormal") {
    keys = LognormalKeys(20000, &rng);
  } else {  // sequential with gaps
    int64_t k = 0;
    for (int64_t i = 0; i < 20000; ++i) {
      k += 1 + static_cast<int64_t>(rng.Index(3));
      keys.push_back(k);
    }
  }
  auto index = LearnedIndex::Build(keys, c.leaves);
  ASSERT_TRUE(index.ok());
  for (size_t i = 0; i < keys.size(); i += 37) {
    auto pos = index->Find(keys[i]);
    ASSERT_TRUE(pos.ok()) << "key " << keys[i];
    EXPECT_EQ(*pos, static_cast<int64_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DistsAndLeaves, RmiSweep,
    ::testing::Values(RmiCase{"uniform", 16}, RmiCase{"uniform", 256},
                      RmiCase{"lognormal", 64}, RmiCase{"lognormal", 1024},
                      RmiCase{"sequential", 4}, RmiCase{"sequential", 128}));

TEST(LearnedIndexTest, AbsentKeysAreNotFound) {
  Rng rng(102);
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 1000; ++i) keys.push_back(i * 10);
  auto index = LearnedIndex::Build(keys, 32);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->Find(5).ok());
  EXPECT_FALSE(index->Find(-100).ok());
  EXPECT_FALSE(index->Find(99999).ok());
}

TEST(LearnedIndexTest, SmallerThanBTree) {
  Rng rng(103);
  std::vector<int64_t> keys = LognormalKeys(50000, &rng);
  auto index = LearnedIndex::Build(keys, 512);
  ASSERT_TRUE(index.ok());
  BTree btree(128);
  for (size_t i = 0; i < keys.size(); ++i) {
    btree.Insert(keys[i], static_cast<int64_t>(i));
  }
  EXPECT_LT(index->MemoryBytes(), btree.MemoryBytes() / 20)
      << "RMI should be far smaller than the B+-tree";
}

TEST(LearnedIndexTest, MoreLeavesShrinkSearchWindows) {
  Rng rng(104);
  std::vector<int64_t> keys = LognormalKeys(30000, &rng);
  auto coarse = LearnedIndex::Build(keys, 8);
  auto fine = LearnedIndex::Build(keys, 1024);
  ASSERT_TRUE(coarse.ok() && fine.ok());
  EXPECT_LT(fine->MeanSearchWindow(), coarse->MeanSearchWindow());
}

// ---------------------------------------------------------- LearnedBloom

TEST(LearnedBloomTest, RejectsBadInput) {
  LearnedBloomConfig config;
  EXPECT_FALSE(
      LearnedBloomFilter::Train({}, {1, 2}, 0, 100, config).ok());
  EXPECT_FALSE(
      LearnedBloomFilter::Train({1, 2}, {}, 0, 100, config).ok());
  EXPECT_FALSE(
      LearnedBloomFilter::Train({1, 2}, {3}, 100, 100, config).ok());
}

TEST(LearnedBloomTest, NoFalseNegatives) {
  Rng rng(201);
  MembershipData data =
      MakeClusteredMembership(2000, 4000, 1 << 20, 4, &rng);
  LearnedBloomConfig config;
  config.epochs = 25;
  auto filter =
      LearnedBloomFilter::Train(data.members, data.non_members, 0, 1 << 20,
                                config);
  ASSERT_TRUE(filter.ok());
  for (int64_t key : data.members) {
    ASSERT_TRUE(filter->MayContain(key))
        << "false negative on member " << key;
  }
}

TEST(LearnedBloomTest, BeatsClassicBloomAtEqualMemoryOnStructuredKeys) {
  Rng rng(202);
  MembershipData data =
      MakeClusteredMembership(3000, 6000, 1 << 20, 3, &rng);
  // Hold out half the non-members for FPR measurement.
  std::vector<int64_t> train_nm(data.non_members.begin(),
                                data.non_members.begin() + 3000);
  std::vector<int64_t> test_nm(data.non_members.begin() + 3000,
                               data.non_members.end());
  LearnedBloomConfig config;
  config.epochs = 35;
  config.member_recall = 0.7;
  auto learned = LearnedBloomFilter::Train(data.members, train_nm, 0,
                                           1 << 20, config);
  ASSERT_TRUE(learned.ok());
  // Classic filter given the same total memory.
  const double bits_per_key =
      static_cast<double>(learned->MemoryBytes() * 8) /
      static_cast<double>(data.members.size());
  BloomFilter classic =
      BloomFilter::ForKeys(static_cast<int64_t>(data.members.size()),
                           bits_per_key);
  for (int64_t key : data.members) classic.Insert(key);
  // On clustered member sets the classifier absorbs most members, so the
  // learned filter should not be dramatically worse and typically wins;
  // assert it is within 2x (shape check, see bench for the full curve).
  const double learned_fpr = learned->MeasureFpr(test_nm);
  const double classic_fpr = classic.MeasureFpr(test_nm);
  EXPECT_LT(learned_fpr, std::max(2.0 * classic_fpr, 0.02))
      << "learned " << learned_fpr << " vs classic " << classic_fpr;
}

TEST(LearnedBloomTest, BackupFilterHoldsRejectedMembers) {
  Rng rng(203);
  MembershipData data = MakeClusteredMembership(1000, 1000, 1 << 18, 2, &rng);
  LearnedBloomConfig config;
  config.member_recall = 0.6;
  config.epochs = 20;
  auto filter = LearnedBloomFilter::Train(data.members, data.non_members, 0,
                                          1 << 18, config);
  ASSERT_TRUE(filter.ok());
  // ~40% of members should be in the backup filter.
  EXPECT_GT(filter->backup_keys(), 200);
  EXPECT_LT(filter->backup_keys(), 600);
}

// ----------------------------------------------------------- Cardinality

TEST(CardinalityTest, RejectsEmptyWorkload) {
  Rng rng(301);
  Table t = MakeCorrelatedTable(100, 2, 0.5, &rng);
  CardinalityConfig config;
  EXPECT_FALSE(LearnedCardinality::Train(t, {}, config).ok());
}

TEST(CardinalityTest, BeatsAviOnCorrelatedData) {
  Rng rng(302);
  Table t = MakeCorrelatedTable(8000, 4, 0.95, &rng);
  Rng wrng(303);
  auto train_queries = MakeWorkload(t, 400, &wrng);
  auto test_queries = MakeWorkload(t, 80, &wrng);
  CardinalityConfig config;
  config.epochs = 80;
  auto learned = LearnedCardinality::Train(t, train_queries, config);
  ASSERT_TRUE(learned.ok());
  AviEstimator avi(t, 64);
  auto mean_qerr = [&](auto estimate) {
    double s = 0.0;
    for (const auto& q : test_queries) {
      s += QError(estimate(q), TrueSelectivity(t, q));
    }
    return s / static_cast<double>(test_queries.size());
  };
  const double learned_err =
      mean_qerr([&](const RangeQuery& q) { return learned->Estimate(q); });
  const double avi_err =
      mean_qerr([&](const RangeQuery& q) { return avi.Estimate(q); });
  EXPECT_LT(learned_err, avi_err)
      << "learned " << learned_err << " vs AVI " << avi_err;
}

TEST(CardinalityTest, EstimatesAreValidProbabilities) {
  Rng rng(304);
  Table t = MakeCorrelatedTable(2000, 3, 0.5, &rng);
  Rng wrng(305);
  auto queries = MakeWorkload(t, 100, &wrng);
  CardinalityConfig config;
  config.epochs = 30;
  auto learned = LearnedCardinality::Train(t, queries, config);
  ASSERT_TRUE(learned.ok());
  for (const auto& q : queries) {
    const double est = learned->Estimate(q);
    EXPECT_GE(est, 0.0);
    EXPECT_LE(est, 1.0);
  }
}

// ----------------------------------------------------------- Knob tuning

TEST(KnobTuningTest, AllTunersFindValidConfigs) {
  TunableDb db({0.8, 0.3, 512});
  QTunerConfig config;
  config.episodes = 10;
  TuningResult q = QLearningTune(db, config);
  TuningResult g = GridSearchTune(db, 50);
  TuningResult r = RandomSearchTune(db, 50, 7);
  EXPECT_TRUE(db.Validate(q.best).ok());
  EXPECT_TRUE(db.Validate(g.best).ok());
  EXPECT_TRUE(db.Validate(r.best).ok());
  EXPECT_LT(q.best_latency_ms, 1e300);
}

TEST(KnobTuningTest, BestSoFarIsMonotone) {
  TunableDb db({0.7, 0.5, 1024});
  QTunerConfig config;
  config.episodes = 8;
  TuningResult result = QLearningTune(db, config);
  for (size_t i = 1; i < result.best_so_far.size(); ++i) {
    EXPECT_LE(result.best_so_far[i], result.best_so_far[i - 1]);
  }
}

TEST(KnobTuningTest, QLearningApproachesOptimum) {
  TunableDb db({0.85, 0.4, 1024});
  QTunerConfig config;
  config.episodes = 60;
  config.steps_per_episode = 30;
  TuningResult result = QLearningTune(db, config);
  const double optimal = db.BestLatencyMs();
  EXPECT_LT(result.best_latency_ms, optimal * 1.1)
      << "Q-learning should land within 10% of the exhaustive optimum";
}

TEST(KnobTuningTest, QLearningBeatsGridAtSmallBudget) {
  TunableDb db({0.85, 0.4, 1024});
  // Grid search burns its budget on a corner of the lattice; the agent
  // navigates. Budget = 120 evaluations (~40% of the 288-config grid).
  QTunerConfig config;
  config.episodes = 6;
  config.steps_per_episode = 20;  // 120 evals
  TuningResult q = QLearningTune(db, config);
  TuningResult g = GridSearchTune(db, 120);
  EXPECT_LT(q.best_latency_ms, g.best_latency_ms * 1.05);
}

TEST(KnobTuningTest, FullGridFindsOptimum) {
  TunableDb db({0.6, 0.2, 256});
  TuningResult g = GridSearchTune(db, db.NumConfigs());
  EXPECT_NEAR(g.best_latency_ms, db.BestLatencyMs(), 1e-12);
}

// -------------------------------------------------- Semantic compression

TEST(SemanticCompressionTest, RejectsBadConfig) {
  Rng rng(401);
  Table t = MakeCorrelatedTable(100, 3, 0.9, &rng);
  SemanticCompressionConfig config;
  config.latent_dims = 0;
  EXPECT_FALSE(CompressedTable::Compress(t, config).ok());
  config.latent_dims = 5;  // > columns
  EXPECT_FALSE(CompressedTable::Compress(t, config).ok());
  config.latent_dims = 1;
  config.epsilon = 0.0;
  EXPECT_FALSE(CompressedTable::Compress(t, config).ok());
}

TEST(SemanticCompressionTest, ReconstructionRespectsErrorBound) {
  Rng rng(402);
  Table t = MakeCorrelatedTable(2000, 4, 0.9, &rng);
  SemanticCompressionConfig config;
  config.latent_dims = 1;
  config.epochs = 60;
  config.epsilon = 0.1;
  auto compressed = CompressedTable::Compress(t, config);
  ASSERT_TRUE(compressed.ok());
  Table back = compressed->Decompress();
  // Error bound is in normalized units; convert per column.
  for (int64_t c = 0; c < t.num_columns(); ++c) {
    const auto& col = t.columns[static_cast<size_t>(c)];
    double mean = 0.0;
    for (double v : col) mean += v;
    mean /= t.rows;
    double var = 0.0;
    for (double v : col) var += (v - mean) * (v - mean);
    var /= t.rows;
    const double stddev = std::sqrt(std::max(var, 1e-12));
    for (int64_t r = 0; r < t.rows; ++r) {
      EXPECT_LE(std::abs(back.value(r, c) - t.value(r, c)),
                config.epsilon * stddev + 1e-4)
          << "r=" << r << " c=" << c;
    }
  }
}

TEST(SemanticCompressionTest, CorrelatedTableCompressesWell) {
  // At correlation 0.995 the independent per-column noise is ~0.07 of a
  // std, comfortably inside epsilon = 0.2 — so a 1-dim latent can absorb
  // nearly every value and corrections stay rare.
  Rng rng(403);
  Table t = MakeCorrelatedTable(4000, 6, 0.995, &rng);
  SemanticCompressionConfig config;
  config.latent_dims = 1;
  config.epochs = 100;
  config.epsilon = 0.2;
  auto compressed = CompressedTable::Compress(t, config);
  ASSERT_TRUE(compressed.ok());
  EXPECT_LT(compressed->CompressedBytes(), compressed->OriginalBytes() / 4)
      << "1 latent dim for 6 near-duplicate columns must compress well";
}

TEST(SemanticCompressionTest, MoreCorrelationFewerCorrections) {
  SemanticCompressionConfig config;
  config.latent_dims = 1;
  config.epochs = 80;
  config.epsilon = 0.15;
  Rng rng1(404);
  Table corr = MakeCorrelatedTable(2000, 4, 0.98, &rng1);
  Rng rng2(404);
  Table indep = MakeCorrelatedTable(2000, 4, 0.0, &rng2);
  auto c1 = CompressedTable::Compress(corr, config);
  auto c2 = CompressedTable::Compress(indep, config);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_LT(c1->num_corrections(), c2->num_corrections());
}

}  // namespace
}  // namespace dlsys
