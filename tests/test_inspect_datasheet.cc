#include <gtest/gtest.h>

#include "src/fairness/datasheet.h"
#include "src/fairness/loan_data.h"
#include "src/interpret/inspector.h"
#include "src/nn/layers.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace dlsys {
namespace {

// ------------------------------------------------------------ Datasheet

TEST(DatasheetTest, RejectsBadInput) {
  Dataset empty;
  EXPECT_FALSE(GenerateDatasheet(empty, {}).ok());
  Dataset data;
  data.x = Tensor({2, 2});
  data.y = {0, 1};
  EXPECT_FALSE(GenerateDatasheet(data, {0}).ok());       // length
  EXPECT_FALSE(GenerateDatasheet(data, {0, 2}).ok());    // non-binary
}

TEST(DatasheetTest, CountsAndStats) {
  Dataset data;
  data.x = Tensor({4, 2}, {1, 10, 2, 20, 3, 30, 4, 40});
  data.y = {0, 1, 1, 1};
  auto sheet = GenerateDatasheet(data, {0, 0, 1, 1});
  ASSERT_TRUE(sheet.ok());
  EXPECT_EQ(sheet->examples, 4);
  EXPECT_EQ(sheet->features, 2);
  EXPECT_EQ(sheet->classes, 2);
  EXPECT_EQ(sheet->class_counts[0], 1);
  EXPECT_EQ(sheet->class_counts[1], 3);
  EXPECT_EQ(sheet->group_counts[0], 2);
  EXPECT_DOUBLE_EQ(sheet->positive_rate_by_group[0], 0.5);
  EXPECT_DOUBLE_EQ(sheet->positive_rate_by_group[1], 1.0);
  EXPECT_DOUBLE_EQ(sheet->feature_summaries[0].mean, 2.5);
  EXPECT_DOUBLE_EQ(sheet->feature_summaries[0].min, 1.0);
  EXPECT_DOUBLE_EQ(sheet->feature_summaries[0].max, 4.0);
}

TEST(DatasheetTest, FlagsBiasedLoanData) {
  LoanDataConfig config;
  config.n = 4000;
  config.bias_strength = 0.7;
  config.group1_fraction = 0.15;  // also underrepresented
  LoanData loans = MakeLoanData(config);
  auto sheet = GenerateDatasheet(loans.data, loans.group);
  ASSERT_TRUE(sheet.ok());
  bool has_representation = false, has_disparity = false;
  for (const auto& w : sheet->warnings) {
    if (w.find("underrepresented") != std::string::npos) {
      has_representation = true;
    }
    if (w.find("disparity") != std::string::npos) has_disparity = true;
  }
  EXPECT_TRUE(has_representation);
  EXPECT_TRUE(has_disparity);
  EXPECT_NE(sheet->ToString().find("WARNING"), std::string::npos);
}

TEST(DatasheetTest, CleanDataHasNoWarnings) {
  LoanDataConfig config;
  config.n = 4000;
  config.bias_strength = 0.0;
  config.group1_fraction = 0.5;
  LoanData loans = MakeLoanData(config);
  // Strip the group-correlated features shift by zeroing group effect:
  // the default generator adds a mild shift, so relax thresholds.
  DatasheetConfig relaxed;
  relaxed.max_group_correlation = 0.9;
  relaxed.max_label_disparity = 0.1;
  auto sheet = GenerateDatasheet(loans.data, loans.group, relaxed);
  ASSERT_TRUE(sheet.ok());
  EXPECT_TRUE(sheet->warnings.empty())
      << "unexpected warning: " << sheet->warnings.front();
}

TEST(DatasheetTest, ProxyFeatureDetection) {
  // Feature 0 IS the group; must be flagged as a proxy.
  Dataset data;
  const int64_t n = 200;
  data.x = Tensor({n, 2});
  data.y.resize(static_cast<size_t>(n));
  std::vector<int64_t> group(static_cast<size_t>(n));
  Rng rng(5);
  for (int64_t i = 0; i < n; ++i) {
    group[static_cast<size_t>(i)] = i % 2;
    data.x[i * 2 + 0] = static_cast<float>(i % 2);
    data.x[i * 2 + 1] = static_cast<float>(rng.Gaussian());
    data.y[static_cast<size_t>(i)] = rng.Bernoulli(0.5) ? 1 : 0;
  }
  auto sheet = GenerateDatasheet(data, group);
  ASSERT_TRUE(sheet.ok());
  EXPECT_GT(sheet->feature_summaries[0].group_correlation, 0.95);
  bool has_proxy = false;
  for (const auto& w : sheet->warnings) {
    if (w.find("proxy") != std::string::npos &&
        w.find("feature 0") != std::string::npos) {
      has_proxy = true;
    }
  }
  EXPECT_TRUE(has_proxy);
}

// ------------------------------------------------------------ Inspector

class InspectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    // Train a net whose class signal is a known property.
    data_ = MakeLoanData({1000, 0.4, 0.0, 0.05, 9});
    net_ = MakeMlp(5, {16, 16}, 2);
    net_.Init(&rng);
    Sgd opt(0.05, 0.9);
    TrainConfig tc;
    tc.epochs = 15;
    Train(&net_, &opt, data_.data, tc);
  }
  LoanData data_;
  Sequential net_;
};

TEST_F(InspectorTest, ValidatesInput) {
  ModelInspector inspector(&net_, data_.data.x);
  EXPECT_FALSE(inspector.TopUnitsFor({1.0, 2.0}, 3).ok());  // wrong length
  std::vector<double> property(static_cast<size_t>(data_.data.size()), 0.0);
  EXPECT_FALSE(inspector.TopUnitsFor(property, 0).ok());
  EXPECT_FALSE(inspector.TopUnitsInLayer(property, 99, 3).ok());
}

TEST_F(InspectorTest, FindsLabelEncodingUnits) {
  ModelInspector inspector(&net_, data_.data.x);
  std::vector<double> label_property;
  for (int64_t y : data_.data.y) {
    label_property.push_back(static_cast<double>(y));
  }
  auto top = inspector.TopUnitsFor(label_property, 5);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 5u);
  // A trained classifier must contain units strongly correlated with the
  // label it predicts.
  EXPECT_GT((*top)[0].score, 0.5);
  // Results are sorted by score.
  for (size_t i = 1; i < top->size(); ++i) {
    EXPECT_LE((*top)[i].score, (*top)[i - 1].score);
  }
}

TEST_F(InspectorTest, LayerProfilePeaksNearOutput) {
  ModelInspector inspector(&net_, data_.data.x);
  std::vector<double> label_property;
  for (int64_t y : data_.data.y) {
    label_property.push_back(static_cast<double>(y));
  }
  auto profile = inspector.LayerProfile(label_property);
  ASSERT_TRUE(profile.ok());
  ASSERT_EQ(static_cast<int64_t>(profile->size()), net_.size());
  // The label is most linearly decodable at the logit layer.
  const double last = profile->back();
  EXPECT_GT(last, 0.5);
}

TEST_F(InspectorTest, RandomPropertyHasLowAffinity) {
  ModelInspector inspector(&net_, data_.data.x);
  Rng rng(11);
  std::vector<double> noise(static_cast<size_t>(data_.data.size()));
  for (double& v : noise) v = rng.Gaussian();
  auto top = inspector.TopUnitsFor(noise, 1);
  ASSERT_TRUE(top.ok());
  EXPECT_LT((*top)[0].score, 0.25)
      << "no unit should strongly encode pure noise";
}

TEST_F(InspectorTest, GroupPropertyIsDetectable) {
  // The tutorial's point: models infer protected attributes from
  // correlated features even when the attribute is not an input.
  ModelInspector inspector(&net_, data_.data.x);
  std::vector<double> group_property;
  for (int64_t g : data_.group) {
    group_property.push_back(static_cast<double>(g));
  }
  auto top = inspector.TopUnitsFor(group_property, 3);
  ASSERT_TRUE(top.ok());
  EXPECT_GT((*top)[0].score, 0.2)
      << "group signal leaks into hidden units via correlated features";
}

}  // namespace
}  // namespace dlsys
