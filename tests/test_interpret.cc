#include <gtest/gtest.h>

#include <cmath>

#include "src/data/synthetic.h"
#include "src/interpret/lime.h"
#include "src/interpret/model_store.h"
#include "src/interpret/saliency.h"
#include "src/interpret/tsne.h"
#include "src/nn/layers.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace dlsys {
namespace {

// ------------------------------------------------------------------ tSNE

TEST(TsneTest, RejectsBadInput) {
  Tensor tiny({5, 3});
  TsneConfig config;
  config.perplexity = 30.0;
  EXPECT_FALSE(Tsne(tiny, config).ok());  // too few points
}

TEST(TsneTest, PreservesClusterStructure) {
  Rng rng(7);
  Dataset data = MakeGaussianBlobs(240, 16, 4, 6.0, &rng);
  TsneConfig config;
  config.perplexity = 15.0;
  config.iterations = 250;
  auto embedding = Tsne(data.x, config);
  ASSERT_TRUE(embedding.ok());
  EXPECT_EQ(embedding->shape(), (Shape{240, 2}));
  const double purity = EmbeddingPurity(*embedding, data.y, 10);
  EXPECT_GT(purity, 0.85)
      << "well-separated 16-D blobs must stay clustered in 2-D";
}

TEST(TsneTest, PurityBeatsShuffledBaseline) {
  Rng rng(8);
  Dataset data = MakeGaussianBlobs(160, 8, 4, 5.0, &rng);
  TsneConfig config;
  config.perplexity = 12.0;
  config.iterations = 200;
  auto embedding = Tsne(data.x, config);
  ASSERT_TRUE(embedding.ok());
  std::vector<int64_t> shuffled = data.y;
  Rng srng(9);
  srng.Shuffle(&shuffled);
  EXPECT_GT(EmbeddingPurity(*embedding, data.y, 10),
            EmbeddingPurity(*embedding, shuffled, 10) + 0.2);
}

TEST(TsneTest, DeterministicForFixedSeed) {
  Rng rng(10);
  Dataset data = MakeGaussianBlobs(120, 6, 3, 4.0, &rng);
  TsneConfig config;
  config.perplexity = 10.0;
  config.iterations = 60;
  auto a = Tsne(data.x, config);
  auto b = Tsne(data.x, config);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int64_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

// ------------------------------------------------------------------ LIME

TEST(WeightedRidgeTest, RecoversExactLinearFunction) {
  // y = 2 x0 - 3 x1 + 1 with uniform weights.
  std::vector<double> x = {1, 0, 0, 1, 1, 1, 2, 1, -1, 2};
  std::vector<double> y;
  for (int i = 0; i < 5; ++i) {
    y.push_back(2 * x[2 * i] - 3 * x[2 * i + 1] + 1);
  }
  std::vector<double> w(5, 1.0);
  auto beta = WeightedRidge(x, 5, 2, w, y, 1e-9);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 2.0, 1e-5);
  EXPECT_NEAR((*beta)[1], -3.0, 1e-5);
  EXPECT_NEAR((*beta)[2], 1.0, 1e-5);
}

TEST(WeightedRidgeTest, RejectsSizeMismatch) {
  EXPECT_FALSE(WeightedRidge({1, 2}, 2, 2, {1, 1}, {1, 1}, 0.1).ok());
}

TEST(LimeTest, RejectsBadInput) {
  Sequential net = MakeMlp(3, {4}, 2);
  Rng rng(1);
  net.Init(&rng);
  Tensor batch({2, 3});
  LimeConfig config;
  EXPECT_FALSE(ExplainWithLime(&net, batch, 0, config).ok());
  Tensor x({1, 3});
  EXPECT_FALSE(ExplainWithLime(&net, x, 9, config).ok());
}

TEST(LimeTest, RecoversFeatureImportanceOfKnownModel) {
  // A hand-built linear classifier: class-1 logit depends only on
  // feature 0 (positively) and feature 2 (negatively).
  Sequential net;
  net.Emplace<Dense>(3, 2);
  auto* dense = dynamic_cast<Dense*>(net.layer(0));
  dense->weight().Fill(0.0f);
  dense->weight().at(0, 1) = 2.0f;   // feature 0 -> class 1
  dense->weight().at(2, 1) = -2.0f;  // feature 2 -> class 1 (negative)
  dense->bias().Fill(0.0f);

  Tensor x({1, 3}, {0.0f, 0.0f, 0.0f});
  LimeConfig config;
  config.num_samples = 800;
  auto exp = ExplainWithLime(&net, x, 1, config);
  ASSERT_TRUE(exp.ok());
  EXPECT_GT(exp->weights[0], 0.05);
  EXPECT_LT(exp->weights[2], -0.05);
  EXPECT_LT(std::abs(exp->weights[1]), 0.03)
      << "irrelevant feature should get ~zero weight";
  EXPECT_GT(exp->fidelity_r2, 0.9)
      << "a (sigmoid of) linear model is locally linear";
}

TEST(LimeTest, FidelityDropsForHighlyNonlinearModels) {
  Rng rng(11);
  Dataset data = MakeTwoMoons(600, 0.08, &rng);
  Sequential net = MakeMlp(2, {32, 32}, 2);
  net.Init(&rng);
  Adam opt(0.01);
  TrainConfig tc;
  tc.epochs = 30;
  Train(&net, &opt, data, tc);
  Tensor x({1, 2}, {0.5f, 0.25f});  // near the decision boundary
  LimeConfig narrow;
  narrow.perturb_std = 0.1;
  narrow.kernel_width = 0.3;
  LimeConfig wide;
  wide.perturb_std = 1.5;
  wide.kernel_width = 3.0;
  auto local = ExplainWithLime(&net, x, 1, narrow);
  auto global = ExplainWithLime(&net, x, 1, wide);
  ASSERT_TRUE(local.ok() && global.ok());
  EXPECT_GT(local->fidelity_r2, global->fidelity_r2)
      << "linear surrogates are only locally faithful";
}

// -------------------------------------------------------------- Saliency

TEST(SaliencyTest, LinearModelSaliencyIsWeightMagnitude) {
  Sequential net;
  net.Emplace<Dense>(3, 2);
  auto* dense = dynamic_cast<Dense*>(net.layer(0));
  dense->weight().Fill(0.0f);
  dense->weight().at(0, 0) = 3.0f;
  dense->weight().at(1, 0) = -1.0f;
  dense->bias().Fill(0.0f);
  Tensor x({1, 3}, {1.0f, 1.0f, 1.0f});
  auto saliency = SaliencyMap(&net, x, 0);
  ASSERT_TRUE(saliency.ok());
  EXPECT_FLOAT_EQ((*saliency)[0], 3.0f);
  EXPECT_FLOAT_EQ((*saliency)[1], 1.0f);
  EXPECT_FLOAT_EQ((*saliency)[2], 0.0f);
}

TEST(SaliencyTest, LeavesNoTrainingSideEffects) {
  Sequential net = MakeMlp(4, {8}, 3);
  Rng rng(12);
  net.Init(&rng);
  std::vector<float> before = net.GetParameterVector();
  Tensor x({1, 4});
  x.FillGaussian(&rng, 1.0f);
  ASSERT_TRUE(SaliencyMap(&net, x, 1).ok());
  EXPECT_EQ(net.GetParameterVector(), before);
  EXPECT_EQ(net.CachedBytes(), 0);
  for (Tensor* g : net.Grads()) {
    for (int64_t i = 0; i < g->size(); ++i) ASSERT_EQ((*g)[i], 0.0f);
  }
}

TEST(ActMaxTest, SynthesizedInputActivatesTarget) {
  Rng rng(13);
  Dataset data = MakeGaussianBlobs(600, 6, 3, 4.0, &rng);
  Sequential net = MakeMlp(6, {16}, 3);
  net.Init(&rng);
  Sgd opt(0.05, 0.9);
  TrainConfig tc;
  tc.epochs = 15;
  Train(&net, &opt, data, tc);
  ActMaxConfig config;
  auto synth = ActivationMaximization(&net, {1, 6}, 2, config);
  ASSERT_TRUE(synth.ok());
  Tensor logits = net.Forward(*synth, CacheMode::kNoCache);
  EXPECT_EQ(logits.ArgMax(), 2)
      << "the synthesized input should be classified as the target class";
}

TEST(ActMaxTest, RejectsBadShape) {
  Sequential net = MakeMlp(4, {4}, 2);
  Rng rng(14);
  net.Init(&rng);
  ActMaxConfig config;
  EXPECT_FALSE(ActivationMaximization(&net, {2, 4}, 0, config).ok());
  EXPECT_FALSE(ActivationMaximization(&net, {}, 0, config).ok());
}

// ----------------------------------------------------------- ModelStore

class ModelStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(15);
    data_ = MakeGaussianBlobs(64, 8, 3, 3.0, &rng);
    net_ = MakeMlp(8, {16, 16}, 3);
    net_.Init(&rng);
  }
  Dataset data_;
  Sequential net_;
};

TEST_F(ModelStoreTest, ExactModeIsLossless) {
  auto store = ModelStore::Capture(&net_, data_.x, StorageMode::kExact);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->num_layers(), net_.size());
  // Reference: run the model manually to the last layer.
  Tensor reference = net_.Forward(data_.x, CacheMode::kNoCache);
  auto err = store->MaxAbsError(store->num_layers() - 1, reference);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(*err, 0.0);
}

TEST_F(ModelStoreTest, QuantizedModeBoundsError) {
  auto store = ModelStore::Capture(&net_, data_.x, StorageMode::kQuantized);
  ASSERT_TRUE(store.ok());
  Tensor reference = net_.Forward(data_.x, CacheMode::kNoCache);
  auto err = store->MaxAbsError(store->num_layers() - 1, reference);
  ASSERT_TRUE(err.ok());
  // 8-bit quantization: error bounded by half a step of the layer range.
  float lo = reference[0], hi = reference[0];
  for (int64_t i = 0; i < reference.size(); ++i) {
    lo = std::min(lo, reference[i]);
    hi = std::max(hi, reference[i]);
  }
  EXPECT_LE(*err, (hi - lo) / 255.0 * 0.5 + 1e-5);
}

TEST_F(ModelStoreTest, QuantizedIsSmallerThanExact) {
  auto exact = ModelStore::Capture(&net_, data_.x, StorageMode::kExact);
  auto quant = ModelStore::Capture(&net_, data_.x, StorageMode::kQuantized);
  ASSERT_TRUE(exact.ok() && quant.ok());
  EXPECT_LT(quant->StoredBytes(), exact->StoredBytes() / 3);
}

TEST_F(ModelStoreTest, DedupSavesOnRepeatedInputs) {
  // A batch with many duplicated rows and wide layers (so per-row index
  // overhead is negligible): dedup must shrink storage substantially.
  Sequential wide = MakeMlp(8, {128, 128}, 3);
  Rng rng(16);
  wide.Init(&rng);
  Tensor repeated({64, 8});
  for (int64_t i = 0; i < 64; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      repeated[i * 8 + j] = data_.x[(i % 4) * 8 + j];
    }
  }
  auto quant = ModelStore::Capture(&wide, repeated, StorageMode::kQuantized);
  auto dedup =
      ModelStore::Capture(&wide, repeated, StorageMode::kQuantizedDedup);
  ASSERT_TRUE(quant.ok() && dedup.ok());
  EXPECT_LT(dedup->StoredBytes(), quant->StoredBytes() / 4);
  // Reconstruction must agree between the two lossy modes.
  auto a = quant->GetLayer(1);
  auto b = dedup->GetLayer(1);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int64_t i = 0; i < a->size(); ++i) ASSERT_EQ((*a)[i], (*b)[i]);
}

TEST_F(ModelStoreTest, TopUnitsMatchActivations) {
  auto store = ModelStore::Capture(&net_, data_.x, StorageMode::kExact);
  ASSERT_TRUE(store.ok());
  auto top = store->TopUnits(1, 0, 3);  // layer 1 = post-ReLU hidden
  ASSERT_TRUE(top.ok());
  auto layer = store->GetLayer(1);
  ASSERT_TRUE(layer.ok());
  // The first returned unit must hold the max activation of example 0.
  const int64_t width = layer->dim(1);
  float best = (*layer)[0 * width + (*top)[0]];
  for (int64_t u = 0; u < width; ++u) {
    EXPECT_LE((*layer)[u], best + 1e-6f);
  }
}

TEST_F(ModelStoreTest, QueriesValidateIndices) {
  auto store = ModelStore::Capture(&net_, data_.x, StorageMode::kExact);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->GetLayer(-1).ok());
  EXPECT_FALSE(store->GetLayer(99).ok());
  EXPECT_FALSE(store->TopUnits(0, 9999, 1).ok());
  EXPECT_FALSE(store->TopUnits(0, 0, 0).ok());
}

}  // namespace
}  // namespace dlsys
