#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/db/join.h"
#include "src/learned/join_order.h"

namespace dlsys {
namespace {

JoinQuery TwoRelationQuery() {
  JoinQuery q;
  q.cardinality = {1000.0, 100.0};
  q.selectivity = {{1.0, 0.01}, {0.01, 1.0}};
  return q;
}

TEST(JoinQueryTest, SubsetCardinalityFormula) {
  JoinQuery q = TwoRelationQuery();
  EXPECT_DOUBLE_EQ(SubsetCardinality(q, {0}), 1000.0);
  EXPECT_DOUBLE_EQ(SubsetCardinality(q, {1}), 100.0);
  // 1000 * 100 * 0.01 = 1000.
  EXPECT_NEAR(SubsetCardinality(q, {0, 1}), 1000.0, 1e-6);
}

TEST(JoinQueryTest, PlanCostIsSumOfIntermediates) {
  JoinQuery q;
  q.cardinality = {10.0, 20.0, 30.0};
  q.selectivity = {{1.0, 0.1, 0.1}, {0.1, 1.0, 0.1}, {0.1, 0.1, 1.0}};
  // Order 0,1,2: card({0,1}) = 10*20*0.1 = 20;
  // card({0,1,2}) = 10*20*30*0.1^3 = 6. Cost = 26.
  EXPECT_NEAR(PlanCost(q, {0, 1, 2}), 26.0, 1e-9);
}

TEST(JoinQueryTest, GeneratorIsConnectedAndInRange) {
  Rng rng(7);
  JoinQuery q = MakeJoinQuery(8, 0.2, &rng);
  EXPECT_EQ(q.num_relations(), 8);
  for (double c : q.cardinality) {
    EXPECT_GE(c, 100.0);
    EXPECT_LE(c, 1e7);
  }
  // Spanning tree: at least n-1 predicate edges.
  int64_t edges = 0;
  for (int64_t a = 0; a < 8; ++a) {
    for (int64_t b = a + 1; b < 8; ++b) {
      if (q.selectivity[static_cast<size_t>(a)][static_cast<size_t>(b)] <
          1.0) {
        ++edges;
      }
      EXPECT_DOUBLE_EQ(
          q.selectivity[static_cast<size_t>(a)][static_cast<size_t>(b)],
          q.selectivity[static_cast<size_t>(b)][static_cast<size_t>(a)]);
    }
  }
  EXPECT_GE(edges, 7);
}

TEST(OptimalTest, RejectsHugeQueries) {
  JoinQuery q;
  q.cardinality.assign(21, 10.0);
  q.selectivity.assign(21, std::vector<double>(21, 1.0));
  EXPECT_FALSE(OptimalLeftDeep(q).ok());
}

// Property sweep: DP optimum matches exhaustive enumeration for small n.
class DpVsExhaustive : public ::testing::TestWithParam<int64_t> {};

TEST_P(DpVsExhaustive, DpMatchesBruteForce) {
  const int64_t n = GetParam();
  Rng rng(100 + static_cast<uint64_t>(n));
  JoinQuery q = MakeJoinQuery(n, 0.3, &rng);
  auto dp = OptimalLeftDeep(q);
  ASSERT_TRUE(dp.ok());
  const double dp_cost = PlanCost(q, *dp);
  // Brute force over all permutations.
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  double best = 1e300;
  do {
    best = std::min(best, PlanCost(q, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(dp_cost, best, best * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SmallN, DpVsExhaustive, ::testing::Values(3, 4, 5, 6));

TEST(BaselineTest, GreedyAndRandomProduceValidPermutations) {
  Rng rng(11);
  JoinQuery q = MakeJoinQuery(9, 0.2, &rng);
  for (auto order : {GreedyLeftDeep(q), RandomOrder(q, &rng)}) {
    std::sort(order.begin(), order.end());
    for (int64_t i = 0; i < 9; ++i) {
      EXPECT_EQ(order[static_cast<size_t>(i)], i);
    }
  }
}

TEST(BaselineTest, GreedyBeatsRandomOnAverage) {
  Rng rng(13);
  double greedy_total = 0.0, random_total = 0.0;
  for (int i = 0; i < 30; ++i) {
    JoinQuery q = MakeJoinQuery(8, 0.25, &rng);
    greedy_total += std::log10(PlanCost(q, GreedyLeftDeep(q)));
    random_total += std::log10(PlanCost(q, RandomOrder(q, &rng)));
  }
  EXPECT_LT(greedy_total, random_total);
}

// ---------------------------------------------------------- Learned

TEST(LearnedJoinTest, RejectsBadConfig) {
  JoinOptimizerConfig config;
  config.relations_min = 1;
  EXPECT_FALSE(LearnedJoinOptimizer::Train(config).ok());
  config.relations_min = 4;
  config.relations_max = 3;
  EXPECT_FALSE(LearnedJoinOptimizer::Train(config).ok());
  config.relations_max = 8;
  config.training_queries = 0;
  EXPECT_FALSE(LearnedJoinOptimizer::Train(config).ok());
}

TEST(LearnedJoinTest, FeaturesAreFiniteAndBounded) {
  Rng rng(17);
  JoinQuery q = MakeJoinQuery(6, 0.3, &rng);
  float f[LearnedJoinOptimizer::kNumFeatures];
  LearnedJoinOptimizer::Featurize(q, {0, 2}, 4, f);
  for (float v : f) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LE(std::abs(v), 4.0f);
  }
}

TEST(LearnedJoinTest, PlansAreValidPermutations) {
  JoinOptimizerConfig config;
  config.training_queries = 30;
  config.episodes_per_query = 2;
  config.fit_epochs = 10;
  auto opt = LearnedJoinOptimizer::Train(config);
  ASSERT_TRUE(opt.ok());
  Rng rng(19);
  JoinQuery q = MakeJoinQuery(7, 0.25, &rng);
  std::vector<int64_t> order = opt->PlanFor(q);
  std::sort(order.begin(), order.end());
  for (int64_t i = 0; i < 7; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(LearnedJoinTest, BeatsRandomApproachesGreedy) {
  JoinOptimizerConfig config;
  config.training_queries = 150;
  config.episodes_per_query = 4;
  config.fit_epochs = 40;
  auto opt = LearnedJoinOptimizer::Train(config);
  ASSERT_TRUE(opt.ok());
  Rng rng(23);
  double learned_lc = 0.0, greedy_lc = 0.0, random_lc = 0.0, opt_lc = 0.0;
  const int trials = 25;
  for (int i = 0; i < trials; ++i) {
    JoinQuery q = MakeJoinQuery(8, 0.25, &rng);
    auto best = OptimalLeftDeep(q);
    ASSERT_TRUE(best.ok());
    opt_lc += std::log10(PlanCost(q, *best));
    learned_lc += std::log10(PlanCost(q, opt->PlanFor(q)));
    greedy_lc += std::log10(PlanCost(q, GreedyLeftDeep(q)));
    random_lc += std::log10(PlanCost(q, RandomOrder(q, &rng)));
  }
  EXPECT_LT(learned_lc, random_lc)
      << "learned optimizer must clearly beat random orders";
  // Within ~1.5 orders of magnitude of greedy on average (shape check;
  // see bench for the full comparison).
  EXPECT_LT(learned_lc / trials, greedy_lc / trials + 1.5);
  EXPECT_GE(learned_lc, opt_lc - 1e-9);
}

}  // namespace
}  // namespace dlsys
