// Cross-module integration tests: each exercises a full pipeline the
// examples demonstrate, asserting end-to-end invariants rather than
// per-module behaviour.

#include <gtest/gtest.h>

#include "src/compress/distill.h"
#include "src/compress/pruning.h"
#include "src/compress/quantization.h"
#include "src/data/synthetic.h"
#include "src/db/histogram.h"
#include "src/distributed/cluster.h"
#include "src/distributed/compressor.h"
#include "src/fairness/datasheet.h"
#include "src/fairness/loan_data.h"
#include "src/fairness/metrics.h"
#include "src/fairness/mitigation.h"
#include "src/green/energy.h"
#include "src/interpret/lime.h"
#include "src/learned/cardinality.h"
#include "src/learned/learned_index.h"
#include "src/memsched/checkpoint.h"
#include "src/nn/serialize.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"
#include "src/tensor/ops.h"

namespace dlsys {
namespace {

TEST(IntegrationTest, CompressPipelineKeepsAccuracyAtTenPercentSize) {
  // Train -> distill -> prune -> quantize; the full Section 2.1 chain
  // must end far smaller with bounded accuracy loss.
  Rng rng(1);
  Dataset data = MakeGaussianBlobs(2500, 12, 6, 3.0, &rng);
  auto split = Split(data, 0.8);
  Sequential teacher = MakeMlp(12, {96, 96}, 6);
  teacher.Init(&rng);
  Sgd topt(0.05, 0.9);
  TrainConfig tc;
  tc.epochs = 20;
  Train(&teacher, &topt, split.train, tc);
  const double teacher_acc = Evaluate(&teacher, split.test).accuracy;

  Sequential student = MakeMlp(12, {24}, 6);
  student.Init(&rng);
  Sgd sopt(0.05, 0.9);
  DistillConfig dc;
  dc.epochs = 20;
  ASSERT_TRUE(Distill(&teacher, &student, &sopt, split.train, dc).ok());

  auto mask = BuildPruneMask(&student, PruneCriterion::kMagnitude, 0.5,
                             nullptr, nullptr);
  ASSERT_TRUE(mask.ok());
  mask->Apply(&student);
  Sgd fopt(0.02, 0.9);
  TrainConfig ft;
  ft.epochs = 4;
  ft.on_step = [&](int64_t, int64_t, double) { mask->Apply(&student); };
  Train(&student, &fopt, split.train, ft);

  auto nq = QuantizeNetwork(&student, QuantizerKind::kUniform, 8);
  ASSERT_TRUE(nq.ok());

  const double final_acc = Evaluate(&student, split.test).accuracy;
  EXPECT_GT(final_acc, teacher_acc - 0.06);
  EXPECT_LT(nq->packed_bytes, teacher.ModelBytes() / 10);
}

TEST(IntegrationTest, DeployedModelSurvivesSaveLoadAfterCompression) {
  Rng rng(2);
  Dataset data = MakeGaussianBlobs(800, 8, 4, 3.0, &rng);
  Sequential net = MakeMlp(8, {16}, 4);
  net.Init(&rng);
  Sgd opt(0.05, 0.9);
  TrainConfig tc;
  tc.epochs = 10;
  Train(&net, &opt, data, tc);
  ASSERT_TRUE(QuantizeNetwork(&net, QuantizerKind::kKMeans, 6).ok());
  const std::string path = ::testing::TempDir() + "/compressed.dlsy";
  ASSERT_TRUE(SaveParameters(net, path).ok());
  Sequential restored = MakeMlp(8, {16}, 4);
  Rng rng2(77);
  restored.Init(&rng2);
  ASSERT_TRUE(LoadParameters(&restored, path).ok());
  Tensor a = net.Forward(data.x, CacheMode::kNoCache);
  Tensor b = restored.Forward(data.x, CacheMode::kNoCache);
  for (int64_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(IntegrationTest, DistributedCompressedCheckpointedTrainingConverges) {
  // Distributed simulation with gradient compression, followed by
  // single-node checkpointed finetuning of the averaged model.
  Rng rng(3);
  Dataset data = MakeGaussianBlobs(1500, 8, 4, 3.0, &rng);
  auto split = Split(data, 0.8);
  Sequential arch = MakeMlp(8, {24, 24}, 4);
  arch.Init(&rng);
  ClusterConfig config;
  config.workers = 4;
  config.rounds = 120;
  TopKCompressor topk(0.2);
  auto result = TrainOnCluster(arch, split.train, config, &topk);
  ASSERT_TRUE(result.ok());
  Sequential model = result->model.Clone();
  Sgd opt(0.02);
  CheckpointPlan plan = PlanSqrtN(model.size());
  for (BatchIterator it(split.train, 64); !it.Done(); it.Next()) {
    ASSERT_TRUE(CheckpointedStep(&model, &opt, it.Get(), plan).ok());
  }
  EXPECT_GT(Evaluate(&model, split.test).accuracy, 0.85);
}

TEST(IntegrationTest, FairLendingPipelineEndToEnd) {
  // Datasheet flags the bias -> reweigh -> train -> audit improves ->
  // LIME explains a decision with finite weights.
  LoanDataConfig lc;
  lc.n = 3000;
  lc.bias_strength = 0.6;
  LoanData loans = MakeLoanData(lc);
  auto sheet = GenerateDatasheet(loans.data, loans.group);
  ASSERT_TRUE(sheet.ok());
  EXPECT_FALSE(sheet->warnings.empty()) << "datasheet must flag the bias";

  auto reweighed = ReweighDataset(loans.data, loans.group, 5);
  ASSERT_TRUE(reweighed.ok());
  Sequential net = MakeMlp(5, {16}, 2);
  Rng rng(4);
  net.Init(&rng);
  Sgd opt(0.05, 0.9);
  TrainConfig tc;
  tc.epochs = 20;
  Train(&net, &opt, reweighed->data, tc);

  auto audit = AuditFairness(Predict(&net, loans.data.x), loans.fair_label,
                             loans.group);
  ASSERT_TRUE(audit.ok());
  EXPECT_GT(audit->DisparateImpactRatio(), 0.6);
  EXPECT_GT(audit->OverallAccuracy(), 0.75);

  Tensor x = SliceRows(loans.data.x, 0, 1);
  LimeConfig lime;
  auto explanation = ExplainWithLime(&net, x, 1, lime);
  ASSERT_TRUE(explanation.ok());
  for (double w : explanation->weights) EXPECT_TRUE(std::isfinite(w));
}

TEST(IntegrationTest, LearnedComponentsAgreeWithClassicalOnes) {
  // The learned index finds exactly what the B+-tree path would; the
  // learned estimator and AVI both approximate the same truth.
  Rng rng(5);
  Table t = MakeCorrelatedTable(4000, 3, 0.7, &rng);
  AviEstimator avi(t, 32);
  Rng wrng(6);
  auto queries = MakeWorkload(t, 120, &wrng);
  CardinalityConfig cc;
  cc.epochs = 40;
  auto learned = LearnedCardinality::Train(t, queries, cc);
  ASSERT_TRUE(learned.ok());
  for (size_t i = 0; i < 20; ++i) {
    const double truth = TrueSelectivity(t, queries[i]);
    // Both estimators within a factor 50 of truth (sanity, not quality).
    EXPECT_LT(QError(avi.Estimate(queries[i]), truth), 50.0);
    EXPECT_LT(QError(learned->Estimate(queries[i]), truth), 50.0);
  }
}

TEST(IntegrationTest, TrainingFootprintFlowsIntoPlacement) {
  Rng rng(7);
  Sequential net = MakeMlp(64, {256, 256}, 10);
  TrainingJob job = TrainingJob::ForNetwork(net, 100000, 50);
  EXPECT_GT(job.total_flops, 0.0);
  auto hardware = StandardHardware();
  auto regions = StandardRegions();
  auto placement = CarbonAwarePlacement(job, hardware, regions, 1e9);
  ASSERT_TRUE(placement.ok());
  auto naive = FastestPlacement(job, hardware, regions);
  ASSERT_TRUE(naive.ok());
  EXPECT_LE(placement->footprint.co2_grams, naive->footprint.co2_grams);
  // Temporal shifting on top of spatial placement.
  std::vector<double> forecast(48, 400.0);
  for (int h = 30; h < 38; ++h) forecast[static_cast<size_t>(h)] = 30.0;
  auto schedule = CarbonAwareStartTime(
      job, hardware[static_cast<size_t>(placement->hardware_index)], 1.2,
      forecast, 48);
  ASSERT_TRUE(schedule.ok());
  EXPECT_GE(schedule->start_hour, 30);
  EXPECT_LT(schedule->start_hour, 38);
}

}  // namespace
}  // namespace dlsys
