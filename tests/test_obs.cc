// Tests for the observability layer (src/obs): sharded counters under
// real concurrency, snapshot/diff semantics, registry exporters, span
// recording and the ring drain protocol, Chrome trace export, request
// lifecycle reconstruction by rid, per-phase cost attribution feeding
// src/green, critical-path latency decomposition (bitwise telescoping,
// trace-derived rebuild, windowed series with exemplars), multi-window
// SLO burn-rate alerting, and the determinism contract (traced and
// untraced engine outputs bitwise identical at DLSYS_THREADS 1/2/8).
//
// Everything that touches the *macro* sites or span recording is guarded
// with #if DLSYS_OBS so the suite also passes in a -DDLSYS_OBS=0 build
// (the CI kill-switch job); the direct registry/phase APIs are always
// compiled and tested unconditionally.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/rng.h"
#include "src/data/synthetic.h"
#include "src/fleet/chaos.h"
#include "src/fleet/fleet.h"
#include "src/green/energy.h"
#include "src/infer/engine.h"
#include "src/nn/train.h"
#include "src/obs/attribution.h"
#include "src/obs/cost.h"
#include "src/obs/counters.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/runtime/runtime.h"
#include "src/serve/loadgen.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"

namespace dlsys {
namespace {

using obs::CounterRegistry;

// -------------------------------------------------------------- counters

TEST(CounterTest, ShardedSumAcrossThreads) {
  obs::Counter* c = CounterRegistry::Global().counter("test.sharded_sum");
  const int64_t before = c->Value();
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c]() {
      for (int64_t i = 0; i < kPerThread; ++i) c->Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value() - before, kThreads * kPerThread);
}

TEST(CounterRegistryTest, HandlesAreInternedAndStable) {
  CounterRegistry& reg = CounterRegistry::Global();
  obs::Counter* a = reg.counter("test.interned");
  obs::Counter* b = reg.counter("test.interned");
  EXPECT_EQ(a, b);
  // Reset zeroes values but never invalidates handles (macro sites cache
  // them in function-local statics).
  a->Add(5);
  const int64_t v = a->Value();
  EXPECT_GE(v, 5);
  EXPECT_EQ(reg.counter("test.interned"), a);
}

TEST(CounterRegistryTest, SnapshotDiffSemantics) {
  CounterRegistry& reg = CounterRegistry::Global();
  const CounterRegistry::Snapshot base = reg.SnapshotCounters();
  reg.counter("test.diff.a")->Add(3);
  reg.counter("test.diff.a")->Add(4);
  reg.gauge("test.diff.g")->Set(11);
  const CounterRegistry::Snapshot now = reg.SnapshotCounters();
  const CounterRegistry::Snapshot diff = CounterRegistry::Diff(now, base);
  EXPECT_EQ(diff.at("test.diff.a"), 7);  // new keys diff against 0
  EXPECT_EQ(diff.at("test.diff.g"), 11);
  // Keys absent from `now` are dropped, not negated.
  for (const auto& [key, value] : diff) {
    EXPECT_TRUE(now.count(key)) << key;
    (void)value;
  }
}

TEST(CounterRegistryTest, ExportersRenderRegisteredMetrics) {
  CounterRegistry& reg = CounterRegistry::Global();
  reg.counter("test.export.count")->Add(2);
  reg.gauge("test.export.gauge")->Set(9);
  obs::SharedHistogram* h = reg.histogram("test.export.hist_ms");
  h->Record(1.0);
  h->Record(3.0);

  const std::string text = reg.ExportText();
  EXPECT_NE(text.find("test.export.count"), std::string::npos);
  EXPECT_NE(text.find("test.export.gauge"), std::string::npos);
  EXPECT_NE(text.find("test.export.hist_ms"), std::string::npos);

  const std::string json = reg.ExportJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export.hist_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos);
  // Balanced braces: a cheap well-formedness check with no JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(CounterRegistryTest, SharedHistogramQuantilesAndReset) {
  obs::SharedHistogram* h =
      CounterRegistry::Global().histogram("test.hist.quantiles");
  h->Reset();
  for (int i = 1; i <= 100; ++i) h->Record(static_cast<double>(i));
  EXPECT_EQ(h->Count(), 100);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 100.0);
  EXPECT_GE(h->Quantile(0.99), h->Quantile(0.5));
  EXPECT_DOUBLE_EQ(
      CounterRegistry::Global().HistogramQuantile("test.hist.quantiles", 1.0),
      100.0);
  EXPECT_EQ(CounterRegistry::Global().HistogramQuantile("test.hist.absent",
                                                        0.5),
            0.0);
  h->Reset();
  EXPECT_EQ(h->Count(), 0);
}

// ------------------------------------------------------- cost accounting

TEST(PhaseCostTest, ScopesNestAndAttributeToCurrentPhase) {
  const obs::PhaseCost before = obs::PhaseTotals();
  EXPECT_EQ(obs::CurrentPhase(), obs::Phase::kOther);
  {
    obs::PhaseScope fwd(obs::Phase::kForward);
    EXPECT_EQ(obs::CurrentPhase(), obs::Phase::kForward);
    obs::AddFlops(100);
    {
      obs::PhaseScope serve(obs::Phase::kServe);
      EXPECT_EQ(obs::CurrentPhase(), obs::Phase::kServe);
      obs::AddFlops(10);
      obs::AddBytes(7);
    }
    EXPECT_EQ(obs::CurrentPhase(), obs::Phase::kForward);
    obs::AddFlops(1);
  }
  EXPECT_EQ(obs::CurrentPhase(), obs::Phase::kOther);
  const obs::PhaseCost after = obs::PhaseTotals();
  const auto fwd_i = static_cast<size_t>(obs::Phase::kForward);
  const auto srv_i = static_cast<size_t>(obs::Phase::kServe);
  EXPECT_EQ(after.flops[fwd_i] - before.flops[fwd_i], 101);
  EXPECT_EQ(after.flops[srv_i] - before.flops[srv_i], 10);
  EXPECT_EQ(after.bytes[srv_i] - before.bytes[srv_i], 7);
  EXPECT_GE(after.TotalFlops() - before.TotalFlops(), 111);
}

TEST(PhaseCostTest, EstimatePhaseFootprintRows) {
  obs::PhaseCost cost;
  cost.flops[static_cast<size_t>(obs::Phase::kForward)] = 4'000'000'000;
  cost.flops[static_cast<size_t>(obs::Phase::kBackward)] = 8'000'000'000;
  cost.flops[static_cast<size_t>(obs::Phase::kServe)] = 1'000'000'000;
  const HardwareProfile hw = StandardHardware()[0];
  const Region region = StandardRegions()[0];
  auto rows = EstimatePhaseFootprint(cost, hw, region);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);  // zero-FLOP phases omitted
  // Sorted by descending energy: backward > forward > serve.
  EXPECT_EQ((*rows)[0].phase, "backward");
  EXPECT_EQ((*rows)[1].phase, "forward");
  EXPECT_EQ((*rows)[2].phase, "serve");
  for (const PhaseEnergyRow& row : *rows) {
    EXPECT_GT(row.runtime_seconds, 0.0);
    EXPECT_GT(row.energy_joules, 0.0);
    EXPECT_GT(row.co2_grams, 0.0);
  }
  // Energy scales linearly with FLOPs under the effective-FLOPs model.
  EXPECT_DOUBLE_EQ((*rows)[0].energy_joules, 2.0 * (*rows)[1].energy_joules);

  HardwareProfile bad = hw;
  bad.utilization = 0.0;
  EXPECT_FALSE(EstimatePhaseFootprint(cost, bad, region).ok());
}

// ---------------------------------------- critical-path decomposition

/// Builds a path record from boundary times in simulated ms, quantized
/// with the same SimNs the production emitters use.
obs::RequestPathRecord PathRecord(int64_t rid, double send_ms,
                                  double admit_ms, double quota_ms,
                                  double dispatch_ms, double finish_ms,
                                  double deliver_ms, bool ok = true,
                                  const std::string& tenant = "default",
                                  int replica = 0) {
  obs::RequestPathRecord r;
  r.rid = rid;
  r.tenant = tenant;
  r.replica = replica;
  r.slot = 0;
  r.send_ns = obs::SimNs(send_ms);
  r.admit_ns = obs::SimNs(admit_ms);
  r.quota_open_ns = obs::SimNs(quota_ms);
  r.dispatch_ns = obs::SimNs(dispatch_ms);
  r.finish_ns = obs::SimNs(finish_ms);
  r.deliver_ns = obs::SimNs(deliver_ms);
  r.deadline_ok = ok;
  return r;
}

TEST(AttributionTest, DecomposePathTelescopesBitwise) {
  // Awkward fractions that do not round-trip in binary floating point:
  // the integer telescoping must still sum exactly, with admission a
  // zero-width schema slot.
  const obs::RequestPathRecord rec =
      PathRecord(7, 0.1, 0.30000000000000004, 1.7, 2.9, 7.77, 8.03);
  const obs::PathComponents c = obs::DecomposePath(rec);
  EXPECT_EQ(c[obs::PathComponent::kRouteHop], rec.admit_ns - rec.send_ns);
  EXPECT_EQ(c[obs::PathComponent::kAdmission], 0);
  EXPECT_EQ(c[obs::PathComponent::kQuotaDelay],
            rec.quota_open_ns - rec.admit_ns);
  EXPECT_EQ(c[obs::PathComponent::kSlotWait],
            rec.dispatch_ns - rec.quota_open_ns);
  EXPECT_EQ(c[obs::PathComponent::kExecute], rec.finish_ns - rec.dispatch_ns);
  EXPECT_EQ(c[obs::PathComponent::kReturnHop],
            rec.deliver_ns - rec.finish_ns);
  EXPECT_EQ(c.total_ns(), rec.deliver_ns - rec.send_ns);
  // Component names are stable: they key dashboards and alert payloads.
  EXPECT_STREQ(obs::PathComponentName(obs::PathComponent::kRouteHop),
               "route_hop");
  EXPECT_STREQ(obs::PathComponentName(obs::PathComponent::kExecute),
               "execute");
  // The span-id scheme never collides across requests or stages.
  EXPECT_EQ(obs::RequestSpanId(7), 7 * obs::kSpanStride);
  EXPECT_EQ(obs::ComponentSpanId(7, obs::PathComponent::kRouteHop),
            7 * obs::kSpanStride + 1);
  EXPECT_EQ(obs::QueueSpanId(7), 7 * obs::kSpanStride + 7);
  EXPECT_LT(obs::QueueSpanId(7), obs::RequestSpanId(8));
}

TEST(AttributionTest, ComponentsFromTraceRebuildsPerRidSums) {
  obs::TraceBuffer buf;
  const auto push = [&](const char* name, int64_t rid, int64_t ts,
                        int64_t dur) {
    obs::TraceEvent ev;
    ev.name = name;
    ev.cat = "test";
    ev.ts_ns = ts;
    ev.dur_ns = dur;
    ev.rid = rid;
    ev.pid = obs::kSimTrack;
    buf.events.push_back(ev);
  };
  push("fleet.route", 3, 0, 100);
  push("serve.quota_wait", 3, 100, 40);
  push("serve.slot_wait", 3, 140, 60);
  push("serve.execute", 3, 200, 500);
  push("fleet.return", 3, 700, 25);
  push("serve.execute", 4, 0, 80);
  push("serve.queue", 3, 100, 100);  // umbrella span: not a component
  push("fleet.request", 3, 0, 725);  // root span: not a component
  const std::map<int64_t, obs::PathComponents> by_rid =
      obs::ComponentsFromTrace(buf);
  ASSERT_EQ(by_rid.size(), 2u);
  const obs::PathComponents& c = by_rid.at(3);
  EXPECT_EQ(c[obs::PathComponent::kRouteHop], 100);
  EXPECT_EQ(c[obs::PathComponent::kQuotaDelay], 40);
  EXPECT_EQ(c[obs::PathComponent::kSlotWait], 60);
  EXPECT_EQ(c[obs::PathComponent::kExecute], 500);
  EXPECT_EQ(c[obs::PathComponent::kReturnHop], 25);
  EXPECT_EQ(c.total_ns(), 725);
  EXPECT_EQ(by_rid.at(4)[obs::PathComponent::kExecute], 80);
}

TEST(AttributionTest, AggregatorWindowsSumsAndExemplars) {
  obs::AttributionConfig config;
  config.window_ms = 10.0;
  config.exemplars_per_window = 2;
  obs::AttributionAggregator agg(config);
  // Window 0 (by delivery time): totals 3 ms, 5 ms, 4 ms.
  agg.Record(PathRecord(0, 0.0, 1.0, 1.0, 2.0, 3.0, 3.0, true, "a", 0));
  agg.Record(PathRecord(1, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, false, "b", 1));
  agg.Record(PathRecord(2, 2.0, 3.0, 3.0, 4.0, 5.0, 6.0, true, "a", 0));
  // Window 2; the gap window 1 must render as an explicit empty window.
  agg.Record(PathRecord(3, 24.0, 25.0, 25.0, 26.0, 27.0, 27.0, true, "b", 1));

  const obs::AttributionReport& rep = agg.report();
  ASSERT_EQ(rep.fleet.size(), 3u);
  EXPECT_EQ(rep.fleet[0].count, 3);
  EXPECT_EQ(rep.fleet[0].violations, 1);
  EXPECT_EQ(rep.fleet[1].count, 0);
  EXPECT_EQ(rep.fleet[2].count, 1);
  // Sums telescope: 1 ms of route hop per request in window 0.
  EXPECT_EQ(rep.fleet[0].sums[obs::PathComponent::kRouteHop],
            obs::SimNs(3.0));
  // Exemplars keep the k slowest, slowest first: rid 1 (5 ms), rid 2
  // (4 ms); rid 0 (3 ms) is evicted.
  ASSERT_EQ(rep.fleet[0].exemplars.size(), 2u);
  EXPECT_EQ(rep.fleet[0].exemplars[0].rid, 1);
  EXPECT_EQ(rep.fleet[0].exemplars[1].rid, 2);
  EXPECT_EQ(rep.fleet[0].exemplars[0].total_ns, obs::SimNs(5.0));
  // Tenant and replica slices fold the same records.
  ASSERT_EQ(rep.tenants.count("a"), 1u);
  EXPECT_EQ(rep.tenants.at("a")[0].count, 2);
  EXPECT_EQ(rep.tenants.at("b")[0].violations, 1);
  EXPECT_EQ(rep.replicas.at(1)[0].count, 1);

  const std::string json = obs::AttributionReportJson(rep);
  EXPECT_NE(json.find("\"fleet\": ["), std::string::npos);
  EXPECT_NE(json.find("\"tenants\": {"), std::string::npos);
  EXPECT_NE(json.find("\"replicas\": {"), std::string::npos);
  EXPECT_NE(json.find("\"route_hop\""), std::string::npos);
  EXPECT_NE(json.find("\"exemplars\": ["), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json, obs::AttributionReportJson(rep)) << "render is stable";
}

// --------------------------------------------- SLO burn-rate alerting

TEST(SloTest, BurnAlerterEdgeTriggersWithDominantComponent) {
  obs::BurnRateConfig config;
  config.slo_target = 0.9;  // 10% error budget
  config.window_ms = 10.0;
  config.fast_windows = 1;
  config.slow_windows = 5;
  config.fast_burn_threshold = 5.0;  // fast violation fraction >= 0.5
  config.slow_burn_threshold = 2.0;  // slow violation fraction >= 0.2
  config.min_requests = 5;
  obs::BurnRateAlerter alerter(config);
  // Execute-heavy path: 0.2 ms route, 2.0 ms execute, 0.2 ms return.
  const auto feed = [&](int64_t rid, double t_ms, bool ok) {
    const obs::RequestPathRecord r =
        PathRecord(rid, t_ms - 2.4, t_ms - 2.2, t_ms - 2.2, t_ms - 2.2,
                   t_ms - 0.2, t_ms, ok);
    alerter.Record(r, obs::DecomposePath(r));
  };
  int64_t rid = 0;
  const auto bucket = [&](int b, bool ok) {
    for (int i = 0; i < 4; ++i) feed(rid++, b * 10.0 + 3.0, ok);
  };
  for (int b = 0; b < 5; ++b) bucket(b, true);    // clean baseline
  for (int b = 5; b < 8; ++b) bucket(b, false);   // sustained incident
  for (int b = 8; b < 13; ++b) bucket(b, true);   // recovered
  for (int b = 13; b < 16; ++b) bucket(b, false); // second incident

  const std::vector<obs::BurnAlert> alerts = alerter.Evaluate();
  std::vector<obs::BurnAlert> fleet;
  for (const obs::BurnAlert& a : alerts) {
    if (a.scope == "fleet") fleet.push_back(a);
  }
  ASSERT_EQ(fleet.size(), 2u)
      << "edge-triggered: one page per incident, re-armed between them";
  // First page at the close of bucket 5: fast window fully violating
  // (burn 10), slow window at 4/20 = 0.2 (burn 2.0, exactly at the
  // threshold).
  EXPECT_DOUBLE_EQ(fleet[0].t_ms, 60.0);
  EXPECT_DOUBLE_EQ(fleet[0].fast_burn, 10.0);
  EXPECT_DOUBLE_EQ(fleet[0].slow_burn, 2.0);
  EXPECT_DOUBLE_EQ(fleet[1].t_ms, 140.0);
  for (const obs::BurnAlert& a : fleet) {
    EXPECT_EQ(a.dominant, obs::PathComponent::kExecute);
    EXPECT_NEAR(a.dominant_share, 2.0 / 2.4, 1e-9);
  }
  // The single tenant mirrors the fleet scope, and the export is a
  // deterministic array ordered by (time, scope).
  const std::string json = obs::BurnAlertsJson(alerts);
  EXPECT_NE(json.find("\"scope\": \"fleet\""), std::string::npos);
  EXPECT_NE(json.find("\"scope\": \"tenant:default\""), std::string::npos);
  EXPECT_NE(json.find("\"dominant\": \"execute\""), std::string::npos);
  for (size_t i = 1; i < alerts.size(); ++i) {
    EXPECT_LE(alerts[i - 1].t_ms, alerts[i].t_ms);
  }
}

TEST(SloTest, LatencySloCountsSlowButDeliveredRequests) {
  obs::BurnRateConfig config;
  config.slo_target = 0.9;
  config.slo_latency_ms = 1.0;  // every 2.4 ms path below violates
  config.window_ms = 10.0;
  config.fast_windows = 1;
  config.slow_windows = 2;
  config.fast_burn_threshold = 5.0;
  config.slow_burn_threshold = 2.0;
  config.min_requests = 1;
  obs::BurnRateAlerter alerter(config);
  for (int64_t rid = 0; rid < 8; ++rid) {
    const obs::RequestPathRecord r =
        PathRecord(rid, 1.0, 1.2, 1.2, 1.2, 3.2, 3.4, /*ok=*/true);
    alerter.Record(r, obs::DecomposePath(r));
  }
  const std::vector<obs::BurnAlert> alerts = alerter.Evaluate();
  ASSERT_FALSE(alerts.empty())
      << "inside-deadline requests over the latency SLO must burn budget";
  EXPECT_EQ(alerts[0].dominant, obs::PathComponent::kExecute);
}

TEST(SloTest, CleanSeriesRaisesNoAlerts) {
  obs::BurnRateConfig config;
  config.min_requests = 1;
  obs::BurnRateAlerter alerter(config);
  for (int64_t rid = 0; rid < 200; ++rid) {
    const obs::RequestPathRecord r = PathRecord(
        rid, rid * 1.0, rid * 1.0 + 0.1, rid * 1.0 + 0.1, rid * 1.0 + 0.2,
        rid * 1.0 + 1.2, rid * 1.0 + 1.3, /*ok=*/true);
    alerter.Record(r, obs::DecomposePath(r));
  }
  EXPECT_TRUE(alerter.Evaluate().empty());
  EXPECT_EQ(obs::BurnAlertsJson({}), "[]");
}

#if DLSYS_OBS

// ------------------------------------------------------- span recording

/// Drains pending events so the next drain sees only this test's spans.
void ScopeTraceToTest() {
  obs::SetTracingEnabled(false);
  obs::SetTraceSampling(1);
  (void)obs::DrainTrace();
}

TEST(TraceTest, DisabledRecordsNothing) {
  ScopeTraceToTest();
  {
    DLSYS_TRACE_SPAN("test.disabled", "test");
    DLSYS_TRACE_SPAN_COST("test.disabled_cost", "test", 1, 2);
  }
  EXPECT_TRUE(obs::DrainTrace().events.empty());
}

TEST(TraceTest, SpansNestAndDrainOnce) {
  ScopeTraceToTest();
  obs::SetTracingEnabled(true);
  {
    DLSYS_TRACE_SPAN("test.outer", "test");
    {
      DLSYS_TRACE_SPAN("test.inner", "test");
    }
    {
      DLSYS_TRACE_SPAN("test.inner", "test");
    }
  }
  obs::SetTracingEnabled(false);
  const obs::TraceBuffer buf = obs::DrainTrace();
  int outer = 0, inner = 0;
  for (const obs::TraceEvent& ev : buf.events) {
    if (std::strcmp(ev.name, "test.outer") == 0) {
      ++outer;
      EXPECT_GE(ev.dur_ns, 0);
      EXPECT_EQ(ev.pid, 1);
    }
    if (std::strcmp(ev.name, "test.inner") == 0) ++inner;
  }
  EXPECT_EQ(outer, 1);
  EXPECT_EQ(inner, 2);
  // Drains are cursor-based: a second drain returns nothing new.
  EXPECT_TRUE(obs::DrainTrace().events.empty());

  // Self-time: the outer span's self excludes its two children.
  obs::TraceBuffer again = buf;
  const std::vector<obs::SpanStat> stats = obs::SelfTimeByName(again);
  double outer_total = 0.0, outer_self = 0.0, inner_total = 0.0;
  for (const obs::SpanStat& s : stats) {
    if (s.name == "test.outer") {
      outer_total = s.total_ms;
      outer_self = s.self_ms;
    }
    if (s.name == "test.inner") inner_total = s.total_ms;
  }
  EXPECT_GE(outer_total, inner_total);
  EXPECT_LE(outer_self, outer_total);
  EXPECT_NEAR(outer_self, outer_total - inner_total, 1e-9);
}

TEST(TraceTest, SamplingReducesEvents) {
  ScopeTraceToTest();
  constexpr int kSpans = 64;
  obs::SetTracingEnabled(true);

  obs::SetTraceSampling(1);
  for (int i = 0; i < kSpans; ++i) {
    DLSYS_TRACE_SPAN("test.sample_full", "test");
  }
  const size_t full = obs::DrainTrace().events.size();

  obs::SetTraceSampling(4);
  for (int i = 0; i < kSpans; ++i) {
    DLSYS_TRACE_SPAN("test.sample_quarter", "test");
  }
  const size_t sampled = obs::DrainTrace().events.size();

  obs::SetTracingEnabled(false);
  obs::SetTraceSampling(1);
  EXPECT_EQ(full, static_cast<size_t>(kSpans));
  EXPECT_EQ(sampled, static_cast<size_t>(kSpans / 4));
}

TEST(TraceTest, ExplicitBeginEndPairs) {
  ScopeTraceToTest();
  obs::SetTracingEnabled(true);
  const int64_t start = obs::TraceBegin();
  EXPECT_GE(start, 0);
  obs::TraceEnd("test.explicit", "test", start, /*rid=*/42, /*flops=*/6,
                /*bytes=*/8);
  obs::SetTracingEnabled(false);
  obs::TraceEnd("test.skipped", "test", obs::TraceBegin());  // -1: no-op
  const obs::TraceBuffer buf = obs::DrainTrace();
  ASSERT_EQ(buf.events.size(), 1u);
  EXPECT_STREQ(buf.events[0].name, "test.explicit");
  EXPECT_EQ(buf.events[0].rid, 42);
  EXPECT_EQ(buf.events[0].flops, 6);
  EXPECT_EQ(buf.events[0].bytes, 8);
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  ScopeTraceToTest();
  obs::SetTracingEnabled(true);
  {
    DLSYS_TRACE_SPAN_COST("test.json_span", "test", 128, 256);
  }
  obs::TraceEmitSim("test.json_sim", "test", 1.5, 2.0, /*rid=*/7);
  obs::TraceInstantSim("test.json_instant", "test", 3.5, /*rid=*/7);
  obs::SetTracingEnabled(false);

  const obs::TraceBuffer buf = obs::DrainTrace();
  const std::string json = obs::ChromeTraceJson(buf);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"flops\": 128"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\": 256"), std::string::npos);
  EXPECT_NE(json.find("\"rid\": 7"), std::string::npos);
  // Sim-track events land on the simulated-clock pid.
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  const std::string path = ::testing::TempDir() + "/dlsys_trace_test.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path, buf).ok());
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string readback(json.size(), '\0');
  const size_t got = std::fread(readback.data(), 1, readback.size(), f);
  std::fclose(f);
  EXPECT_EQ(got, json.size());
  EXPECT_EQ(readback, json);
}

// -------------------------------------------- served-request lifecycle

/// Minimal Chrome-trace line scan: events mentioning `"rid": <rid>`,
/// in file order, as (name, ts) pairs pulled out with string searches.
std::vector<std::pair<std::string, double>> EventsForRid(
    const std::string& json, int64_t rid) {
  std::vector<std::pair<std::string, double>> out;
  const std::string rid_token = "\"rid\": " + std::to_string(rid);
  // Line-oriented: the exporter emits one event per line.
  size_t start = 0;
  while (start < json.size()) {
    size_t end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    const std::string line = json.substr(start, end - start);
    start = end + 1;
    const size_t rid_at = line.find(rid_token);
    if (rid_at == std::string::npos) continue;
    // `"rid": 7` must be the whole args value, not a prefix of e.g. 70.
    const char next = rid_at + rid_token.size() < line.size()
                          ? line[rid_at + rid_token.size()]
                          : '\0';
    if (next >= '0' && next <= '9') continue;
    const size_t name_at = line.find("\"name\": \"");
    const size_t ts_at = line.find("\"ts\": ");
    if (name_at == std::string::npos || ts_at == std::string::npos) continue;
    const size_t name_from = name_at + 9;
    const size_t name_to = line.find('"', name_from);
    out.emplace_back(line.substr(name_from, name_to - name_from),
                     std::atof(line.c_str() + ts_at + 6));
  }
  return out;
}

TEST(TraceTest, ServedRequestLifecycleReconstructableByRid) {
  ScopeTraceToTest();
  RuntimeConfig::SetThreads(1);

  ModelRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.batch.max_batch = 2;
  config.batch.max_delay_ms = 1.0;
  config.default_deadline_ms = 1e6;
  config.cost = {1.0, 0.1};
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok());
  Server* server = created->get();

  Sequential net = MakeMlp(16, {24}, 4);
  Rng rng(21);
  net.Init(&rng);
  ASSERT_TRUE(server->Publish("m", net, {16}).ok());

  obs::SetTracingEnabled(true);
  Tensor x({16});
  std::vector<int64_t> ids;
  for (int i = 0; i < 6; ++i) {
    x.FillGaussian(&rng, 1.0f);
    const Server::SubmitResult r =
        server->Submit("m", x, static_cast<double>(i) * 0.4);
    ASSERT_EQ(r.outcome, Server::Outcome::kAdmitted);
    ids.push_back(r.id);
  }
  server->Drain();
  obs::SetTracingEnabled(false);

  const std::string json = obs::ChromeTraceJson(obs::DrainTrace());
  for (int64_t id : ids) {
    const auto events = EventsForRid(json, id);
    // A full lifecycle: admit instant, queue span, execute span, respond
    // instant, all carrying this request's id.
    double admit_ts = -1.0, queue_ts = -1.0, exec_ts = -1.0, respond_ts = -1.0;
    for (const auto& [name, ts] : events) {
      if (name == "serve.admit") admit_ts = ts;
      if (name == "serve.queue") queue_ts = ts;
      if (name == "serve.execute") exec_ts = ts;
      if (name == "serve.respond") respond_ts = ts;
    }
    ASSERT_GE(admit_ts, 0.0) << "rid " << id;
    ASSERT_GE(queue_ts, 0.0) << "rid " << id;
    ASSERT_GE(exec_ts, 0.0) << "rid " << id;
    ASSERT_GE(respond_ts, 0.0) << "rid " << id;
    EXPECT_DOUBLE_EQ(admit_ts, queue_ts);  // queueing starts at admission
    EXPECT_GE(exec_ts, queue_ts);
    EXPECT_GE(respond_ts, exec_ts);
  }
}

TEST(CounterRegistryTest, ServerBumpsServeCounters) {
  CounterRegistry& reg = CounterRegistry::Global();
  const CounterRegistry::Snapshot base = reg.SnapshotCounters();

  RuntimeConfig::SetThreads(1);
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  config.batch.max_batch = 1;
  config.batch.max_delay_ms = 0.0;
  config.default_deadline_ms = 1e6;
  config.cost = {1.0, 0.0};
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok());
  Sequential net = MakeMlp(16, {24}, 4);
  Rng rng(22);
  net.Init(&rng);
  ASSERT_TRUE((*created)->Publish("m", net, {16}).ok());
  Tensor x({16});
  x.FillGaussian(&rng, 1.0f);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ((*created)->Submit("m", x, static_cast<double>(i)).outcome,
              Server::Outcome::kAdmitted);
  }
  (*created)->Drain();

  const CounterRegistry::Snapshot diff =
      CounterRegistry::Diff(reg.SnapshotCounters(), base);
  EXPECT_EQ(diff.at("serve.offered"), 3);
  EXPECT_EQ(diff.at("serve.admitted"), 3);
  EXPECT_EQ(diff.at("serve.completed"), 3);
  EXPECT_GE(diff.at("serve.batches"), 1);
  EXPECT_GE(reg.histogram("serve.latency_ms")->Count(), 3);
}

// ----------------------------------------------- determinism contract

TEST(TraceTest, TracedAndUntracedEngineOutputsBitwiseEqual) {
  ScopeTraceToTest();
  Rng rng(23);
  Sequential net = MakeMlp(32, {48, 32}, 10);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {32}, EngineConfig{8});
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();

  const int64_t batch = 8;
  Tensor x({batch, 32});
  x.FillGaussian(&rng, 1.0f);
  const int64_t out_elems = batch * engine.output_elems_per_example();
  std::vector<float> untraced(static_cast<size_t>(out_elems));
  std::vector<float> traced(static_cast<size_t>(out_elems));
  std::vector<float> reference;  // threads=1 untraced output

  const int saved_threads = RuntimeConfig::Threads();
  for (int threads : {1, 2, 8}) {
    RuntimeConfig::SetThreads(threads);

    obs::SetTracingEnabled(false);
    ASSERT_TRUE(engine.PredictInto(x.data(), batch, untraced.data()).ok());

    obs::SetTracingEnabled(true);
    obs::SetTraceSampling(1);
    ASSERT_TRUE(engine.PredictInto(x.data(), batch, traced.data()).ok());
    obs::SetTracingEnabled(false);

    EXPECT_EQ(std::memcmp(untraced.data(), traced.data(),
                          static_cast<size_t>(out_elems) * sizeof(float)),
              0)
        << "tracing perturbed results at DLSYS_THREADS=" << threads;
    if (reference.empty()) {
      reference = untraced;
    } else {
      EXPECT_EQ(std::memcmp(reference.data(), traced.data(),
                            static_cast<size_t>(out_elems) * sizeof(float)),
                0)
          << "thread count changed traced results at DLSYS_THREADS="
          << threads;
    }
  }
  RuntimeConfig::SetThreads(saved_threads);
  (void)obs::DrainTrace();
}

TEST(TraceTest, EngineStepsCarryCostTags) {
  ScopeTraceToTest();
  Rng rng(24);
  Sequential net = MakeMlp(32, {48}, 10);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {32}, EngineConfig{4});
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();
  Tensor x({4, 32});
  x.FillGaussian(&rng, 1.0f);
  std::vector<float> out(
      static_cast<size_t>(4 * engine.output_elems_per_example()));

  const obs::PhaseCost cost_before = obs::PhaseTotals();
  obs::SetTracingEnabled(true);
  obs::SetTraceSampling(1);
  ASSERT_TRUE(engine.PredictInto(x.data(), 4, out.data()).ok());
  obs::SetTracingEnabled(false);
  const obs::PhaseCost cost_after = obs::PhaseTotals();

  const obs::TraceBuffer buf = obs::DrainTrace();
  bool saw_predict = false, saw_dense = false;
  for (const obs::TraceEvent& ev : buf.events) {
    if (std::strcmp(ev.name, "engine.predict") == 0) saw_predict = true;
    if (std::strcmp(ev.name, "engine.dense") == 0) {
      saw_dense = true;
      // dense flops = 2 * in * out per example, times the batch.
      EXPECT_GT(ev.flops, 0);
      EXPECT_GT(ev.bytes, 0);
    }
  }
  EXPECT_TRUE(saw_predict);
  EXPECT_TRUE(saw_dense);

  // The engine runs under PhaseScope(kServe), so the GEMM FLOPs landed
  // in the serve phase: 2*32*48 + 2*48*10 per example, batch 4.
  const auto serve_i = static_cast<size_t>(obs::Phase::kServe);
  EXPECT_GE(cost_after.flops[serve_i] - cost_before.flops[serve_i],
            4 * (2 * 32 * 48 + 2 * 48 * 10));
}

// -------------------------------------- dynamic-name registry helpers

TEST(CounterRegistryTest, DynamicNameHelpersReachRegistry) {
  CounterRegistry& reg = CounterRegistry::Global();
  const std::string tenant = "dyn0";
  const std::string counter_name = "test.dynamic." + tenant + ".count";
  const std::string hist_name = "test.dynamic." + tenant + ".latency_ms";
  const std::string gauge_name = "test.dynamic." + tenant + ".gauge";
  const int64_t before = reg.counter(counter_name)->Value();
  // The DLSYS_COUNTER_* macros cache their handle in a function-local
  // static, which is wrong for names built at runtime; these helpers hit
  // the registry per call, so every distinct name gets its own metric.
  obs::CounterAddDynamic(counter_name, 2);
  obs::CounterAddDynamic(counter_name, 3);
  obs::HistogramRecordDynamic(hist_name, 1.5);
  obs::HistogramRecordDynamic(hist_name, 2.5);
  obs::GaugeSetDynamic(gauge_name, 17);
  EXPECT_EQ(reg.counter(counter_name)->Value() - before, 5);
  EXPECT_GE(reg.histogram(hist_name)->Count(), 2);
  EXPECT_EQ(reg.gauge(gauge_name)->Value(), 17);
  const std::string json = reg.ExportJson();
  EXPECT_NE(json.find(counter_name), std::string::npos);
  EXPECT_NE(json.find(hist_name), std::string::npos);
}

// ----------------------------------------------- ring overflow drops

TEST(TraceTest, RingOverflowBumpsDroppedSpansCounter) {
  obs::SetTracingEnabled(false);
  obs::ResetTrace();  // quiescent: rewind so capacity is known-free
  CounterRegistry& reg = CounterRegistry::Global();
  const CounterRegistry::Snapshot base = reg.SnapshotCounters();

  obs::SetTracingEnabled(true);
  obs::SetTraceSampling(1);
  constexpr int kSpans = 40'000;  // far past the per-thread ring capacity
  for (int i = 0; i < kSpans; ++i) {
    DLSYS_TRACE_SPAN("test.overflow", "test");
  }
  obs::SetTracingEnabled(false);

  const obs::TraceBuffer buf = obs::DrainTrace();
  EXPECT_GT(buf.dropped, 0) << "the ring must drop, never overwrite";
  EXPECT_LT(buf.events.size(), static_cast<size_t>(kSpans));
  // Every drop lands in the exported registry counter, so fleet ops can
  // alert on trace loss instead of silently reading partial traces.
  const CounterRegistry::Snapshot diff =
      CounterRegistry::Diff(reg.SnapshotCounters(), base);
  ASSERT_EQ(diff.count("obs.trace.dropped_spans"), 1u);
  EXPECT_EQ(diff.at("obs.trace.dropped_spans"), buf.dropped);
  EXPECT_NE(reg.ExportJson().find("obs.trace.dropped_spans"),
            std::string::npos);
  obs::ResetTrace();  // leave a fresh ring for later tests
}

// ------------------------------- Chrome export well-formedness contract

/// Structural JSON scan: strings (with escapes) and balanced {} / []
/// nesting, no raw control characters inside strings.
bool JsonStructureValid(const std::string& s) {
  std::vector<char> stack;
  bool in_str = false, esc = false;
  for (const char c : s) {
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_str = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return stack.empty() && !in_str;
}

/// Numeric field scrape from one exported event line; false if absent.
bool FieldD(const std::string& line, const std::string& key, double* out) {
  const std::string token = "\"" + key + "\": ";
  const size_t at = line.find(token);
  if (at == std::string::npos) return false;
  *out = std::atof(line.c_str() + at + token.size());
  return true;
}

/// The export contract on a drained buffer: structurally valid JSON,
/// every duration event non-negative (balanced begin/end), timestamps
/// monotone within each (pid, tid) track, and the file write a byte-
/// exact round trip.
void ExpectChromeExportWellFormed(const obs::TraceBuffer& buf,
                                  const char* what) {
  const std::string json = obs::ChromeTraceJson(buf);
  EXPECT_TRUE(JsonStructureValid(json)) << what;
  std::map<std::pair<double, double>, double> last_ts;
  size_t events = 0, durations = 0;
  size_t start = 0;
  while (start < json.size()) {
    size_t end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    const std::string line = json.substr(start, end - start);
    start = end + 1;
    double ts = 0.0;
    if (!FieldD(line, "ts", &ts)) continue;  // header/footer lines
    ++events;
    double pid = 0.0, tid = 0.0, dur = 0.0;
    EXPECT_TRUE(FieldD(line, "pid", &pid)) << what << ": " << line;
    EXPECT_TRUE(FieldD(line, "tid", &tid)) << what << ": " << line;
    if (line.find("\"ph\": \"X\"") != std::string::npos) {
      ++durations;
      ASSERT_TRUE(FieldD(line, "dur", &dur)) << what << ": " << line;
      EXPECT_GE(dur, 0.0) << what << ": " << line;
    }
    const auto track = std::make_pair(pid, tid);
    const auto it = last_ts.find(track);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << what << ": track (" << pid << ", " << tid
                                << ") timestamps must be monotone";
    }
    last_ts[track] = ts;
  }
  EXPECT_EQ(events, buf.events.size()) << what;
  EXPECT_GT(durations, 0u) << what;

  const std::string path =
      ::testing::TempDir() + "/dlsys_trace_wellformed.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path, buf).ok()) << what;
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << what;
  std::string readback(json.size(), '\0');
  const size_t got = std::fread(readback.data(), 1, readback.size(), f);
  EXPECT_EQ(std::fgetc(f), EOF) << what << ": file longer than the render";
  std::fclose(f);
  ASSERT_EQ(got, json.size()) << what;
  EXPECT_EQ(readback, json) << what << ": write must round-trip byte-exact";
}

TEST(TraceTest, ChromeExportWellFormedAcrossTrainServeAndFleet) {
  obs::SetTracingEnabled(false);
  obs::ResetTrace();
  const int saved_threads = RuntimeConfig::Threads();
  RuntimeConfig::SetThreads(2);
  obs::SetTraceSampling(1);
  obs::SetTracingEnabled(true);

  {  // train: wall-track spans from the engine and parallel runtime
    Rng rng(31);
    Dataset data = MakeGaussianBlobs(128, 8, 3, 3.0, &rng);
    Sequential net = MakeMlp(8, {16}, 3);
    net.Init(&rng);
    Sgd opt(0.05, 0.9);
    TrainConfig tc;
    tc.epochs = 2;
    (void)Train(&net, &opt, data, tc);
  }
  {  // serve: sim-track lifecycle spans keyed by rid
    ModelRegistry registry;
    ServerConfig config;
    config.workers = 1;
    config.batch.max_batch = 4;
    config.default_deadline_ms = 1e6;
    auto created = Server::Create(&registry, config);
    ASSERT_TRUE(created.ok());
    Sequential net = MakeMlp(16, {24}, 4);
    Rng rng(32);
    net.Init(&rng);
    ASSERT_TRUE((*created)->Publish("m", net, {16}).ok());
    Tensor x({16});
    for (int i = 0; i < 12; ++i) {
      x.FillGaussian(&rng, 1.0f);
      ASSERT_EQ((*created)->Submit("m", x, i * 0.3).outcome,
                Server::Outcome::kAdmitted);
    }
    (*created)->Drain();
  }
  {  // fleet: causally-linked request trees over both hops
    FleetConfig config;
    config.replica_slots = 2;
    config.initial_replicas = 2;
    config.server.workers = 1;
    config.server.batch.max_batch = 4;
    config.server.default_deadline_ms = 50.0;
    config.autoscale.policy = ScalePolicy::kFixed;
    auto fleet = Fleet::Create(config);
    ASSERT_TRUE(fleet.ok());
    Sequential net = MakeMlp(16, {24}, 4);
    Rng rng(33);
    net.Init(&rng);
    ASSERT_TRUE(fleet.value()->Deploy("m", std::move(net), {16}).ok());
    TraceLoadConfig load;
    load.seed = 5;
    load.duration_ms = 1500.0;
    load.base_rps = 300.0;
    load.deadline_ms = 50.0;
    load.model = "m";
    ChaosScenario steady;
    steady.name = "steady";
    ASSERT_TRUE(fleet.value()->Run(steady, load).ok());
  }

  obs::SetTracingEnabled(false);
  RuntimeConfig::SetThreads(saved_threads);
  const obs::TraceBuffer buf = obs::DrainTrace();
  ASSERT_EQ(buf.dropped, 0) << "well-formedness run must not overflow";
  ExpectChromeExportWellFormed(buf, "train+serve+fleet");
  // The sim slice alone must satisfy the same contract (it is what the
  // fleet determinism tests byte-compare).
  ExpectChromeExportWellFormed(obs::SimTrackOnly(buf), "sim slice");
  obs::ResetTrace();
}

#endif  // DLSYS_OBS

}  // namespace
}  // namespace dlsys
