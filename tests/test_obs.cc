// Tests for the observability layer (src/obs): sharded counters under
// real concurrency, snapshot/diff semantics, registry exporters, span
// recording and the ring drain protocol, Chrome trace export, request
// lifecycle reconstruction by rid, per-phase cost attribution feeding
// src/green, and the determinism contract (traced and untraced engine
// outputs bitwise identical at DLSYS_THREADS 1/2/8).
//
// Everything that touches the *macro* sites or span recording is guarded
// with #if DLSYS_OBS so the suite also passes in a -DDLSYS_OBS=0 build
// (the CI kill-switch job); the direct registry/phase APIs are always
// compiled and tested unconditionally.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/rng.h"
#include "src/green/energy.h"
#include "src/infer/engine.h"
#include "src/nn/train.h"
#include "src/obs/cost.h"
#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/runtime/runtime.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"

namespace dlsys {
namespace {

using obs::CounterRegistry;

// -------------------------------------------------------------- counters

TEST(CounterTest, ShardedSumAcrossThreads) {
  obs::Counter* c = CounterRegistry::Global().counter("test.sharded_sum");
  const int64_t before = c->Value();
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c]() {
      for (int64_t i = 0; i < kPerThread; ++i) c->Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value() - before, kThreads * kPerThread);
}

TEST(CounterRegistryTest, HandlesAreInternedAndStable) {
  CounterRegistry& reg = CounterRegistry::Global();
  obs::Counter* a = reg.counter("test.interned");
  obs::Counter* b = reg.counter("test.interned");
  EXPECT_EQ(a, b);
  // Reset zeroes values but never invalidates handles (macro sites cache
  // them in function-local statics).
  a->Add(5);
  const int64_t v = a->Value();
  EXPECT_GE(v, 5);
  EXPECT_EQ(reg.counter("test.interned"), a);
}

TEST(CounterRegistryTest, SnapshotDiffSemantics) {
  CounterRegistry& reg = CounterRegistry::Global();
  const CounterRegistry::Snapshot base = reg.SnapshotCounters();
  reg.counter("test.diff.a")->Add(3);
  reg.counter("test.diff.a")->Add(4);
  reg.gauge("test.diff.g")->Set(11);
  const CounterRegistry::Snapshot now = reg.SnapshotCounters();
  const CounterRegistry::Snapshot diff = CounterRegistry::Diff(now, base);
  EXPECT_EQ(diff.at("test.diff.a"), 7);  // new keys diff against 0
  EXPECT_EQ(diff.at("test.diff.g"), 11);
  // Keys absent from `now` are dropped, not negated.
  for (const auto& [key, value] : diff) {
    EXPECT_TRUE(now.count(key)) << key;
    (void)value;
  }
}

TEST(CounterRegistryTest, ExportersRenderRegisteredMetrics) {
  CounterRegistry& reg = CounterRegistry::Global();
  reg.counter("test.export.count")->Add(2);
  reg.gauge("test.export.gauge")->Set(9);
  obs::SharedHistogram* h = reg.histogram("test.export.hist_ms");
  h->Record(1.0);
  h->Record(3.0);

  const std::string text = reg.ExportText();
  EXPECT_NE(text.find("test.export.count"), std::string::npos);
  EXPECT_NE(text.find("test.export.gauge"), std::string::npos);
  EXPECT_NE(text.find("test.export.hist_ms"), std::string::npos);

  const std::string json = reg.ExportJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export.hist_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos);
  // Balanced braces: a cheap well-formedness check with no JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(CounterRegistryTest, SharedHistogramQuantilesAndReset) {
  obs::SharedHistogram* h =
      CounterRegistry::Global().histogram("test.hist.quantiles");
  h->Reset();
  for (int i = 1; i <= 100; ++i) h->Record(static_cast<double>(i));
  EXPECT_EQ(h->Count(), 100);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 100.0);
  EXPECT_GE(h->Quantile(0.99), h->Quantile(0.5));
  EXPECT_DOUBLE_EQ(
      CounterRegistry::Global().HistogramQuantile("test.hist.quantiles", 1.0),
      100.0);
  EXPECT_EQ(CounterRegistry::Global().HistogramQuantile("test.hist.absent",
                                                        0.5),
            0.0);
  h->Reset();
  EXPECT_EQ(h->Count(), 0);
}

// ------------------------------------------------------- cost accounting

TEST(PhaseCostTest, ScopesNestAndAttributeToCurrentPhase) {
  const obs::PhaseCost before = obs::PhaseTotals();
  EXPECT_EQ(obs::CurrentPhase(), obs::Phase::kOther);
  {
    obs::PhaseScope fwd(obs::Phase::kForward);
    EXPECT_EQ(obs::CurrentPhase(), obs::Phase::kForward);
    obs::AddFlops(100);
    {
      obs::PhaseScope serve(obs::Phase::kServe);
      EXPECT_EQ(obs::CurrentPhase(), obs::Phase::kServe);
      obs::AddFlops(10);
      obs::AddBytes(7);
    }
    EXPECT_EQ(obs::CurrentPhase(), obs::Phase::kForward);
    obs::AddFlops(1);
  }
  EXPECT_EQ(obs::CurrentPhase(), obs::Phase::kOther);
  const obs::PhaseCost after = obs::PhaseTotals();
  const auto fwd_i = static_cast<size_t>(obs::Phase::kForward);
  const auto srv_i = static_cast<size_t>(obs::Phase::kServe);
  EXPECT_EQ(after.flops[fwd_i] - before.flops[fwd_i], 101);
  EXPECT_EQ(after.flops[srv_i] - before.flops[srv_i], 10);
  EXPECT_EQ(after.bytes[srv_i] - before.bytes[srv_i], 7);
  EXPECT_GE(after.TotalFlops() - before.TotalFlops(), 111);
}

TEST(PhaseCostTest, EstimatePhaseFootprintRows) {
  obs::PhaseCost cost;
  cost.flops[static_cast<size_t>(obs::Phase::kForward)] = 4'000'000'000;
  cost.flops[static_cast<size_t>(obs::Phase::kBackward)] = 8'000'000'000;
  cost.flops[static_cast<size_t>(obs::Phase::kServe)] = 1'000'000'000;
  const HardwareProfile hw = StandardHardware()[0];
  const Region region = StandardRegions()[0];
  auto rows = EstimatePhaseFootprint(cost, hw, region);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);  // zero-FLOP phases omitted
  // Sorted by descending energy: backward > forward > serve.
  EXPECT_EQ((*rows)[0].phase, "backward");
  EXPECT_EQ((*rows)[1].phase, "forward");
  EXPECT_EQ((*rows)[2].phase, "serve");
  for (const PhaseEnergyRow& row : *rows) {
    EXPECT_GT(row.runtime_seconds, 0.0);
    EXPECT_GT(row.energy_joules, 0.0);
    EXPECT_GT(row.co2_grams, 0.0);
  }
  // Energy scales linearly with FLOPs under the effective-FLOPs model.
  EXPECT_DOUBLE_EQ((*rows)[0].energy_joules, 2.0 * (*rows)[1].energy_joules);

  HardwareProfile bad = hw;
  bad.utilization = 0.0;
  EXPECT_FALSE(EstimatePhaseFootprint(cost, bad, region).ok());
}

#if DLSYS_OBS

// ------------------------------------------------------- span recording

/// Drains pending events so the next drain sees only this test's spans.
void ScopeTraceToTest() {
  obs::SetTracingEnabled(false);
  obs::SetTraceSampling(1);
  (void)obs::DrainTrace();
}

TEST(TraceTest, DisabledRecordsNothing) {
  ScopeTraceToTest();
  {
    DLSYS_TRACE_SPAN("test.disabled", "test");
    DLSYS_TRACE_SPAN_COST("test.disabled_cost", "test", 1, 2);
  }
  EXPECT_TRUE(obs::DrainTrace().events.empty());
}

TEST(TraceTest, SpansNestAndDrainOnce) {
  ScopeTraceToTest();
  obs::SetTracingEnabled(true);
  {
    DLSYS_TRACE_SPAN("test.outer", "test");
    {
      DLSYS_TRACE_SPAN("test.inner", "test");
    }
    {
      DLSYS_TRACE_SPAN("test.inner", "test");
    }
  }
  obs::SetTracingEnabled(false);
  const obs::TraceBuffer buf = obs::DrainTrace();
  int outer = 0, inner = 0;
  for (const obs::TraceEvent& ev : buf.events) {
    if (std::strcmp(ev.name, "test.outer") == 0) {
      ++outer;
      EXPECT_GE(ev.dur_ns, 0);
      EXPECT_EQ(ev.pid, 1);
    }
    if (std::strcmp(ev.name, "test.inner") == 0) ++inner;
  }
  EXPECT_EQ(outer, 1);
  EXPECT_EQ(inner, 2);
  // Drains are cursor-based: a second drain returns nothing new.
  EXPECT_TRUE(obs::DrainTrace().events.empty());

  // Self-time: the outer span's self excludes its two children.
  obs::TraceBuffer again = buf;
  const std::vector<obs::SpanStat> stats = obs::SelfTimeByName(again);
  double outer_total = 0.0, outer_self = 0.0, inner_total = 0.0;
  for (const obs::SpanStat& s : stats) {
    if (s.name == "test.outer") {
      outer_total = s.total_ms;
      outer_self = s.self_ms;
    }
    if (s.name == "test.inner") inner_total = s.total_ms;
  }
  EXPECT_GE(outer_total, inner_total);
  EXPECT_LE(outer_self, outer_total);
  EXPECT_NEAR(outer_self, outer_total - inner_total, 1e-9);
}

TEST(TraceTest, SamplingReducesEvents) {
  ScopeTraceToTest();
  constexpr int kSpans = 64;
  obs::SetTracingEnabled(true);

  obs::SetTraceSampling(1);
  for (int i = 0; i < kSpans; ++i) {
    DLSYS_TRACE_SPAN("test.sample_full", "test");
  }
  const size_t full = obs::DrainTrace().events.size();

  obs::SetTraceSampling(4);
  for (int i = 0; i < kSpans; ++i) {
    DLSYS_TRACE_SPAN("test.sample_quarter", "test");
  }
  const size_t sampled = obs::DrainTrace().events.size();

  obs::SetTracingEnabled(false);
  obs::SetTraceSampling(1);
  EXPECT_EQ(full, static_cast<size_t>(kSpans));
  EXPECT_EQ(sampled, static_cast<size_t>(kSpans / 4));
}

TEST(TraceTest, ExplicitBeginEndPairs) {
  ScopeTraceToTest();
  obs::SetTracingEnabled(true);
  const int64_t start = obs::TraceBegin();
  EXPECT_GE(start, 0);
  obs::TraceEnd("test.explicit", "test", start, /*rid=*/42, /*flops=*/6,
                /*bytes=*/8);
  obs::SetTracingEnabled(false);
  obs::TraceEnd("test.skipped", "test", obs::TraceBegin());  // -1: no-op
  const obs::TraceBuffer buf = obs::DrainTrace();
  ASSERT_EQ(buf.events.size(), 1u);
  EXPECT_STREQ(buf.events[0].name, "test.explicit");
  EXPECT_EQ(buf.events[0].rid, 42);
  EXPECT_EQ(buf.events[0].flops, 6);
  EXPECT_EQ(buf.events[0].bytes, 8);
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  ScopeTraceToTest();
  obs::SetTracingEnabled(true);
  {
    DLSYS_TRACE_SPAN_COST("test.json_span", "test", 128, 256);
  }
  obs::TraceEmitSim("test.json_sim", "test", 1.5, 2.0, /*rid=*/7);
  obs::TraceInstantSim("test.json_instant", "test", 3.5, /*rid=*/7);
  obs::SetTracingEnabled(false);

  const obs::TraceBuffer buf = obs::DrainTrace();
  const std::string json = obs::ChromeTraceJson(buf);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"flops\": 128"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\": 256"), std::string::npos);
  EXPECT_NE(json.find("\"rid\": 7"), std::string::npos);
  // Sim-track events land on the simulated-clock pid.
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  const std::string path = ::testing::TempDir() + "/dlsys_trace_test.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path, buf).ok());
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string readback(json.size(), '\0');
  const size_t got = std::fread(readback.data(), 1, readback.size(), f);
  std::fclose(f);
  EXPECT_EQ(got, json.size());
  EXPECT_EQ(readback, json);
}

// -------------------------------------------- served-request lifecycle

/// Minimal Chrome-trace line scan: events mentioning `"rid": <rid>`,
/// in file order, as (name, ts) pairs pulled out with string searches.
std::vector<std::pair<std::string, double>> EventsForRid(
    const std::string& json, int64_t rid) {
  std::vector<std::pair<std::string, double>> out;
  const std::string rid_token = "\"rid\": " + std::to_string(rid);
  // Line-oriented: the exporter emits one event per line.
  size_t start = 0;
  while (start < json.size()) {
    size_t end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    const std::string line = json.substr(start, end - start);
    start = end + 1;
    const size_t rid_at = line.find(rid_token);
    if (rid_at == std::string::npos) continue;
    // `"rid": 7` must be the whole args value, not a prefix of e.g. 70.
    const char next = rid_at + rid_token.size() < line.size()
                          ? line[rid_at + rid_token.size()]
                          : '\0';
    if (next >= '0' && next <= '9') continue;
    const size_t name_at = line.find("\"name\": \"");
    const size_t ts_at = line.find("\"ts\": ");
    if (name_at == std::string::npos || ts_at == std::string::npos) continue;
    const size_t name_from = name_at + 9;
    const size_t name_to = line.find('"', name_from);
    out.emplace_back(line.substr(name_from, name_to - name_from),
                     std::atof(line.c_str() + ts_at + 6));
  }
  return out;
}

TEST(TraceTest, ServedRequestLifecycleReconstructableByRid) {
  ScopeTraceToTest();
  RuntimeConfig::SetThreads(1);

  ModelRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.batch.max_batch = 2;
  config.batch.max_delay_ms = 1.0;
  config.default_deadline_ms = 1e6;
  config.cost = {1.0, 0.1};
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok());
  Server* server = created->get();

  Sequential net = MakeMlp(16, {24}, 4);
  Rng rng(21);
  net.Init(&rng);
  ASSERT_TRUE(server->Publish("m", net, {16}).ok());

  obs::SetTracingEnabled(true);
  Tensor x({16});
  std::vector<int64_t> ids;
  for (int i = 0; i < 6; ++i) {
    x.FillGaussian(&rng, 1.0f);
    const Server::SubmitResult r =
        server->Submit("m", x, static_cast<double>(i) * 0.4);
    ASSERT_EQ(r.outcome, Server::Outcome::kAdmitted);
    ids.push_back(r.id);
  }
  server->Drain();
  obs::SetTracingEnabled(false);

  const std::string json = obs::ChromeTraceJson(obs::DrainTrace());
  for (int64_t id : ids) {
    const auto events = EventsForRid(json, id);
    // A full lifecycle: admit instant, queue span, execute span, respond
    // instant, all carrying this request's id.
    double admit_ts = -1.0, queue_ts = -1.0, exec_ts = -1.0, respond_ts = -1.0;
    for (const auto& [name, ts] : events) {
      if (name == "serve.admit") admit_ts = ts;
      if (name == "serve.queue") queue_ts = ts;
      if (name == "serve.execute") exec_ts = ts;
      if (name == "serve.respond") respond_ts = ts;
    }
    ASSERT_GE(admit_ts, 0.0) << "rid " << id;
    ASSERT_GE(queue_ts, 0.0) << "rid " << id;
    ASSERT_GE(exec_ts, 0.0) << "rid " << id;
    ASSERT_GE(respond_ts, 0.0) << "rid " << id;
    EXPECT_DOUBLE_EQ(admit_ts, queue_ts);  // queueing starts at admission
    EXPECT_GE(exec_ts, queue_ts);
    EXPECT_GE(respond_ts, exec_ts);
  }
}

TEST(CounterRegistryTest, ServerBumpsServeCounters) {
  CounterRegistry& reg = CounterRegistry::Global();
  const CounterRegistry::Snapshot base = reg.SnapshotCounters();

  RuntimeConfig::SetThreads(1);
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  config.batch.max_batch = 1;
  config.batch.max_delay_ms = 0.0;
  config.default_deadline_ms = 1e6;
  config.cost = {1.0, 0.0};
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok());
  Sequential net = MakeMlp(16, {24}, 4);
  Rng rng(22);
  net.Init(&rng);
  ASSERT_TRUE((*created)->Publish("m", net, {16}).ok());
  Tensor x({16});
  x.FillGaussian(&rng, 1.0f);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ((*created)->Submit("m", x, static_cast<double>(i)).outcome,
              Server::Outcome::kAdmitted);
  }
  (*created)->Drain();

  const CounterRegistry::Snapshot diff =
      CounterRegistry::Diff(reg.SnapshotCounters(), base);
  EXPECT_EQ(diff.at("serve.offered"), 3);
  EXPECT_EQ(diff.at("serve.admitted"), 3);
  EXPECT_EQ(diff.at("serve.completed"), 3);
  EXPECT_GE(diff.at("serve.batches"), 1);
  EXPECT_GE(reg.histogram("serve.latency_ms")->Count(), 3);
}

// ----------------------------------------------- determinism contract

TEST(TraceTest, TracedAndUntracedEngineOutputsBitwiseEqual) {
  ScopeTraceToTest();
  Rng rng(23);
  Sequential net = MakeMlp(32, {48, 32}, 10);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {32}, EngineConfig{8});
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();

  const int64_t batch = 8;
  Tensor x({batch, 32});
  x.FillGaussian(&rng, 1.0f);
  const int64_t out_elems = batch * engine.output_elems_per_example();
  std::vector<float> untraced(static_cast<size_t>(out_elems));
  std::vector<float> traced(static_cast<size_t>(out_elems));
  std::vector<float> reference;  // threads=1 untraced output

  const int saved_threads = RuntimeConfig::Threads();
  for (int threads : {1, 2, 8}) {
    RuntimeConfig::SetThreads(threads);

    obs::SetTracingEnabled(false);
    ASSERT_TRUE(engine.PredictInto(x.data(), batch, untraced.data()).ok());

    obs::SetTracingEnabled(true);
    obs::SetTraceSampling(1);
    ASSERT_TRUE(engine.PredictInto(x.data(), batch, traced.data()).ok());
    obs::SetTracingEnabled(false);

    EXPECT_EQ(std::memcmp(untraced.data(), traced.data(),
                          static_cast<size_t>(out_elems) * sizeof(float)),
              0)
        << "tracing perturbed results at DLSYS_THREADS=" << threads;
    if (reference.empty()) {
      reference = untraced;
    } else {
      EXPECT_EQ(std::memcmp(reference.data(), traced.data(),
                            static_cast<size_t>(out_elems) * sizeof(float)),
                0)
          << "thread count changed traced results at DLSYS_THREADS="
          << threads;
    }
  }
  RuntimeConfig::SetThreads(saved_threads);
  (void)obs::DrainTrace();
}

TEST(TraceTest, EngineStepsCarryCostTags) {
  ScopeTraceToTest();
  Rng rng(24);
  Sequential net = MakeMlp(32, {48}, 10);
  net.Init(&rng);
  auto compiled = InferenceEngine::Compile(net, {32}, EngineConfig{4});
  ASSERT_TRUE(compiled.ok());
  InferenceEngine engine = std::move(compiled).value();
  Tensor x({4, 32});
  x.FillGaussian(&rng, 1.0f);
  std::vector<float> out(
      static_cast<size_t>(4 * engine.output_elems_per_example()));

  const obs::PhaseCost cost_before = obs::PhaseTotals();
  obs::SetTracingEnabled(true);
  obs::SetTraceSampling(1);
  ASSERT_TRUE(engine.PredictInto(x.data(), 4, out.data()).ok());
  obs::SetTracingEnabled(false);
  const obs::PhaseCost cost_after = obs::PhaseTotals();

  const obs::TraceBuffer buf = obs::DrainTrace();
  bool saw_predict = false, saw_dense = false;
  for (const obs::TraceEvent& ev : buf.events) {
    if (std::strcmp(ev.name, "engine.predict") == 0) saw_predict = true;
    if (std::strcmp(ev.name, "engine.dense") == 0) {
      saw_dense = true;
      // dense flops = 2 * in * out per example, times the batch.
      EXPECT_GT(ev.flops, 0);
      EXPECT_GT(ev.bytes, 0);
    }
  }
  EXPECT_TRUE(saw_predict);
  EXPECT_TRUE(saw_dense);

  // The engine runs under PhaseScope(kServe), so the GEMM FLOPs landed
  // in the serve phase: 2*32*48 + 2*48*10 per example, batch 4.
  const auto serve_i = static_cast<size_t>(obs::Phase::kServe);
  EXPECT_GE(cost_after.flops[serve_i] - cost_before.flops[serve_i],
            4 * (2 * 32 * 48 + 2 * 48 * 10));
}

#endif  // DLSYS_OBS

}  // namespace
}  // namespace dlsys
