// Tests for the fleet layer (src/fleet): deterministic routing policies,
// probe-driven health state, autoscaling policies, the chaos grammar's
// compilation onto the PR-2 fault injector, and the fleet driver's
// acceptance criteria — SLO recovery after a crash storm and after a
// bad-version rollout with auto-rollback, plus bit-for-bit replay of the
// exported metrics JSON and the sim-clock trace slice at DLSYS_THREADS
// 1 vs 8.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/rng.h"
#include "src/fleet/autoscaler.h"
#include "src/fleet/chaos.h"
#include "src/fleet/fleet.h"
#include "src/fleet/router.h"
#include "src/nn/train.h"
#include "src/obs/attribution.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/runtime/runtime.h"
#include "src/serve/loadgen.h"

namespace dlsys {
namespace {

Sequential MakeNet(uint64_t seed) {
  Sequential net = MakeMlp(16, {24}, 4);
  Rng rng(seed);
  net.Init(&rng);
  return net;
}

/// Small fleet sized so the unit tests run in seconds: modeled service
/// is ~1-3 ms per batch, so one replica handles ~5k rps and the test
/// loads (hundreds of rps) leave headroom for chaos.
FleetConfig TestFleetConfig() {
  FleetConfig config;
  config.replica_slots = 4;
  config.initial_replicas = 4;
  config.server.workers = 2;
  config.server.queue_capacity = 64;
  config.server.batch.max_batch = 8;
  config.server.batch.max_delay_ms = 1.0;
  config.server.cost.fixed_ms = 1.0;
  config.server.cost.per_example_ms = 0.25;
  config.server.default_deadline_ms = 50.0;
  config.autoscale.policy = ScalePolicy::kFixed;
  config.restart_ms = 1000.0;
  config.tick_ms = 50.0;
  config.window_ms = 500.0;
  return config;
}

TraceLoadConfig TestLoad(double duration_ms = 12'000.0,
                         double base_rps = 600.0) {
  TraceLoadConfig load;
  load.seed = 7;
  load.duration_ms = duration_ms;
  load.base_rps = base_rps;
  load.deadline_ms = 50.0;
  load.model = "m";
  return load;
}

Result<FleetReport> RunFleet(const FleetConfig& config,
                             const ChaosScenario& scenario,
                             const TraceLoadConfig& load) {
  auto fleet = Fleet::Create(config);
  if (!fleet.ok()) return fleet.status();
  Status deployed = fleet.value()->Deploy("m", MakeNet(3), {16});
  if (!deployed.ok()) return deployed;
  return fleet.value()->Run(scenario, load);
}

// --------------------------------------------------------------- router

TEST(RouterTest, RoundRobinSkipsUnroutableAndKeepsTurnOrder) {
  Router router(RoutePolicy::kRoundRobin, 1);
  std::vector<ReplicaView> view(3);
  for (auto& v : view) v.routable = true;
  EXPECT_EQ(router.Pick(view, 0), 0);
  EXPECT_EQ(router.Pick(view, 1), 1);
  view[2].routable = false;
  EXPECT_EQ(router.Pick(view, 2), 0);  // 2 is out: wrap to 0
  view[2].routable = true;
  EXPECT_EQ(router.Pick(view, 3), 1);
  EXPECT_EQ(router.Pick(view, 4), 2);  // rejoined in its old slot order
}

TEST(RouterTest, NoRoutableReplicaReturnsMinusOne) {
  Router router(RoutePolicy::kLeastLoaded, 1);
  std::vector<ReplicaView> view(2);
  EXPECT_EQ(router.Pick(view, 0), -1);
}

TEST(RouterTest, LeastLoadedBreaksTiesByBacklogThenIndex) {
  Router router(RoutePolicy::kLeastLoaded, 1);
  std::vector<ReplicaView> view(3);
  for (auto& v : view) v.routable = true;
  view[0].queue_depth = 5;
  view[1].queue_depth = 2;
  view[2].queue_depth = 2;
  view[1].backlog_ms = 4.0;
  view[2].backlog_ms = 1.0;
  EXPECT_EQ(router.Pick(view, 0), 2);  // same depth, less backlog
  view[2].backlog_ms = 4.0;
  EXPECT_EQ(router.Pick(view, 1), 1);  // full tie: lowest index
}

TEST(RouterTest, PowerOfTwoIsDeterministicAndPrefersLighter) {
  std::vector<ReplicaView> view(4);
  for (auto& v : view) v.routable = true;
  view[0].queue_depth = 100;
  view[1].queue_depth = 100;
  view[2].queue_depth = 100;
  view[3].queue_depth = 0;
  Router a(RoutePolicy::kPowerOfTwo, 42);
  Router b(RoutePolicy::kPowerOfTwo, 42);
  int picks_of_light = 0;
  for (int64_t i = 0; i < 64; ++i) {
    const int pa = a.Pick(view, i);
    EXPECT_EQ(pa, b.Pick(view, i)) << "same seed must replay";
    if (pa == 3) ++picks_of_light;
  }
  // Two draws over four replicas see the light one about 7 times in 16;
  // with 64 picks anything near that confirms load-aware choice.
  EXPECT_GT(picks_of_light, 16);
}

TEST(HealthTrackerTest, ThresholdsAndRecovery) {
  HealthCheckConfig config;
  config.failure_threshold = 2;
  config.recovery_threshold = 3;
  HealthTracker tracker(config, 2);
  EXPECT_TRUE(tracker.healthy(0));
  tracker.Probe(0, false);
  EXPECT_TRUE(tracker.healthy(0));  // one failure is not enough
  tracker.Probe(0, false);
  EXPECT_FALSE(tracker.healthy(0));
  tracker.Probe(0, true);
  tracker.Probe(0, true);
  EXPECT_FALSE(tracker.healthy(0));  // two successes are not enough
  tracker.Probe(0, true);
  EXPECT_TRUE(tracker.healthy(0));
  // A failure resets the recovery streak.
  tracker.Probe(1, false);
  tracker.Probe(1, false);
  tracker.Probe(1, true);
  tracker.Probe(1, false);
  tracker.Probe(1, true);
  tracker.Probe(1, true);
  EXPECT_FALSE(tracker.healthy(1));
  tracker.MarkUnhealthy(0);
  EXPECT_FALSE(tracker.healthy(0));
}

// ----------------------------------------------------------- autoscaler

TEST(AutoscalerTest, FixedNeverMoves) {
  AutoscalerConfig config;
  config.policy = ScalePolicy::kFixed;
  Autoscaler scaler(config, 1000.0);
  EXPECT_EQ(scaler.Desired(1e9, 3), 3);
  EXPECT_EQ(scaler.Desired(0.0, 3), 3);
}

TEST(AutoscalerTest, ReactiveTargetTracking) {
  AutoscalerConfig config;
  config.policy = ScalePolicy::kReactive;
  config.target_utilization = 0.5;
  config.min_replicas = 1;
  config.max_replicas = 8;
  config.scale_down_patience = 2;
  Autoscaler scaler(config, 1000.0);
  // 1800 rps at 50% target utilization of 1000 rps: ceil(3.6) = 4.
  EXPECT_EQ(scaler.Desired(1800.0, 2), 4);
  // Scale-down waits for `patience` consecutive low decisions.
  EXPECT_EQ(scaler.Desired(200.0, 4), 4);
  EXPECT_EQ(scaler.Desired(200.0, 4), 1);
}

TEST(AutoscalerTest, PredictiveProvisionsForTheTrend) {
  AutoscalerConfig config;
  config.policy = ScalePolicy::kPredictive;
  config.decide_interval_ms = 1000.0;
  config.provision_lag_ms = 2000.0;
  config.target_utilization = 0.5;
  config.max_replicas = 16;
  Autoscaler reactive_like(config, 1000.0);
  // Ramp: 500 then 1000 rps. Slope 0.5 rps/ms extrapolated 2000 ms
  // ahead plans for 2000 rps -> ceil(2000 / 500) = 4 replicas, where a
  // reactive policy at 1000 rps would order 2.
  EXPECT_EQ(reactive_like.Desired(500.0, 1), 1);
  EXPECT_EQ(reactive_like.Desired(1000.0, 1), 4);
}

TEST(AutoscalerTest, ValidationRejectsBadKnobs) {
  AutoscalerConfig config;
  config.target_utilization = 0.0;
  EXPECT_FALSE(ValidateAutoscalerConfig(config).ok());
  config = AutoscalerConfig{};
  config.min_replicas = 5;
  config.max_replicas = 2;
  EXPECT_FALSE(ValidateAutoscalerConfig(config).ok());
}

// ---------------------------------------------------------------- chaos

TEST(ChaosTest, ScenarioLibraryCompiles) {
  for (const std::string& name : ScenarioNames()) {
    auto scenario = MakeScenario(name);
    ASSERT_TRUE(scenario.ok()) << name;
    EXPECT_TRUE(ValidateChaosScenario(scenario.value()).ok()) << name;
    auto compiled = CompileChaos(scenario.value(), 4, 50.0);
    ASSERT_TRUE(compiled.ok()) << name;
    EXPECT_EQ(compiled.value().targets.size(), scenario.value().events.size());
  }
  EXPECT_FALSE(MakeScenario("no_such_scenario").ok());
}

TEST(ChaosTest, CrashStormCompilesToScheduledCrashes) {
  auto scenario = MakeScenario("crash_storm");
  ASSERT_TRUE(scenario.ok());
  auto compiled = CompileChaos(scenario.value(), 4, 50.0);
  ASSERT_TRUE(compiled.ok());
  const CompiledChaos& chaos = compiled.value();
  ASSERT_EQ(chaos.targets.size(), 1u);
  // fraction 0.5 of 4 slots: exactly 2 correlated victims.
  EXPECT_EQ(chaos.targets[0].size(), 2u);
  ASSERT_EQ(chaos.plan.crashes.size(), 2u);
  const int64_t round = static_cast<int64_t>(
      scenario.value().events[0].start_ms / 50.0);
  for (const CrashEvent& crash : chaos.plan.crashes) {
    EXPECT_EQ(crash.round, round);
  }
}

TEST(ChaosTest, TargetSelectionIsSeedStable) {
  auto scenario = MakeScenario("gray_failure");
  ASSERT_TRUE(scenario.ok());
  auto a = CompileChaos(scenario.value(), 6, 50.0);
  auto b = CompileChaos(scenario.value(), 6, 50.0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().targets, b.value().targets);
  ChaosScenario reseeded = scenario.value();
  reseeded.seed ^= 0xDEADBEEFULL;
  auto c = CompileChaos(reseeded, 6, 50.0);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value().targets, c.value().targets)
      << "different seeds should pick different correlated sets";
}

// -------------------------------------------------------- trace loadgen

TEST(TraceLoadTest, RateComposesDiurnalAndCrowds) {
  TraceLoadConfig load;
  load.base_rps = 100.0;
  load.diurnal_amplitude = 0.5;
  load.diurnal_period_ms = 1000.0;
  load.crowds.push_back({200.0, 100.0, 3.0});
  EXPECT_DOUBLE_EQ(TraceRateAt(load, 0.0), 100.0);        // sin(0) = 0
  EXPECT_NEAR(TraceRateAt(load, 250.0), 150.0 * 3.0, 1e-9);  // peak * crowd
  EXPECT_NEAR(TraceRateAt(load, 750.0), 50.0, 1e-9);      // trough
  EXPECT_GE(TracePeakRate(load), 450.0);
}

TEST(TraceLoadTest, ArrivalsAreSeededAndMonotone) {
  TraceLoadConfig load = TestLoad(2000.0, 500.0);
  const std::vector<double> a = GenerateTraceArrivals(load);
  const std::vector<double> b = GenerateTraceArrivals(load);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_GE(a.front(), load.start_ms);
  EXPECT_LT(a.back(), load.start_ms + load.duration_ms);

  load.crowds.push_back({500.0, 500.0, 4.0});
  const std::vector<double> crowded = GenerateTraceArrivals(load);
  const auto in_crowd = [](const std::vector<double>& v) {
    return std::count_if(v.begin(), v.end(),
                         [](double t) { return t >= 500.0 && t < 1000.0; });
  };
  EXPECT_GT(in_crowd(crowded), 2 * in_crowd(a));
}

// ---------------------------------------------------------------- fleet

TEST(FleetTest, ValidateRejectsBadConfigs) {
  FleetConfig config = TestFleetConfig();
  config.initial_replicas = 9;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = TestFleetConfig();
  config.window_ms = config.tick_ms / 2.0;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = TestFleetConfig();
  config.canary.max_degraded_fraction = 1.5;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = TestFleetConfig();
  config.canary.max_p99_regression = -0.5;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = TestFleetConfig();
  config.canary.min_p99_samples = 0;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = TestFleetConfig();
  config.attribution.window_ms = 0.0;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = TestFleetConfig();
  config.attribution.exemplars_per_window = -1;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = TestFleetConfig();
  config.slo.slo_target = 1.0;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = TestFleetConfig();
  config.slo.fast_windows = 5;
  config.slo.slow_windows = 2;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = TestFleetConfig();
  config.slo.slow_burn_threshold = 0.0;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = TestFleetConfig();
  config.slo.min_requests = -1;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
}

TEST(FleetTest, RunRequiresDeployAndMatchingModel) {
  auto fleet = Fleet::Create(TestFleetConfig());
  ASSERT_TRUE(fleet.ok());
  ChaosScenario steady;
  EXPECT_FALSE(fleet.value()->Run(steady, TestLoad()).ok());
  ASSERT_TRUE(fleet.value()->Deploy("m", MakeNet(3), {16}).ok());
  TraceLoadConfig wrong = TestLoad();
  wrong.model = "other";
  EXPECT_FALSE(fleet.value()->Run(steady, wrong).ok());
}

TEST(FleetTest, SteadyScenarioServesEverything) {
  auto scenario = MakeScenario("steady", 0.5);
  ASSERT_TRUE(scenario.ok());
  auto report = RunFleet(TestFleetConfig(), scenario.value(), TestLoad());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const FleetReport& r = report.value();
  EXPECT_GT(r.offered, 0);
  EXPECT_EQ(r.offered, r.admitted);
  EXPECT_EQ(r.completed_ok, r.admitted);
  EXPECT_EQ(r.missed, 0);
  EXPECT_EQ(r.crashes, 0);
  EXPECT_DOUBLE_EQ(r.miss_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(r.time_to_recover_ms, -1.0);
  EXPECT_GT(r.steady_goodput_rps, 0.0);
  EXPECT_FALSE(r.windows.empty());
  const std::string json = FleetReportJson(r);
  EXPECT_NE(json.find("\"scenario\": \"steady\""), std::string::npos);
  EXPECT_NE(json.find("\"windows\": ["), std::string::npos);
}

TEST(FleetTest, TenantedLoadSlicesEveryRequestAndReplays) {
  auto scenario = MakeScenario("steady", 0.5);
  ASSERT_TRUE(scenario.ok());
  TraceLoadConfig load = TestLoad();
  load.tenant_mix = HotTenantMix(3, 4.0);

  const auto run = [&]() {
    auto report = RunFleet(TestFleetConfig(), scenario.value(), load);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(report).value();
  };
  const FleetReport r1 = run();

  // Every request lands in exactly one tenant row, and each row obeys
  // the same identities as the aggregate counters.
  ASSERT_EQ(r1.tenants.size(), 3u);
  int64_t offered = 0, admitted = 0, ok = 0, missed = 0, shed = 0;
  for (const auto& [tenant, row] : r1.tenants) {
    EXPECT_GT(row.offered, 0) << tenant;
    EXPECT_EQ(row.offered, row.admitted + row.shed) << tenant;
    EXPECT_EQ(row.admitted, row.completed_ok + row.missed) << tenant;
    offered += row.offered;
    admitted += row.admitted;
    ok += row.completed_ok;
    missed += row.missed;
    shed += row.shed;
  }
  EXPECT_EQ(offered, r1.offered);
  EXPECT_EQ(admitted, r1.admitted);
  EXPECT_EQ(ok, r1.completed_ok);
  EXPECT_EQ(missed, r1.missed);
  EXPECT_EQ(shed, r1.shed_queue_full + r1.shed_deadline + r1.shed_draining +
                      r1.shed_unhealthy);
  // The hot tenant carries ~2/3 of the offered load.
  EXPECT_GT(r1.tenants.at("t0").offered, 2 * r1.tenants.at("t1").offered);

  // The export grows a byte-stable "tenants" section, and the whole
  // tenanted run replays byte-for-byte.
  const std::string json = FleetReportJson(r1);
  EXPECT_NE(json.find("\"tenants\": {"), std::string::npos);
  EXPECT_NE(json.find("\"t0\": {"), std::string::npos);
  const FleetReport r2 = run();
  EXPECT_EQ(json, FleetReportJson(r2));
}

// Acceptance: a crash storm with checkpointed restarts must lose work
// (queued requests die, the detection gap fails requests) and then
// recover goodput to >= 90% of the pre-fault steady state within a
// bounded simulated time.
TEST(FleetTest, CrashStormRecoversWithCheckpointedRestart) {
  auto scenario = MakeScenario("crash_storm", 0.5);  // storm at 4 s
  ASSERT_TRUE(scenario.ok());
  FleetConfig config = TestFleetConfig();
  config.recovery = FleetRecovery::kCheckpointedRestart;
  config.restart_ms = 1000.0;
  auto report = RunFleet(config, scenario.value(), TestLoad());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const FleetReport& r = report.value();
  EXPECT_EQ(r.crashes, 2);
  EXPECT_EQ(r.restarts, 2);
  EXPECT_GT(r.missed, 0) << "a crash storm must cost something";
  EXPECT_GE(r.time_to_recover_ms, 0.0) << "fleet never recovered";
  // Bound: restart (1 s) + probe re-admission + one window of slack.
  EXPECT_LE(r.time_to_recover_ms, 5000.0);
  EXPECT_GT(r.failed_dead_replica + r.dropped_queued, 0)
      << "the detection gap and queue loss should be visible";
}

// Acceptance: a bad-version rollout must be caught by the canary metric
// and rolled back through the hot-swap path, with goodput recovering to
// >= 90% of steady within a bounded simulated time.
TEST(FleetTest, BadVersionRollsBackAndRecovers) {
  ChaosScenario scenario;
  scenario.name = "bad_version";
  scenario.seed = 11;
  FleetFaultEvent ev;
  ev.kind = FaultKind::kBadVersionRollout;
  ev.start_ms = 4000.0;
  ev.fraction = 1.0;
  // Slow enough that the canary's requests become deadline-infeasible:
  // the canary metric must trip within the bake window.
  ev.severity = 40.0;
  scenario.events.push_back(ev);
  FleetConfig config = TestFleetConfig();
  config.canary.bake_ms = 1500.0;
  config.canary.max_degraded_fraction = 0.2;
  auto report = RunFleet(config, scenario, TestLoad());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const FleetReport& r = report.value();
  EXPECT_EQ(r.rollouts, 1);
  EXPECT_EQ(r.rollbacks, 1);
  EXPECT_GT(r.shed_deadline, 0) << "the bad version should shed";
  EXPECT_GE(r.time_to_recover_ms, 0.0) << "fleet never recovered";
  // Bound: bake window (1.5 s) + rollback + recovery streak slack.
  EXPECT_LE(r.time_to_recover_ms, 4000.0);
}

// Acceptance: a latency lemon — a version slow enough to multiply tail
// latency but fast enough that every response still lands inside the
// deadline — produces zero degraded deliveries, so the degraded-fraction
// verdict alone would pass the bake and push the lemon fleet-wide. The
// windowed-p99 regression check must catch it and roll back.
TEST(FleetTest, LatencyLemonInsideDeadlineTriggersP99Rollback) {
  ChaosScenario scenario;
  scenario.name = "latency_lemon";
  scenario.seed = 12;
  FleetFaultEvent ev;
  ev.kind = FaultKind::kBadVersionRollout;
  ev.start_ms = 4000.0;
  ev.fraction = 1.0;
  // ~8x service time: client latency rises from ~3 ms to ~15-25 ms,
  // still comfortably under the 50 ms deadline.
  ev.severity = 8.0;
  scenario.events.push_back(ev);

  FleetConfig config = TestFleetConfig();
  config.canary.bake_ms = 1500.0;
  config.canary.max_degraded_fraction = 0.2;
  config.canary.max_p99_regression = 3.0;
  config.canary.min_p99_samples = 30;
  auto report = RunFleet(config, scenario, TestLoad());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const FleetReport& r = report.value();
  EXPECT_EQ(r.rollouts, 1);
  EXPECT_EQ(r.rollbacks, 1) << "the p99 check should have tripped";
  EXPECT_EQ(r.p99_rollbacks, 1);
  EXPECT_EQ(r.missed, 0) << "a true lemon misses nothing — that is the "
                            "blind spot this check closes";
  const std::string json = FleetReportJson(r);
  EXPECT_NE(json.find("\"p99_rollbacks\": 1"), std::string::npos);

  // Control: with the p99 check disabled the same lemon sails through
  // its bake and rolls out fleet-wide — the pre-existing blind spot.
  FleetConfig blind = config;
  blind.canary.max_p99_regression = 0.0;
  auto unchecked = RunFleet(blind, scenario, TestLoad());
  ASSERT_TRUE(unchecked.ok()) << unchecked.status().ToString();
  EXPECT_EQ(unchecked.value().rollouts, 1);
  EXPECT_EQ(unchecked.value().rollbacks, 0);
  EXPECT_EQ(unchecked.value().p99_rollbacks, 0);
}

TEST(FleetTest, ReactiveAutoscalerAddsReplicasUnderFlashCrowd) {
  ChaosScenario steady;
  steady.name = "flash_crowd";
  FleetConfig config = TestFleetConfig();
  config.initial_replicas = 1;
  config.autoscale.policy = ScalePolicy::kReactive;
  config.autoscale.decide_interval_ms = 500.0;
  config.autoscale.provision_lag_ms = 1000.0;
  // Shrink per-replica capacity so the crowd actually needs replicas:
  // one replica handles ~320 rps at 60% target utilization.
  config.server.cost.fixed_ms = 2.0;
  config.server.cost.per_example_ms = 1.5;
  config.server.batch.max_batch = 8;
  TraceLoadConfig load = TestLoad(10'000.0, 200.0);
  load.crowds.push_back({3000.0, 4000.0, 4.0});
  auto report = RunFleet(config, steady, load);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const FleetReport& r = report.value();
  EXPECT_GT(r.scale_ups, 0) << "the crowd should trigger scale-up";
  int peak_active = 0;
  for (const FleetWindow& w : r.windows) {
    peak_active = std::max(peak_active, w.active_replicas);
  }
  EXPECT_GT(peak_active, 1);
}

// Acceptance: the exported fleet metrics JSON and the simulated-clock
// trace slice replay byte-for-byte when only DLSYS_THREADS changes.
TEST(FleetTest, ChaosRunReplaysBitwiseAcrossThreadCounts) {
  auto scenario = MakeScenario("crash_storm", 0.5);
  ASSERT_TRUE(scenario.ok());
  const TraceLoadConfig load = TestLoad(8000.0, 400.0);

  const auto run_at = [&](int threads, std::string* json, std::string* trace,
                          std::string* attr) {
    RuntimeConfig::SetThreads(threads);
    obs::ResetTrace();
    obs::SetTracingEnabled(true);
    auto report = RunFleet(TestFleetConfig(), scenario.value(), load);
    obs::SetTracingEnabled(false);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    *json = FleetReportJson(report.value());
    *trace = obs::ChromeTraceJson(obs::SimTrackOnly(obs::DrainTrace()));
    *attr = obs::AttributionReportJson(report.value().attribution);
    obs::ResetTrace();
  };

  std::string json1, trace1, attr1, json8, trace8, attr8;
  run_at(1, &json1, &trace1, &attr1);
  run_at(8, &json8, &trace8, &attr8);
  RuntimeConfig::SetThreads(1);

  EXPECT_EQ(json1, json8)
      << "fleet metrics export must be bitwise thread-count independent";
  EXPECT_FALSE(trace1.empty());
  EXPECT_EQ(trace1, trace8)
      << "sim-track trace slice must be bitwise thread-count independent";
  EXPECT_FALSE(attr1.empty());
  EXPECT_EQ(attr1, attr8)
      << "attribution report must be bitwise thread-count independent";
}

// ------------------------------- critical-path attribution + burn rate

/// Oracle the burn-rate alerter must beat: the close of the first SLO
/// window whose p99 regresses past 3x the pre-fault mean — the signal
/// the PR-6 canary's windowed-p99 check keys on. -1 when it never fires.
double P99CanaryDetectionMs(const FleetReport& r, double window_ms) {
  double pre_sum = 0.0;
  int pre_n = 0;
  for (const FleetWindow& w : r.windows) {
    if (w.start_ms + window_ms <= r.fault_start_ms && w.p99_ms > 0.0) {
      pre_sum += w.p99_ms;
      ++pre_n;
    }
  }
  if (pre_n == 0) return -1.0;
  const double baseline = pre_sum / static_cast<double>(pre_n);
  for (const FleetWindow& w : r.windows) {
    if (w.start_ms + window_ms > r.fault_start_ms &&
        w.p99_ms > 3.0 * baseline) {
      return w.start_ms + window_ms;
    }
  }
  return -1.0;
}

/// TestFleetConfig + an 8 ms latency SLO: steady-state client latency is
/// ~2-4 ms (hops are 0.1 ms, service 1-3 ms), so clean runs never burn,
/// while both E35 gray scenarios push affected requests past 8 ms.
FleetConfig SloFleetConfig() {
  FleetConfig config = TestFleetConfig();
  config.slo.slo_latency_ms = 8.0;
  return config;
}

TEST(AttributionFleetTest, PathRecordsDecomposeBitwiseAtAnyThreadCount) {
  auto scenario = MakeScenario("crash_storm", 0.5);
  ASSERT_TRUE(scenario.ok());
  const TraceLoadConfig load = TestLoad(8000.0, 400.0);
  std::string first_attr;
  for (int threads : {1, 2, 8}) {
    RuntimeConfig::SetThreads(threads);
    auto report = RunFleet(TestFleetConfig(), scenario.value(), load);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const FleetReport& r = report.value();
    ASSERT_FALSE(r.path_records.empty());
    for (const obs::RequestPathRecord& rec : r.path_records) {
      const obs::PathComponents comp = obs::DecomposePath(rec);
      ASSERT_EQ(comp.total_ns(), rec.deliver_ns - rec.send_ns)
          << "rid " << rec.rid << " at threads " << threads;
      ASSERT_GT(comp[obs::PathComponent::kRouteHop], 0) << "rid " << rec.rid;
      ASSERT_GT(comp[obs::PathComponent::kReturnHop], 0) << "rid " << rec.rid;
    }
    const std::string attr = obs::AttributionReportJson(r.attribution);
    if (first_attr.empty()) {
      first_attr = attr;
      EXPECT_NE(attr.find("\"exemplars\": ["), std::string::npos);
    } else {
      EXPECT_EQ(first_attr, attr) << "threads " << threads;
    }
  }
  RuntimeConfig::SetThreads(1);
}

#if DLSYS_OBS
// Needs real span emission; under -DDLSYS_OBS=0 the rings are compiled
// out (the record-side decomposition tests above still run there).
TEST(AttributionFleetTest, TraceDerivedComponentsMatchRecordsBitwise) {
  auto scenario = MakeScenario("steady", 0.5);
  ASSERT_TRUE(scenario.ok());
  RuntimeConfig::SetThreads(1);
  obs::ResetTrace();
  obs::SetTracingEnabled(true);
  auto report =
      RunFleet(TestFleetConfig(), scenario.value(), TestLoad(6000.0, 300.0));
  obs::SetTracingEnabled(false);
  const obs::TraceBuffer buf = obs::SimTrackOnly(obs::DrainTrace());
  obs::ResetTrace();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const FleetReport& r = report.value();
  ASSERT_FALSE(r.path_records.empty());
  EXPECT_EQ(buf.dropped, 0) << "sim ring must hold the whole run";

  // The span tree and the records are two views of the same boundaries:
  // re-deriving the decomposition from span durations alone must agree
  // bitwise, component by component, for every delivered request.
  const std::map<int64_t, obs::PathComponents> from_trace =
      obs::ComponentsFromTrace(buf);
  for (const obs::RequestPathRecord& rec : r.path_records) {
    const auto it = from_trace.find(rec.rid);
    ASSERT_NE(it, from_trace.end()) << "no spans for rid " << rec.rid;
    const obs::PathComponents want = obs::DecomposePath(rec);
    for (int c = 0; c < obs::kPathComponents; ++c) {
      ASSERT_EQ(it->second.ns[c], want.ns[c])
          << "rid " << rec.rid << " component "
          << obs::PathComponentName(static_cast<obs::PathComponent>(c));
    }
  }
}
#endif  // DLSYS_OBS

TEST(AttributionFleetTest, SteadyRunRaisesNoAlerts) {
  auto scenario = MakeScenario("steady", 0.5);
  ASSERT_TRUE(scenario.ok());
  auto report = RunFleet(SloFleetConfig(), scenario.value(), TestLoad());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const FleetReport& r = report.value();
  EXPECT_TRUE(r.alerts.empty()) << "clean run burned budget: "
                                << obs::BurnAlertsJson(r.alerts);
  // Every in-time delivery leaves exactly one path record.
  EXPECT_EQ(static_cast<int64_t>(r.path_records.size()), r.completed_ok);
  EXPECT_NE(FleetReportJson(r).find("\"alerts\": []"), std::string::npos);
}

TEST(AttributionFleetTest, GrayFailureAlertsExecuteDominantBeforeCanary) {
  auto scenario = MakeScenario("gray_failure", 0.5);  // compute 8x at 4 s
  ASSERT_TRUE(scenario.ok());
  const FleetConfig config = SloFleetConfig();
  auto report = RunFleet(config, scenario.value(), TestLoad());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const FleetReport& r = report.value();

  std::vector<obs::BurnAlert> fleet_alerts;
  for (const obs::BurnAlert& a : r.alerts) {
    if (a.scope == "fleet") fleet_alerts.push_back(a);
  }
  ASSERT_FALSE(fleet_alerts.empty()) << "gray failure never alerted";
  const obs::BurnAlert& first = fleet_alerts.front();
  // Zero false alarms: nothing fires before the fault exists.
  EXPECT_GE(first.t_ms, r.fault_start_ms);
  // The alert classifies the fault at detection time: compute 8x burns
  // budget in the execute stage.
  EXPECT_EQ(first.dominant, obs::PathComponent::kExecute);
  EXPECT_GT(first.dominant_share, 0.5);
  EXPECT_GE(first.fast_burn, config.slo.fast_burn_threshold);
  EXPECT_GE(first.slow_burn, config.slo.slow_burn_threshold);

  // Faster than the windowed-p99 canary signal over the same run.
  const double canary_ms = P99CanaryDetectionMs(r, config.window_ms);
  ASSERT_GT(canary_ms, 0.0) << "oracle must also see an 8x compute fault";
  EXPECT_LE(first.t_ms, canary_ms);
}

TEST(AttributionFleetTest, SlowPartitionAlertsRouteHopDominant) {
  auto scenario = MakeScenario("slow_partition", 0.5);  // hop 40x at 4 s
  ASSERT_TRUE(scenario.ok());
  const FleetConfig config = SloFleetConfig();
  auto report = RunFleet(config, scenario.value(), TestLoad());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const FleetReport& r = report.value();

  std::vector<obs::BurnAlert> fleet_alerts;
  for (const obs::BurnAlert& a : r.alerts) {
    if (a.scope == "fleet") fleet_alerts.push_back(a);
  }
  ASSERT_FALSE(fleet_alerts.empty()) << "slow partition never alerted";
  const obs::BurnAlert& first = fleet_alerts.front();
  EXPECT_GE(first.t_ms, r.fault_start_ms);
  // Same alerter, opposite verdict from the gray failure: a 40x network
  // hop burns budget in the route stage (the forward hop carries the
  // 4096-byte request, so it strictly dominates the 512-byte return).
  EXPECT_EQ(first.dominant, obs::PathComponent::kRouteHop);
  EXPECT_LE(first.t_ms, r.fault_start_ms + 2000.0)
      << "detection should land within a couple of slow buckets";
}

}  // namespace
}  // namespace dlsys
