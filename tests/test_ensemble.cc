#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/ensemble/ensemble.h"
#include "src/ensemble/treenet.h"
#include "src/nn/layers.h"
#include "src/nn/train.h"

namespace dlsys {
namespace {

Dataset BlobData(uint64_t seed, int64_t n = 600) {
  Rng rng(seed);
  return MakeGaussianBlobs(n, 8, 4, 2.5, &rng);
}

MemberBuilder MlpBuilder() {
  return [](int64_t) { return MakeMlp(8, {24}, 4); };
}

TEST(EnsembleTest, RejectsNonPositiveSize) {
  Dataset data = BlobData(1);
  TrainConfig config;
  EXPECT_FALSE(TrainFullEnsemble(MlpBuilder(), 0, data, config, 0.05, 1).ok());
  EXPECT_FALSE(
      TrainSnapshotEnsemble(MlpBuilder(), 0, 2, data, 32, 0.1, 1).ok());
}

TEST(EnsembleTest, FullEnsembleBeatsSingleMember) {
  Dataset data = BlobData(2, 800);
  auto split = Split(data, 0.75);
  TrainConfig config;
  config.epochs = 10;
  auto run = TrainFullEnsemble(MlpBuilder(), 5, split.train, config, 0.05, 3);
  ASSERT_TRUE(run.ok());
  auto& ensemble = const_cast<Ensemble&>(run->ensemble);
  const double ens_acc = ensemble.Accuracy(split.test);
  const double single_acc =
      Evaluate(&ensemble.member(0), split.test).accuracy;
  EXPECT_GE(ens_acc, single_acc - 0.02)
      << "averaging should not hurt materially";
  EXPECT_GT(ens_acc, 0.7);
  EXPECT_EQ(ensemble.size(), 5);
}

TEST(EnsembleTest, MembersDifferAcrossSeeds) {
  Dataset data = BlobData(4, 300);
  TrainConfig config;
  config.epochs = 3;
  auto run = TrainFullEnsemble(MlpBuilder(), 2, data, config, 0.05, 5);
  ASSERT_TRUE(run.ok());
  auto& e = const_cast<Ensemble&>(run->ensemble);
  std::vector<float> p0 = e.member(0).GetParameterVector();
  std::vector<float> p1 = e.member(1).GetParameterVector();
  EXPECT_NE(p0, p1);
}

TEST(EnsembleTest, SnapshotProducesKMembersFromOneRun) {
  Dataset data = BlobData(6, 600);
  auto split = Split(data, 0.75);
  auto run =
      TrainSnapshotEnsemble(MlpBuilder(), 4, 4, split.train, 32, 0.1, 7);
  ASSERT_TRUE(run.ok());
  auto& e = const_cast<Ensemble&>(run->ensemble);
  EXPECT_EQ(e.size(), 4);
  EXPECT_GT(e.Accuracy(split.test), 0.7);
  // Snapshots must differ (they come from different cycles).
  EXPECT_NE(e.member(0).GetParameterVector(),
            e.member(3).GetParameterVector());
}

TEST(EnsembleTest, SnapshotIsCheaperThanFullTraining) {
  Dataset data = BlobData(8, 600);
  TrainConfig full_config;
  full_config.epochs = 16;  // 4 members x 16 epochs
  auto full = TrainFullEnsemble(MlpBuilder(), 4, data, full_config, 0.05, 9);
  auto snap = TrainSnapshotEnsemble(MlpBuilder(), 4, 4, data, 32, 0.1, 9);
  ASSERT_TRUE(full.ok() && snap.ok());
  // Snapshot trains 16 total epochs vs 64: must be substantially cheaper.
  EXPECT_LT(snap->report.Get(metric::kTrainSeconds),
            full->report.Get(metric::kTrainSeconds));
}

TEST(EnsembleTest, FgeProducesKDistinctMembers) {
  Dataset data = BlobData(9, 600);
  auto split = Split(data, 0.75);
  auto run = TrainFastGeometricEnsemble(MlpBuilder(), 4, 6, 2, split.train,
                                        32, 0.05, 0.05, 0.005, 11);
  ASSERT_TRUE(run.ok());
  auto& e = const_cast<Ensemble&>(run->ensemble);
  EXPECT_EQ(e.size(), 4);
  EXPECT_GT(e.Accuracy(split.test), 0.7);
  // Exploration cycles must actually move the parameters.
  EXPECT_NE(e.member(0).GetParameterVector(),
            e.member(1).GetParameterVector());
}

TEST(EnsembleTest, FgeRejectsBadConfig) {
  Dataset data = BlobData(10, 100);
  EXPECT_FALSE(TrainFastGeometricEnsemble(MlpBuilder(), 0, 5, 2, data, 32,
                                          0.05, 0.05, 0.005, 1)
                   .ok());
  EXPECT_FALSE(TrainFastGeometricEnsemble(MlpBuilder(), 3, 5, 2, data, 32,
                                          0.05, 0.001, 0.005, 1)
                   .ok())
      << "lr_hi < lr_lo must be rejected";
}

TEST(HatchTest, CopiesOverlappingBlocks) {
  Rng rng(10);
  Sequential small = MakeMlp(4, {3}, 2);
  Sequential big = MakeMlp(4, {6}, 2);
  small.Init(&rng);
  big.Init(&rng);
  ASSERT_TRUE(HatchParameters(&small, &big).ok());
  auto* sw = dynamic_cast<Dense*>(small.layer(0));
  auto* bw = dynamic_cast<Dense*>(big.layer(0));
  ASSERT_NE(sw, nullptr);
  ASSERT_NE(bw, nullptr);
  // Top-left 4x3 block of big's first weight equals small's.
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(bw->weight()[r * 6 + c], sw->weight()[r * 3 + c]);
    }
  }
}

TEST(HatchTest, RejectsMismatchedDepth) {
  Rng rng(11);
  Sequential a = MakeMlp(4, {3}, 2);
  Sequential b = MakeMlp(4, {3, 3}, 2);
  a.Init(&rng);
  b.Init(&rng);
  EXPECT_FALSE(HatchParameters(&a, &b).ok());
}

TEST(EnsembleTest, MotherNetsReachesReasonableAccuracyFaster) {
  Dataset data = BlobData(12, 800);
  auto split = Split(data, 0.75);
  auto mothernets = TrainMotherNets(8, 4, {16, 24, 32}, 8, 2, split.train, 32,
                                    0.05, 13);
  ASSERT_TRUE(mothernets.ok());
  auto& e = const_cast<Ensemble&>(mothernets->ensemble);
  EXPECT_EQ(e.size(), 3);
  EXPECT_GT(e.Accuracy(split.test), 0.7);

  // Baseline: every member trained from scratch for the full budget.
  TrainConfig config;
  config.epochs = 10;
  int64_t idx = 0;
  std::vector<int64_t> widths = {16, 24, 32};
  MemberBuilder hetero = [&widths, &idx](int64_t i) {
    (void)idx;
    return MakeMlp(8, {widths[static_cast<size_t>(i)]}, 4);
  };
  auto full = TrainFullEnsemble(hetero, 3, split.train, config, 0.05, 13);
  ASSERT_TRUE(full.ok());
  EXPECT_LT(mothernets->report.Get(metric::kTrainSeconds),
            full->report.Get(metric::kTrainSeconds))
      << "mother(8 epochs) + 3x finetune(2) < 3x scratch(10)";
}

TEST(TreeNetTest, SharedTrunkSavesParameters) {
  Sequential trunk = MakeMlp(8, {}, 32);  // dense(8->32) only
  trunk.Emplace<ReLU>();
  Sequential head = MakeMlp(32, {}, 4);
  Rng rng(14);
  trunk.Init(&rng);
  TreeNet tree(std::move(trunk), head, 4, 15);
  // 4 independent nets would be 4*(8*32+32 + 32*4+4); tree shares trunk.
  const int64_t independent = 4 * (8 * 32 + 32 + 32 * 4 + 4);
  EXPECT_LT(tree.NumParams(), independent);
  EXPECT_EQ(tree.num_heads(), 4);
}

TEST(TreeNetTest, TrainsToReasonableAccuracy) {
  Dataset data = BlobData(16, 800);
  auto split = Split(data, 0.75);
  Sequential trunk = MakeMlp(8, {}, 32);
  trunk.Emplace<ReLU>();
  Sequential head = MakeMlp(32, {}, 4);
  Rng rng(17);
  trunk.Init(&rng);
  TreeNet tree(std::move(trunk), head, 3, 18);
  MetricsReport report = TrainTreeNet(&tree, split.train, 12, 32, 0.05, 19);
  EXPECT_GT(tree.Accuracy(split.test), 0.7);
  EXPECT_GT(report.Get(metric::kTrainSeconds), 0.0);
}

TEST(TreeNetTest, HeadsDiverge) {
  Sequential trunk = MakeMlp(4, {}, 8);
  trunk.Emplace<ReLU>();
  Sequential head = MakeMlp(8, {}, 2);
  Rng rng(20);
  trunk.Init(&rng);
  TreeNet tree(std::move(trunk), head, 2, 21);
  Rng drng(22);
  Dataset data = MakeGaussianBlobs(200, 4, 2, 3.0, &drng);
  TrainTreeNet(&tree, data, 3, 32, 0.05, 23);
  // Heads were independently initialized; averaged prediction works.
  Tensor probs = tree.PredictProbs(data.x);
  EXPECT_EQ(probs.dim(0), data.size());
  for (int64_t i = 0; i < 5; ++i) {
    double row = probs.at(i, 0) + probs.at(i, 1);
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

}  // namespace
}  // namespace dlsys
