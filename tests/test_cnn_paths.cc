// Convolutional-network coverage of the technique modules: the
// tutorial's running examples are CNNs, so the compression, memory, and
// inspection machinery must work on rank-4 weights and conv pipelines,
// not just MLPs.

#include <gtest/gtest.h>

#include "src/compress/pruning.h"
#include "src/compress/quantization.h"
#include "src/data/synthetic.h"
#include "src/interpret/model_store.h"
#include "src/interpret/saliency.h"
#include "src/memsched/checkpoint.h"
#include "src/nn/serialize.h"
#include "src/nn/loss.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace dlsys {
namespace {

class CnnPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(41);
    data_ = MakeDigitGrid(400, 8, 4, 0.2, &rng);
    split_ = Split(data_, 0.8);
    net_ = MakeCnn(8, 4, 8, 4);
    net_.Init(&rng);
    Adam opt(0.005);
    TrainConfig tc;
    tc.epochs = 8;
    tc.batch_size = 16;
    Train(&net_, &opt, split_.train, tc);
  }
  Dataset data_;
  TrainTestSplit split_;
  Sequential net_;
};

TEST_F(CnnPathTest, BaselineLearns) {
  EXPECT_GT(Evaluate(&net_, split_.test).accuracy, 0.9);
}

TEST_F(CnnPathTest, QuantizationWorksOnConvWeights) {
  Sequential q = net_.Clone();
  auto nq = QuantizeNetwork(&q, QuantizerKind::kUniform, 8);
  ASSERT_TRUE(nq.ok());
  EXPECT_GT(Evaluate(&q, split_.test).accuracy,
            Evaluate(&net_, split_.test).accuracy - 0.05);
  EXPECT_LT(nq->packed_bytes, nq->original_bytes);
}

TEST_F(CnnPathTest, MagnitudePruningCoversRank4Weights) {
  Sequential p = net_.Clone();
  auto mask =
      BuildPruneMask(&p, PruneCriterion::kMagnitude, 0.5, nullptr, nullptr);
  ASSERT_TRUE(mask.ok());
  EXPECT_NEAR(mask->Sparsity(), 0.5, 0.02);
  mask->Apply(&p);
  // Conv weight tensors must have zeros now.
  bool conv_has_zeros = false;
  for (Tensor* w : p.Params()) {
    if (w->rank() == 4) {
      for (int64_t i = 0; i < w->size(); ++i) {
        if ((*w)[i] == 0.0f) {
          conv_has_zeros = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(conv_has_zeros);
}

TEST_F(CnnPathTest, FilterPruningRemovesWholeConvFilters) {
  Sequential p = net_.Clone();
  auto mask = BuildFilterPruneMask(&p, 0.3);
  ASSERT_TRUE(mask.ok());
  // In every rank-4 mask, each output-filter slice is all-0 or all-1.
  for (const Tensor& m : mask->masks()) {
    if (m.rank() != 4) continue;
    const int64_t oc = m.dim(0);
    const int64_t per = m.size() / oc;
    for (int64_t f = 0; f < oc; ++f) {
      const float first = m[f * per];
      for (int64_t r = 1; r < per; ++r) {
        ASSERT_EQ(m[f * per + r], first) << "filter " << f;
      }
    }
  }
}

TEST_F(CnnPathTest, CheckpointedCnnStepMatchesPlain) {
  Sequential a = net_.Clone();
  Sequential b = net_.Clone();
  Sgd opt_a(0.01), opt_b(0.01);
  Dataset batch = Batch(split_.train, 0, 32);

  a.ZeroGrads();
  Tensor logits = a.Forward(batch.x, CacheMode::kCache);
  LossGrad lg = SoftmaxCrossEntropy(logits, batch.y);
  a.Backward(lg.grad);
  opt_a.Step(a.Params(), a.Grads());

  auto loss = CheckpointedStep(&b, &opt_b, batch, PlanSqrtN(b.size()));
  ASSERT_TRUE(loss.ok());
  EXPECT_EQ(a.GetParameterVector(), b.GetParameterVector())
      << "conv recompute must be bit-exact";
}

TEST_F(CnnPathTest, CheckpointingCutsConvActivationPeak) {
  Sequential a = net_.Clone();
  Sequential b = net_.Clone();
  Sgd opt(0.01);
  Dataset batch = Batch(split_.train, 0, 64);
  MemoryTracker::Global().ResetPeak();
  ASSERT_TRUE(CheckpointedStep(&a, &opt, batch, PlanNone(a.size())).ok());
  const int64_t plain = MemoryTracker::Global().peak_bytes();
  MemoryTracker::Global().ResetPeak();
  ASSERT_TRUE(CheckpointedStep(&b, &opt, batch, PlanSqrtN(b.size())).ok());
  EXPECT_LT(MemoryTracker::Global().peak_bytes(), plain);
}

TEST_F(CnnPathTest, SaliencyOnImagesHighlightsStrokePixels) {
  // The digit-grid classes are stroke patterns; saliency for the true
  // class should be concentrated (non-uniform) over the 8x8 image.
  Tensor x({1, 1, 8, 8});
  std::copy(split_.test.x.data(), split_.test.x.data() + 64, x.data());
  auto saliency = SaliencyMap(&net_, x, split_.test.y[0]);
  ASSERT_TRUE(saliency.ok());
  float mx = 0.0f;
  double mean = 0.0;
  for (int64_t i = 0; i < 64; ++i) {
    mx = std::max(mx, (*saliency)[i]);
    mean += (*saliency)[i];
  }
  mean /= 64.0;
  EXPECT_GT(mx, 3.0 * mean) << "saliency should peak on informative pixels";
}

TEST_F(CnnPathTest, ModelStoreCapturesConvActivations) {
  Dataset batch = Batch(split_.test, 0, 16);
  auto store = ModelStore::Capture(&net_, batch.x, StorageMode::kQuantized);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->num_layers(), net_.size());
  // First conv layer output: 16 x (4 * 8 * 8) units.
  auto layer = store->GetLayer(0);
  ASSERT_TRUE(layer.ok());
  EXPECT_EQ(layer->dim(0), 16);
}

TEST_F(CnnPathTest, SerializationRoundTripsConvNets) {
  const std::string path = ::testing::TempDir() + "/cnn.dlsy";
  ASSERT_TRUE(SaveParameters(net_, path).ok());
  Sequential restored = MakeCnn(8, 4, 8, 4);
  Rng rng(99);
  restored.Init(&rng);
  ASSERT_TRUE(LoadParameters(&restored, path).ok());
  EXPECT_EQ(net_.GetParameterVector(), restored.GetParameterVector());
}

}  // namespace
}  // namespace dlsys
