// Tests for the SIMD microkernel backend (src/simd): dispatch registry
// behavior, bit-parity of every per-ISA kernel table against the scalar
// reference at thread counts 1/2/8 on unaligned/tail shapes, block
// quantization round-trip error bounds (q8 and q4), the q4 nibble packing
// layout, and the kernel.dispatch.* observability counters.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "src/compress/quantization.h"
#include "src/core/rng.h"
#include "src/obs/counters.h"
#include "src/runtime/runtime.h"
#include "src/simd/dispatch.h"
#include "src/simd/kernels.h"
#include "src/tensor/int8_gemm.h"
#include "src/tensor/ops.h"

namespace dlsys {
namespace {

/// Restores the ISA active at construction; tests force ISAs freely and
/// leave the process the way they found it (the binary may have been
/// launched under a DLSYS_ISA override that later tests rely on).
struct IsaRestore {
  simd::Isa prev = simd::ActiveIsa();
  ~IsaRestore() { simd::SetIsa(prev); }
};

std::vector<simd::Isa> SupportedIsas() {
  std::vector<simd::Isa> out;
  for (simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (simd::IsaSupported(isa)) out.push_back(isa);
  }
  return out;
}

bool BitwiseEqual(const float* a, const float* b, int64_t count) {
  return std::memcmp(a, b, static_cast<size_t>(count) * sizeof(float)) == 0;
}

// Deliberately awkward GEMM extents: nothing is a multiple of the 4/8/16/32
// vector and tile widths, so every SIMD kernel's row-tail, column-tail, and
// reduction-tail paths execute alongside the full-tile fast path.
struct GemmShape {
  int64_t m, k, n;
};
const GemmShape kTailShapes[] = {
    {1, 1, 1}, {3, 7, 5}, {5, 31, 17}, {7, 33, 33}, {13, 65, 47}, {33, 96, 80},
};

TEST(DispatchTest, ParseIsaSpellings) {
  simd::Isa isa;
  EXPECT_TRUE(simd::ParseIsa("scalar", &isa));
  EXPECT_EQ(isa, simd::Isa::kScalar);
  EXPECT_TRUE(simd::ParseIsa("avx2", &isa));
  EXPECT_EQ(isa, simd::Isa::kAvx2);
  EXPECT_TRUE(simd::ParseIsa("avx512", &isa));
  EXPECT_EQ(isa, simd::Isa::kAvx512);
  EXPECT_FALSE(simd::ParseIsa("sse9", &isa));
  EXPECT_FALSE(simd::ParseIsa("", &isa));
}

TEST(DispatchTest, ScalarAlwaysSupportedAndComplete) {
  EXPECT_TRUE(simd::IsaSupported(simd::Isa::kScalar));
  const simd::KernelTable* table = simd::GetScalarTable();
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->isa, simd::Isa::kScalar);
  EXPECT_NE(table->matmul_range, nullptr);
  EXPECT_NE(table->matmul_ta_range, nullptr);
  EXPECT_NE(table->matmul_tb_range, nullptr);
  EXPECT_NE(table->conv_gemm_bias_cols, nullptr);
  EXPECT_NE(table->int8_gemm_rows, nullptr);
  EXPECT_NE(table->q8_gemm_rows, nullptr);
  EXPECT_NE(table->q4_gemm_rows, nullptr);
}

TEST(DispatchTest, SetIsaSelectsMatchingTable) {
  IsaRestore restore;
  for (simd::Isa isa : SupportedIsas()) {
    simd::SetIsa(isa);
    EXPECT_EQ(simd::ActiveIsa(), isa);
    const simd::KernelTable& table = simd::ActiveKernels();
    EXPECT_EQ(table.isa, isa);
    EXPECT_EQ(std::string(table.span_cat),
              std::string("kernel.") + simd::IsaName(isa));
  }
}

TEST(DispatchTest, BestSupportedIsaIsSupported) {
  EXPECT_TRUE(simd::IsaSupported(simd::BestSupportedIsa()));
}

#if DLSYS_OBS
TEST(DispatchTest, KernelLaunchesBumpDispatchCounters) {
  IsaRestore restore;
  Rng rng(31);
  Tensor a({4, 9}), b({9, 5});
  a.FillGaussian(&rng, 1.0f);
  b.FillGaussian(&rng, 1.0f);
  for (simd::Isa isa : SupportedIsas()) {
    simd::SetIsa(isa);
    const std::string name = std::string("kernel.dispatch.") +
                             simd::IsaName(isa);
    auto before = obs::CounterRegistry::Global().SnapshotCounters();
    Tensor c = MatMul(a, b);
    ASSERT_GT(c.size(), 0);
    auto after = obs::CounterRegistry::Global().SnapshotCounters();
    auto diff = obs::CounterRegistry::Diff(after, before);
    EXPECT_GE(diff[name], 1) << name;
  }
}
#endif  // DLSYS_OBS

// ------------------------------------------------- fp32 bit-parity matrix

TEST(SimdParityTest, FloatGemmBitwiseAcrossIsasAndThreads) {
  IsaRestore restore;
  Rng rng(32);
  for (const GemmShape& s : kTailShapes) {
    Tensor a({s.m, s.k}), b({s.k, s.n});
    a.FillGaussian(&rng, 1.0f);
    b.FillGaussian(&rng, 1.0f);
    Tensor at = Transpose(a);  // (k, m) for MatMulTransA
    Tensor bt = Transpose(b);  // (n, k) for MatMulTransB

    const Tensor ref = NaiveMatMul(a, b);
    const Tensor ref_ta = NaiveMatMulTransA(at, b);
    const Tensor ref_tb = NaiveMatMulTransB(a, bt);

    for (simd::Isa isa : SupportedIsas()) {
      simd::SetIsa(isa);
      for (int threads : {1, 2, 8}) {
        RuntimeConfig::SetThreads(threads);
        SCOPED_TRACE(std::string("isa=") + simd::IsaName(isa) +
                     " threads=" + std::to_string(threads) + " m=" +
                     std::to_string(s.m) + " k=" + std::to_string(s.k) +
                     " n=" + std::to_string(s.n));
        Tensor c = MatMul(a, b);
        EXPECT_TRUE(BitwiseEqual(c.data(), ref.data(), ref.size()));
        Tensor c_ta = MatMulTransA(at, b);
        EXPECT_TRUE(BitwiseEqual(c_ta.data(), ref_ta.data(), ref_ta.size()));
        Tensor c_tb = MatMulTransB(a, bt);
        EXPECT_TRUE(BitwiseEqual(c_tb.data(), ref_tb.data(), ref_tb.size()));
      }
    }
  }
  RuntimeConfig::SetThreads(1);
}

TEST(SimdParityTest, ConvGemmBiasBitwiseAcrossIsasAndThreads) {
  IsaRestore restore;
  Rng rng(33);
  for (const GemmShape& s : kTailShapes) {
    Tensor a({s.m, s.k}), bt({s.n, s.k}), bias({s.m});
    a.FillGaussian(&rng, 1.0f);
    bt.FillGaussian(&rng, 1.0f);
    bias.FillGaussian(&rng, 1.0f);

    // Reference: the scalar range kernel over the full column span.
    std::vector<float> ref(static_cast<size_t>(s.m * s.n));
    simd::ConvGemmBiasColsScalar(a.data(), bt.data(), bias.data(), ref.data(),
                                 s.m, s.k, s.n, 0, s.n);

    std::vector<float> c(static_cast<size_t>(s.m * s.n));
    for (simd::Isa isa : SupportedIsas()) {
      simd::SetIsa(isa);
      for (int threads : {1, 2, 8}) {
        RuntimeConfig::SetThreads(threads);
        SCOPED_TRACE(std::string("isa=") + simd::IsaName(isa) +
                     " threads=" + std::to_string(threads) + " m=" +
                     std::to_string(s.m) + " k=" + std::to_string(s.k) +
                     " n=" + std::to_string(s.n));
        std::fill(c.begin(), c.end(), -1.0f);  // stale data must be overwritten
        ConvGemmBiasInto(a.data(), bt.data(), bias.data(), c.data(), s.m, s.k,
                         s.n);
        EXPECT_TRUE(BitwiseEqual(c.data(), ref.data(), s.m * s.n));
      }
    }
  }
  RuntimeConfig::SetThreads(1);
}

TEST(SimdParityTest, MatMulBiasActBitwiseEqualsSeparatePasses) {
  // The fused-epilogue contract: MatMulBiasActInto must equal MatMulInto
  // followed by separate bias and relu output passes, bit for bit, at
  // every ISA and thread count — fusion may only remove stores/reloads,
  // never change a float operation. Gaussian data lands on both sides of
  // zero, so the relu branch takes both arms.
  IsaRestore restore;
  Rng rng(35);
  for (const GemmShape& s : kTailShapes) {
    Tensor a({s.m, s.k}), b({s.k, s.n}), bias({s.n});
    a.FillGaussian(&rng, 1.0f);
    b.FillGaussian(&rng, 1.0f);
    bias.FillGaussian(&rng, 1.0f);

    for (const bool relu : {false, true}) {
      // Reference: unfused pipeline on the scalar table, single thread.
      simd::SetIsa(simd::Isa::kScalar);
      RuntimeConfig::SetThreads(1);
      std::vector<float> ref(static_cast<size_t>(s.m * s.n));
      MatMulInto(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
      for (int64_t i = 0; i < s.m; ++i) {
        for (int64_t j = 0; j < s.n; ++j) {
          float& v = ref[static_cast<size_t>(i * s.n + j)];
          v += bias[j];
          if (relu) v = v > 0.0f ? v : 0.0f;
        }
      }
      std::vector<float> c(static_cast<size_t>(s.m * s.n));
      for (simd::Isa isa : SupportedIsas()) {
        simd::SetIsa(isa);
        for (int threads : {1, 2, 8}) {
          RuntimeConfig::SetThreads(threads);
          std::fill(c.begin(), c.end(), -1.0f);
          MatMulBiasActInto(a.data(), b.data(), bias.data(), c.data(), s.m,
                            s.k, s.n, relu);
          EXPECT_TRUE(BitwiseEqual(c.data(), ref.data(), s.m * s.n))
              << "isa=" << simd::IsaName(isa) << " threads=" << threads
              << " relu=" << relu << " m=" << s.m << " k=" << s.k
              << " n=" << s.n;
        }
      }
    }
  }
  RuntimeConfig::SetThreads(1);
}

TEST(SimdParityTest, ConvGemmBiasActBitwiseEqualsSeparateRelu) {
  IsaRestore restore;
  Rng rng(36);
  for (const GemmShape& s : kTailShapes) {
    Tensor a({s.m, s.k}), bt({s.n, s.k}), bias({s.m});
    a.FillGaussian(&rng, 1.0f);
    bt.FillGaussian(&rng, 1.0f);
    bias.FillGaussian(&rng, 1.0f);

    for (const bool relu : {false, true}) {
      simd::SetIsa(simd::Isa::kScalar);
      RuntimeConfig::SetThreads(1);
      std::vector<float> ref(static_cast<size_t>(s.m * s.n));
      ConvGemmBiasInto(a.data(), bt.data(), bias.data(), ref.data(), s.m,
                       s.k, s.n);
      if (relu) {
        for (float& v : ref) v = v > 0.0f ? v : 0.0f;
      }
      std::vector<float> c(static_cast<size_t>(s.m * s.n));
      for (simd::Isa isa : SupportedIsas()) {
        simd::SetIsa(isa);
        for (int threads : {1, 2, 8}) {
          RuntimeConfig::SetThreads(threads);
          std::fill(c.begin(), c.end(), -1.0f);
          ConvGemmBiasActInto(a.data(), bt.data(), bias.data(), c.data(),
                              s.m, s.k, s.n, relu);
          EXPECT_TRUE(BitwiseEqual(c.data(), ref.data(), s.m * s.n))
              << "isa=" << simd::IsaName(isa) << " threads=" << threads
              << " relu=" << relu << " m=" << s.m << " k=" << s.k
              << " n=" << s.n;
        }
      }
    }
  }
  RuntimeConfig::SetThreads(1);
}

// ---------------------------------------------- integer bit-exactness

TEST(SimdParityTest, Int8GemmBitExactAcrossIsasAndThreads) {
  IsaRestore restore;
  Rng rng(34);
  for (const GemmShape& s : kTailShapes) {
    std::vector<int8_t> a(static_cast<size_t>(s.m * s.k));
    std::vector<int8_t> b(static_cast<size_t>(s.n * s.k));
    for (int8_t& v : a) v = static_cast<int8_t>(rng.Next() % 255 - 127);
    for (int8_t& v : b) v = static_cast<int8_t>(rng.Next() % 255 - 127);

    std::vector<int32_t> ref(static_cast<size_t>(s.m * s.n));
    NaiveInt8GemmTransBInto(a.data(), b.data(), ref.data(), s.m, s.k, s.n);

    std::vector<int32_t> c(static_cast<size_t>(s.m * s.n));
    for (simd::Isa isa : SupportedIsas()) {
      simd::SetIsa(isa);
      for (int threads : {1, 2, 8}) {
        RuntimeConfig::SetThreads(threads);
        std::fill(c.begin(), c.end(), -1);
        Int8GemmTransBInto(a.data(), b.data(), c.data(), s.m, s.k, s.n);
        EXPECT_EQ(std::memcmp(c.data(), ref.data(),
                              c.size() * sizeof(int32_t)),
                  0)
            << "isa=" << simd::IsaName(isa) << " threads=" << threads
            << " m=" << s.m << " k=" << s.k << " n=" << s.n;
      }
    }
  }
  RuntimeConfig::SetThreads(1);
}

TEST(SimdParityTest, BlockGemmBitExactAcrossIsasAndThreads) {
  IsaRestore restore;
  Rng rng(35);
  // K values straddling block boundaries: 1 and 33 exercise the zero-code
  // padding, 32/64/96 the exact multiples.
  for (int64_t k : {int64_t{1}, int64_t{32}, int64_t{33}, int64_t{64},
                    int64_t{96}}) {
    const int64_t m = 5, n = 17;
    Tensor x({m, k}), w({n, k});
    x.FillGaussian(&rng, 1.0f);
    w.FillGaussian(&rng, 0.5f);
    Q8BlockMatrix qa = Q8BlockQuantizeRows(x);
    Q8BlockMatrix qb8 = Q8BlockQuantizeRows(w);
    Q4BlockMatrix qb4 = Q4BlockQuantizeRows(w);
    const int64_t kp = qa.padded_cols;
    ASSERT_EQ(kp, PadToQuantBlock(k));
    ASSERT_EQ(qb8.padded_cols, kp);
    ASSERT_EQ(qb4.padded_cols, kp);

    std::vector<float> ref8(static_cast<size_t>(m * n));
    std::vector<float> ref4(static_cast<size_t>(m * n));
    NaiveQ8BlockGemmTransBInto(qa.values.data(), qa.scales.data(),
                               qb8.values.data(), qb8.scales.data(),
                               ref8.data(), m, kp, n);
    NaiveQ4BlockGemmTransBInto(qa.values.data(), qa.scales.data(),
                               qb4.values.data(), qb4.scales.data(),
                               ref4.data(), m, kp, n);

    std::vector<float> c(static_cast<size_t>(m * n));
    for (simd::Isa isa : SupportedIsas()) {
      simd::SetIsa(isa);
      for (int threads : {1, 2, 8}) {
        RuntimeConfig::SetThreads(threads);
        SCOPED_TRACE(std::string("isa=") + simd::IsaName(isa) +
                     " threads=" + std::to_string(threads) +
                     " k=" + std::to_string(k));
        std::fill(c.begin(), c.end(), -1.0f);
        Q8BlockGemmTransBInto(qa.values.data(), qa.scales.data(),
                              qb8.values.data(), qb8.scales.data(), c.data(),
                              m, kp, n);
        EXPECT_TRUE(BitwiseEqual(c.data(), ref8.data(), m * n));
        std::fill(c.begin(), c.end(), -1.0f);
        Q4BlockGemmTransBInto(qa.values.data(), qa.scales.data(),
                              qb4.values.data(), qb4.scales.data(), c.data(),
                              m, kp, n);
        EXPECT_TRUE(BitwiseEqual(c.data(), ref4.data(), m * n));
      }
    }
  }
  RuntimeConfig::SetThreads(1);
}

// ------------------------------------------- block quantization formats

TEST(BlockQuantTest, Q8RoundTripWithinHalfScale) {
  Rng rng(36);
  const int64_t rows = 7, cols = 75;  // pads to 96
  Tensor x({rows, cols});
  x.FillGaussian(&rng, 2.0f);
  Q8BlockMatrix q = Q8BlockQuantizeRows(x);
  EXPECT_EQ(q.rows, rows);
  EXPECT_EQ(q.cols, cols);
  EXPECT_EQ(q.padded_cols, PadToQuantBlock(cols));
  Tensor deq = q.Dequantize();
  ASSERT_EQ(deq.dim(0), rows);
  ASSERT_EQ(deq.dim(1), cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      const float scale =
          q.scales[static_cast<size_t>(i * (q.padded_cols / kQuantBlock) +
                                       j / kQuantBlock)];
      EXPECT_LE(std::abs(x[i * cols + j] - deq[i * cols + j]),
                0.5f * scale + 1e-7f)
          << "row " << i << " col " << j;
    }
  }
  // Padding codes are zero so they contribute exactly nothing to a dot.
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = cols; j < q.padded_cols; ++j) {
      EXPECT_EQ(q.values[static_cast<size_t>(i * q.padded_cols + j)], 0);
    }
  }
}

TEST(BlockQuantTest, Q4RoundTripWithinHalfScale) {
  Rng rng(37);
  const int64_t rows = 5, cols = 40;  // pads to 64
  Tensor x({rows, cols});
  x.FillGaussian(&rng, 1.0f);
  Q4BlockMatrix q = Q4BlockQuantizeRows(x);
  Tensor deq = q.Dequantize();
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      const float scale =
          q.scales[static_cast<size_t>(i * (q.padded_cols / kQuantBlock) +
                                       j / kQuantBlock)];
      EXPECT_LE(std::abs(x[i * cols + j] - deq[i * cols + j]),
                0.5f * scale + 1e-7f)
          << "row " << i << " col " << j;
    }
  }
  // q4 halves the weight bytes again vs q8 (16 bytes per 32-element block).
  EXPECT_EQ(static_cast<int64_t>(q.values.size()),
            rows * q.padded_cols / 2);
}

TEST(BlockQuantTest, ZeroBlockQuantizesExactly) {
  Tensor x({1, 64});  // two blocks, all zeros
  Q8BlockMatrix q8 = Q8BlockQuantizeRows(x);
  Q4BlockMatrix q4 = Q4BlockQuantizeRows(x);
  Tensor d8 = q8.Dequantize();
  Tensor d4 = q4.Dequantize();
  for (int64_t j = 0; j < 64; ++j) {
    EXPECT_EQ(d8[j], 0.0f);
    EXPECT_EQ(d4[j], 0.0f);
  }
}

TEST(BlockQuantTest, Q4NibbleLayoutMatchesContract) {
  // Verify the documented packing directly against Dequantize: byte t of a
  // block holds element t in the low nibble and element 16+t in the high
  // nibble, stored code = q + 8.
  Rng rng(38);
  Tensor x({1, 32});
  x.FillGaussian(&rng, 1.0f);
  Q4BlockMatrix q = Q4BlockQuantizeRows(x);
  Tensor deq = q.Dequantize();
  const float scale = q.scales[0];
  for (int t = 0; t < 16; ++t) {
    const uint8_t byte = q.values[static_cast<size_t>(t)];
    const int lo = static_cast<int>(byte & 0x0F) - 8;
    const int hi = static_cast<int>(byte >> 4) - 8;
    EXPECT_GE(lo, -7);  // quantizer emits [-7, 7]; -8 is never produced
    EXPECT_LE(lo, 7);
    EXPECT_GE(hi, -7);
    EXPECT_LE(hi, 7);
    EXPECT_EQ(deq[t], static_cast<float>(lo) * scale);
    EXPECT_EQ(deq[16 + t], static_cast<float>(hi) * scale);
  }
}

TEST(BlockQuantTest, QuantizeRowsIntoMatchesAllocatingPath) {
  Rng rng(39);
  const int64_t rows = 6, cols = 33;
  Tensor x({rows, cols});
  x.FillGaussian(&rng, 1.5f);
  Q8BlockMatrix ref = Q8BlockQuantizeRows(x);
  const int64_t kp = ref.padded_cols;
  std::vector<int8_t> vals(static_cast<size_t>(rows * kp), 42);
  std::vector<float> scales(static_cast<size_t>(rows * kp / kQuantBlock),
                            -1.0f);
  Q8BlockQuantizeRowsInto(x.data(), rows, cols, vals.data(), scales.data());
  EXPECT_EQ(std::memcmp(vals.data(), ref.values.data(), vals.size()), 0);
  EXPECT_EQ(std::memcmp(scales.data(), ref.scales.data(),
                        scales.size() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace dlsys
