#include "src/tensor/tensor.h"

#include <gtest/gtest.h>

#include "src/tensor/ops.h"

namespace dlsys {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.rank(), 0);
}

TEST(TensorTest, ZeroFilledConstruction) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.rank(), 2);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FillConstruction) {
  Tensor t({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(TensorTest, ExplicitValues) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, NegativeDimIndex) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a({2}, 1.0f);
  Tensor b = a;
  b[0] = 5.0f;
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(b[0], 5.0f);
}

TEST(TensorTest, MoveLeavesSourceEmpty) {
  Tensor a({3}, 1.0f);
  Tensor b = std::move(a);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.size(), 3);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = a.Reshaped({3, 2});
  EXPECT_EQ(b.at(2, 1), 6.0f);
  EXPECT_EQ(b.at(0, 1), 2.0f);
}

TEST(TensorTest, SumMaxArgMaxNorm) {
  Tensor t({4}, {1.0f, -2.0f, 3.0f, 0.0f});
  EXPECT_DOUBLE_EQ(t.Sum(), 2.0);
  EXPECT_EQ(t.Max(), 3.0f);
  EXPECT_EQ(t.ArgMax(), 2);
  EXPECT_NEAR(t.L2Norm(), std::sqrt(14.0), 1e-9);
}

TEST(TensorTest, FillGaussianIsSeeded) {
  Rng rng1(7), rng2(7);
  Tensor a({100});
  Tensor b({100});
  a.FillGaussian(&rng1, 1.0f);
  b.FillGaussian(&rng2, 1.0f);
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(MemoryTrackerTest, TracksAllocationAndRelease) {
  MemoryTracker& mt = MemoryTracker::Global();
  const int64_t before = mt.current_bytes();
  {
    Tensor t({1000});
    EXPECT_EQ(mt.current_bytes(), before + 4000);
  }
  EXPECT_EQ(mt.current_bytes(), before);
}

TEST(MemoryTrackerTest, PeakIsMonotoneUntilReset) {
  MemoryTracker& mt = MemoryTracker::Global();
  mt.ResetPeak();
  const int64_t base = mt.peak_bytes();
  {
    Tensor t({2000});
    EXPECT_GE(mt.peak_bytes(), base + 8000);
  }
  EXPECT_GE(mt.peak_bytes(), base + 8000);  // peak survives release
  mt.ResetPeak();
  EXPECT_LT(mt.peak_bytes(), base + 8000);
}

TEST(MemoryTrackerTest, CopyAssignTracksDelta) {
  MemoryTracker& mt = MemoryTracker::Global();
  const int64_t before = mt.current_bytes();
  {
    Tensor a({10});
    Tensor b({20});
    b = a;  // releases 80 bytes, allocates 40
    EXPECT_EQ(mt.current_bytes(), before + 80);
  }
  EXPECT_EQ(mt.current_bytes(), before);
}

TEST(OpsTest, MatMulSmall) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(OpsTest, MatMulTransAConsistentWithTranspose) {
  Rng rng(3);
  Tensor a({4, 3});
  Tensor b({4, 5});
  a.FillGaussian(&rng, 1.0f);
  b.FillGaussian(&rng, 1.0f);
  Tensor c1 = MatMulTransA(a, b);
  Tensor c2 = MatMul(Transpose(a), b);
  ASSERT_EQ(c1.shape(), c2.shape());
  for (int64_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-4f);
}

TEST(OpsTest, MatMulTransBConsistentWithTranspose) {
  Rng rng(4);
  Tensor a({4, 3});
  Tensor b({5, 3});
  a.FillGaussian(&rng, 1.0f);
  b.FillGaussian(&rng, 1.0f);
  Tensor c1 = MatMulTransB(a, b);
  Tensor c2 = MatMul(a, Transpose(b));
  ASSERT_EQ(c1.shape(), c2.shape());
  for (int64_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-4f);
}

TEST(OpsTest, ElementwiseAddSubMul) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {4, 5, 6});
  EXPECT_EQ(Add(a, b)[1], 7.0f);
  EXPECT_EQ(Sub(a, b)[2], -3.0f);
  EXPECT_EQ(Mul(a, b)[0], 4.0f);
}

TEST(OpsTest, AxpyAndScale) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {10, 20});
  Axpy(0.5f, b, &a);
  EXPECT_EQ(a[0], 6.0f);
  EXPECT_EQ(a[1], 12.0f);
  Scale(2.0f, &a);
  EXPECT_EQ(a[0], 12.0f);
}

TEST(OpsTest, RowSoftmaxSumsToOne) {
  Tensor logits({2, 3}, {1, 2, 3, 1000, 1000, 1000});
  Tensor p = RowSoftmax(logits);
  for (int64_t i = 0; i < 2; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < 3; ++j) s += p.at(i, j);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
  // Large logits must not overflow.
  EXPECT_NEAR(p.at(1, 0), 1.0 / 3.0, 1e-5);
}

TEST(OpsTest, OneHotRoundTrip) {
  std::vector<int64_t> labels = {0, 2, 1};
  Tensor oh = OneHot(labels, 3);
  std::vector<int64_t> back = ArgMaxRows(oh);
  EXPECT_EQ(back, labels);
}

TEST(OpsTest, SliceRows) {
  Tensor m({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = SliceRows(m, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.at(0, 0), 3.0f);
  EXPECT_EQ(s.at(1, 1), 6.0f);
}

TEST(OpsTest, MeanRows) {
  Tensor m({2, 2}, {1, 2, 3, 4});
  Tensor mean = MeanRows(m);
  EXPECT_EQ(mean[0], 2.0f);
  EXPECT_EQ(mean[1], 3.0f);
}

TEST(OpsTest, AccuracyCountsArgmaxHits) {
  Tensor logits({3, 2}, {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 1, 0}), 1.0);
  EXPECT_NEAR(Accuracy(logits, {1, 1, 0}), 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace dlsys
