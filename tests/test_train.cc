#include "src/nn/train.h"

#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/optim/schedule.h"

namespace dlsys {
namespace {

TEST(TrainTest, MlpLearnsGaussianBlobs) {
  Rng rng(17);
  Dataset data = MakeGaussianBlobs(600, 8, 4, 4.0, &rng);
  auto split = Split(data, 0.8);
  Sequential net = MakeMlp(8, {32}, 4);
  net.Init(&rng);
  Sgd opt(0.05, 0.9);
  TrainConfig config;
  config.epochs = 15;
  MetricsReport report = Train(&net, &opt, split.train, config);
  EvalResult eval = Evaluate(&net, split.test);
  EXPECT_GT(eval.accuracy, 0.9) << "blobs at separation 4 should be separable";
  EXPECT_GT(report.Get(metric::kTrainSeconds), 0.0);
  EXPECT_GT(report.Get(metric::kPeakBytes), 0.0);
  EXPECT_GT(report.Get(metric::kFlops), 0.0);
}

TEST(TrainTest, MlpLearnsTwoMoonsNonlinear) {
  Rng rng(23);
  Dataset data = MakeTwoMoons(800, 0.1, &rng);
  auto split = Split(data, 0.75);
  Sequential net = MakeMlp(2, {16, 16}, 2);
  net.Init(&rng);
  Adam opt(0.01);
  TrainConfig config;
  config.epochs = 30;
  Train(&net, &opt, split.train, config);
  EvalResult eval = Evaluate(&net, split.test);
  EXPECT_GT(eval.accuracy, 0.93);
}

TEST(TrainTest, CnnLearnsDigitGrid) {
  Rng rng(31);
  Dataset data = MakeDigitGrid(300, 8, 4, 0.2, &rng);
  auto split = Split(data, 0.8);
  Sequential net = MakeCnn(8, 4, 8, 4);
  net.Init(&rng);
  Adam opt(0.005);
  TrainConfig config;
  config.epochs = 8;
  config.batch_size = 16;
  Train(&net, &opt, split.train, config);
  EvalResult eval = Evaluate(&net, split.test);
  EXPECT_GT(eval.accuracy, 0.9) << "stroke patterns should be easy for a CNN";
}

TEST(TrainTest, LossDecreasesOverTraining) {
  Rng rng(5);
  Dataset data = MakeGaussianBlobs(400, 4, 3, 3.0, &rng);
  Sequential net = MakeMlp(4, {16}, 3);
  net.Init(&rng);
  Sgd opt(0.05);
  double first_loss = -1.0, last_loss = -1.0;
  TrainConfig config;
  config.epochs = 10;
  config.on_step = [&](int64_t step, int64_t, double loss) {
    if (step == 0) first_loss = loss;
    last_loss = loss;
  };
  Train(&net, &opt, data, config);
  EXPECT_LT(last_loss, first_loss * 0.5);
}

TEST(TrainTest, ScheduleIsApplied) {
  Rng rng(6);
  Dataset data = MakeGaussianBlobs(64, 4, 2, 3.0, &rng);
  Sequential net = MakeMlp(4, {8}, 2);
  net.Init(&rng);
  Sgd opt(1.0);
  StepDecayLr schedule(0.1, 1, 0.5);
  TrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  config.schedule = &schedule;
  std::vector<double> lrs;
  config.on_step = [&](int64_t, int64_t, double) { lrs.push_back(opt.lr()); };
  Train(&net, &opt, data, config);
  ASSERT_GE(lrs.size(), 3u);
  EXPECT_DOUBLE_EQ(lrs[0], 0.1);
  EXPECT_DOUBLE_EQ(lrs[1], 0.05);
  EXPECT_DOUBLE_EQ(lrs[2], 0.025);
}

TEST(TrainTest, DeterministicGivenSeeds) {
  auto run = []() {
    Rng rng(99);
    Dataset data = MakeGaussianBlobs(200, 4, 3, 3.0, &rng);
    Sequential net = MakeMlp(4, {8}, 3);
    net.Init(&rng);
    Sgd opt(0.05);
    TrainConfig config;
    config.epochs = 3;
    Train(&net, &opt, data, config);
    return net.GetParameterVector();
  };
  std::vector<float> a = run();
  std::vector<float> b = run();
  EXPECT_EQ(a, b);
}

TEST(OptimizerTest, SgdStepMovesAgainstGradient) {
  Tensor p({2}, {1.0f, -1.0f});
  Tensor g({2}, {0.5f, -0.5f});
  Sgd opt(0.1);
  opt.Step({&p}, {&g});
  EXPECT_FLOAT_EQ(p[0], 0.95f);
  EXPECT_FLOAT_EQ(p[1], -0.95f);
}

TEST(OptimizerTest, MomentumAccumulates) {
  Tensor p({1}, {0.0f});
  Tensor g({1}, {1.0f});
  Sgd opt(0.1, 0.9);
  opt.Step({&p}, {&g});
  EXPECT_FLOAT_EQ(p[0], -0.1f);
  opt.Step({&p}, {&g});
  // velocity = 0.9*1 + 1 = 1.9 -> p = -0.1 - 0.19
  EXPECT_NEAR(p[0], -0.29f, 1e-6f);
}

TEST(OptimizerTest, WeightDecayShrinksParams) {
  Tensor p({1}, {1.0f});
  Tensor g({1}, {0.0f});
  Sgd opt(0.1, 0.0, 0.5);
  opt.Step({&p}, {&g});
  EXPECT_FLOAT_EQ(p[0], 1.0f - 0.1f * 0.5f);
}

TEST(OptimizerTest, AdamFirstStepIsLrSized) {
  Tensor p({1}, {0.0f});
  Tensor g({1}, {3.0f});
  Adam opt(0.01);
  opt.Step({&p}, {&g});
  // With bias correction the first Adam step is ~lr in magnitude.
  EXPECT_NEAR(p[0], -0.01f, 1e-4f);
}

TEST(ScheduleTest, CosineCyclicRestartsEachCycle) {
  CosineCyclicLr schedule(1.0, 10);
  EXPECT_NEAR(schedule.Lr(0), 1.0, 1e-9);
  EXPECT_LT(schedule.Lr(9), 0.05);
  EXPECT_NEAR(schedule.Lr(10), 1.0, 1e-9);  // restart
  EXPECT_TRUE(schedule.EndOfCycle(9));
  EXPECT_FALSE(schedule.EndOfCycle(5));
}

TEST(ScheduleTest, StepDecayHalves) {
  StepDecayLr schedule(0.8, 100, 0.5);
  EXPECT_DOUBLE_EQ(schedule.Lr(0), 0.8);
  EXPECT_DOUBLE_EQ(schedule.Lr(99), 0.8);
  EXPECT_DOUBLE_EQ(schedule.Lr(100), 0.4);
  EXPECT_DOUBLE_EQ(schedule.Lr(250), 0.2);
}

TEST(DataTest, SplitSizes) {
  Rng rng(1);
  Dataset data = MakeGaussianBlobs(100, 2, 2, 3.0, &rng);
  auto split = Split(data, 0.7);
  EXPECT_EQ(split.train.size(), 70);
  EXPECT_EQ(split.test.size(), 30);
}

TEST(DataTest, StandardizeZeroMeanUnitVar) {
  Rng rng(2);
  Dataset data = MakeGaussianBlobs(500, 3, 2, 5.0, &rng);
  Standardize(&data);
  const int64_t n = data.x.dim(0), d = data.x.dim(1);
  for (int64_t j = 0; j < d; ++j) {
    double mean = 0.0, var = 0.0;
    for (int64_t i = 0; i < n; ++i) mean += data.x[i * d + j];
    mean /= n;
    for (int64_t i = 0; i < n; ++i) {
      const double dv = data.x[i * d + j] - mean;
      var += dv * dv;
    }
    var /= n;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(DataTest, ShuffleIsPermutation) {
  Rng rng(3);
  Dataset data = MakeGaussianBlobs(50, 2, 3, 3.0, &rng);
  std::vector<int64_t> before = data.y;
  std::sort(before.begin(), before.end());
  ShuffleDataset(&data, &rng);
  std::vector<int64_t> after = data.y;
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
}

TEST(DataTest, BatchIteratorCoversAll) {
  Rng rng(4);
  Dataset data = MakeGaussianBlobs(35, 2, 2, 3.0, &rng);
  int64_t total = 0;
  int64_t batches = 0;
  for (BatchIterator it(data, 16); !it.Done(); it.Next()) {
    total += it.Get().size();
    ++batches;
  }
  EXPECT_EQ(total, 35);
  EXPECT_EQ(batches, 3);  // 16 + 16 + 3
}

TEST(DataTest, DigitGridShapes) {
  Rng rng(5);
  Dataset data = MakeDigitGrid(10, 8, 4, 0.1, &rng);
  EXPECT_EQ(data.x.shape(), (Shape{10, 1, 8, 8}));
  EXPECT_EQ(data.NumClasses(), 4);
}

}  // namespace
}  // namespace dlsys
