#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/data/synthetic.h"
#include "src/db/stats_cache.h"
#include "src/fairness/embedding_bias.h"
#include "src/green/energy.h"
#include "src/nn/serialize.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace dlsys {
namespace {

// ------------------------------------------------------- Serialization

TEST(SerializeTest, RoundTripRestoresParameters) {
  Rng rng(1);
  Sequential net = MakeMlp(6, {12}, 3);
  net.Init(&rng);
  const std::string path = ::testing::TempDir() + "/params.dlsy";
  ASSERT_TRUE(SaveParameters(net, path).ok());
  Sequential loaded = MakeMlp(6, {12}, 3);
  Rng rng2(999);
  loaded.Init(&rng2);  // different init, must be overwritten
  ASSERT_TRUE(LoadParameters(&loaded, path).ok());
  EXPECT_EQ(net.GetParameterVector(), loaded.GetParameterVector());
}

TEST(SerializeTest, LoadedModelPredictsIdentically) {
  Rng rng(2);
  Dataset data = MakeGaussianBlobs(200, 6, 3, 3.0, &rng);
  Sequential net = MakeMlp(6, {12}, 3);
  net.Init(&rng);
  Sgd opt(0.05);
  TrainConfig tc;
  tc.epochs = 5;
  Train(&net, &opt, data, tc);
  const std::string path = ::testing::TempDir() + "/trained.dlsy";
  ASSERT_TRUE(SaveParameters(net, path).ok());
  Sequential loaded = MakeMlp(6, {12}, 3);
  Rng rng2(3);
  loaded.Init(&rng2);
  ASSERT_TRUE(LoadParameters(&loaded, path).ok());
  Tensor a = net.Forward(data.x, CacheMode::kNoCache);
  Tensor b = loaded.Forward(data.x, CacheMode::kNoCache);
  for (int64_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(SerializeTest, ArchitectureMismatchIsRejected) {
  Rng rng(4);
  Sequential net = MakeMlp(6, {12}, 3);
  net.Init(&rng);
  const std::string path = ::testing::TempDir() + "/mismatch.dlsy";
  ASSERT_TRUE(SaveParameters(net, path).ok());
  Sequential other = MakeMlp(6, {13}, 3);
  other.Init(&rng);
  Status s = LoadParameters(&other, path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, MissingFileIsIOError) {
  Sequential net = MakeMlp(2, {2}, 2);
  Status s = LoadParameters(&net, "/nonexistent/path/x.dlsy");
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(SerializeTest, CorruptFileIsRejected) {
  const std::string path = ::testing::TempDir() + "/corrupt.dlsy";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("garbage", 1, 7, f);
  std::fclose(f);
  Sequential net = MakeMlp(2, {2}, 2);
  EXPECT_FALSE(LoadParameters(&net, path).ok());
}

// Every corruption mode below must fail with IOError and leave the
// target net's parameters untouched.

Sequential InitedNet(uint64_t seed) {
  Sequential net = MakeMlp(4, {6}, 3);
  Rng rng(seed);
  net.Init(&rng);
  return net;
}

// Writes a valid checkpoint of `src` to `path` and returns its bytes.
std::vector<unsigned char> SaveAndSlurp(const Sequential& src,
                                        const std::string& path) {
  EXPECT_TRUE(SaveParameters(src, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<unsigned char> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteBytes(const std::string& path,
                const std::vector<unsigned char>& bytes, size_t len) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, len, f), len);
  std::fclose(f);
}

TEST(SerializeTest, TruncatedHeaderIsIOErrorAndLeavesNetUntouched) {
  Sequential src = InitedNet(31);
  const std::string path = ::testing::TempDir() + "/trunc_header.dlsy";
  auto bytes = SaveAndSlurp(src, path);
  WriteBytes(path, bytes, 10);  // cut mid-header
  Sequential net = InitedNet(32);
  const auto before = net.GetParameterVector();
  Status s = LoadParameters(&net, path);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(net.GetParameterVector(), before);
}

TEST(SerializeTest, BadMagicIsIOError) {
  Sequential src = InitedNet(33);
  const std::string path = ::testing::TempDir() + "/bad_magic.dlsy";
  auto bytes = SaveAndSlurp(src, path);
  bytes[0] = 'X';
  WriteBytes(path, bytes, bytes.size());
  Sequential net = InitedNet(34);
  const auto before = net.GetParameterVector();
  Status s = LoadParameters(&net, path);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(net.GetParameterVector(), before);
}

TEST(SerializeTest, CountLargerThanFileIsIOErrorBeforeAllocating) {
  Sequential src = InitedNet(35);
  const std::string path = ::testing::TempDir() + "/huge_count.dlsy";
  auto bytes = SaveAndSlurp(src, path);
  // Overwrite the count field (offset 8) with an absurd value: a bounds
  // check must reject it from the file size, not attempt the allocation.
  const uint64_t huge = uint64_t{1} << 40;
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
  WriteBytes(path, bytes, bytes.size());
  Sequential net = InitedNet(36);
  const auto before = net.GetParameterVector();
  Status s = LoadParameters(&net, path);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(net.GetParameterVector(), before);
}

TEST(SerializeTest, BadCrcIsIOError) {
  Sequential src = InitedNet(37);
  const std::string path = ::testing::TempDir() + "/bad_crc.dlsy";
  auto bytes = SaveAndSlurp(src, path);
  bytes[20] ^= 0x01;  // flip one payload bit; size stays consistent
  WriteBytes(path, bytes, bytes.size());
  Sequential net = InitedNet(38);
  const auto before = net.GetParameterVector();
  Status s = LoadParameters(&net, path);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(net.GetParameterVector(), before);
}

TEST(SerializeTest, TruncatedPayloadIsIOError) {
  Sequential src = InitedNet(39);
  const std::string path = ::testing::TempDir() + "/trunc_payload.dlsy";
  auto bytes = SaveAndSlurp(src, path);
  WriteBytes(path, bytes, bytes.size() - 9);
  Sequential net = InitedNet(40);
  const auto before = net.GetParameterVector();
  Status s = LoadParameters(&net, path);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(net.GetParameterVector(), before);
}

TEST(SerializeTest, SaveLeavesNoTempFileBehind) {
  Sequential src = InitedNet(41);
  const std::string path = ::testing::TempDir() + "/atomic.dlsy";
  ASSERT_TRUE(SaveParameters(src, path).ok());
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr) << "temp file must be renamed into place";
  if (tmp != nullptr) std::fclose(tmp);
}

// ----------------------------------------------------------- StatsCache

class StatsCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    table_ = MakeCorrelatedTable(5000, 4, 0.6, &rng);
  }
  Table table_;
};

TEST_F(StatsCacheTest, ValidatesRanges) {
  StatsCache cache(&table_, 128);
  EXPECT_FALSE(cache.RangeMean(9, 0, 100).ok());
  EXPECT_FALSE(cache.RangeMean(0, -1, 100).ok());
  EXPECT_FALSE(cache.RangeMean(0, 100, 100).ok());
  EXPECT_FALSE(cache.RangeMean(0, 0, 99999).ok());
}

// Property sweep: cached statistics match scans for many random ranges
// and several chunk sizes.
class StatsCacheSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(StatsCacheSweep, MatchesScansOnRandomRanges) {
  const int64_t chunk = GetParam();
  Rng rng(11);
  Table t = MakeCorrelatedTable(3000, 3, 0.5, &rng);
  StatsCache cache(&t, chunk);
  Rng qrng(13);
  for (int trial = 0; trial < 60; ++trial) {
    const int64_t lo = static_cast<int64_t>(qrng.Index(2999));
    const int64_t hi =
        lo + 1 + static_cast<int64_t>(qrng.Index(
                     static_cast<uint64_t>(3000 - lo)));
    const int64_t col = static_cast<int64_t>(qrng.Index(3));
    auto mean = cache.RangeMean(col, lo, hi);
    ASSERT_TRUE(mean.ok());
    EXPECT_NEAR(*mean, StatsCache::ScanMean(t, col, lo, hi), 1e-9)
        << "chunk=" << chunk << " range [" << lo << "," << hi << ")";
    auto var = cache.RangeVariance(col, lo, hi);
    ASSERT_TRUE(var.ok());
    EXPECT_NEAR(*var, StatsCache::ScanVariance(t, col, lo, hi), 1e-7);
    const int64_t col2 = (col + 1) % 3;
    auto corr = cache.RangeCorrelation(col, col2, lo, hi);
    ASSERT_TRUE(corr.ok());
    EXPECT_NEAR(*corr, StatsCache::ScanCorrelation(t, col, col2, lo, hi),
                1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, StatsCacheSweep,
                         ::testing::Values(1, 16, 100, 1024, 5000));

TEST_F(StatsCacheTest, SelfCorrelationIsOne) {
  StatsCache cache(&table_, 64);
  auto corr = cache.RangeCorrelation(2, 2, 100, 900);
  ASSERT_TRUE(corr.ok());
  EXPECT_DOUBLE_EQ(*corr, 1.0);
}

TEST_F(StatsCacheTest, PairCacheIsLazyAndSticky) {
  StatsCache cache(&table_, 64);
  EXPECT_EQ(cache.cached_pairs(), 0);
  const int64_t before = cache.MemoryBytes();
  ASSERT_TRUE(cache.RangeCorrelation(0, 1, 0, 1000).ok());
  EXPECT_EQ(cache.cached_pairs(), 1);
  EXPECT_GT(cache.MemoryBytes(), before);
  // Same pair in either order does not grow the cache.
  ASSERT_TRUE(cache.RangeCorrelation(1, 0, 10, 500).ok());
  EXPECT_EQ(cache.cached_pairs(), 1);
}

TEST_F(StatsCacheTest, CachedQueriesBeatScansOnLargeRanges) {
  Rng rng(17);
  Table big = MakeCorrelatedTable(200000, 2, 0.5, &rng);
  StatsCache cache(&big, 256);
  // Warm the pair cache.
  ASSERT_TRUE(cache.RangeCorrelation(0, 1, 0, big.rows).ok());
  Stopwatch cached_watch;
  for (int i = 0; i < 50; ++i) {
    cache.RangeCorrelation(0, 1, 1000, big.rows - 1000);
  }
  const double cached_s = cached_watch.Seconds();
  Stopwatch scan_watch;
  for (int i = 0; i < 50; ++i) {
    StatsCache::ScanCorrelation(big, 0, 1, 1000, big.rows - 1000);
  }
  const double scan_s = scan_watch.Seconds();
  EXPECT_LT(cached_s, scan_s)
      << "chunked aggregates must beat rescanning 198k rows";
}

// ------------------------------------------------------- EmbeddingBias

TEST(EmbeddingBiasTest, CosineSanity) {
  Tensor v({2, 2}, {1.0f, 0.0f, 0.0f, 1.0f});
  EXPECT_NEAR(CosineSimilarity(v, 0, 1), 0.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(v, 0, 0), 1.0, 1e-9);
}

TEST(EmbeddingBiasTest, RejectsEmptySets) {
  EmbeddingSpace space;
  space.vectors = Tensor({2, 4});
  EXPECT_FALSE(WeatEffectSize(space).ok());
}

TEST(EmbeddingBiasTest, EffectTracksInjectedBias) {
  Rng rng(19);
  EmbeddingSpace none = MakeBiasedEmbeddings(32, 12, 0.0, &rng);
  Rng rng2(19);
  EmbeddingSpace strong = MakeBiasedEmbeddings(32, 12, 0.9, &rng2);
  auto e_none = WeatEffectSize(none);
  auto e_strong = WeatEffectSize(strong);
  ASSERT_TRUE(e_none.ok() && e_strong.ok());
  EXPECT_LT(std::abs(*e_none), 0.6) << "unbiased space ~ no effect";
  EXPECT_GT(*e_strong, 1.2) << "strong bias -> large positive effect";
}

TEST(EmbeddingBiasTest, EffectIsMonotoneInBias) {
  double prev = -10.0;
  for (double bias : {0.0, 0.3, 0.6, 0.9}) {
    Rng rng(21);
    EmbeddingSpace space = MakeBiasedEmbeddings(32, 16, bias, &rng);
    auto effect = WeatEffectSize(space);
    ASSERT_TRUE(effect.ok());
    EXPECT_GT(*effect, prev - 0.2) << "bias " << bias;
    prev = *effect;
  }
}

TEST(EmbeddingBiasTest, HardDebiasRemovesTheEffect) {
  // Large sets: Cohen's d of residual noise scales ~1/sqrt(set size).
  Rng rng(23);
  EmbeddingSpace space = MakeBiasedEmbeddings(32, 64, 0.9, &rng);
  auto before = WeatEffectSize(space);
  ASSERT_TRUE(before.ok());
  ASSERT_GT(*before, 1.0);
  ASSERT_TRUE(HardDebias(&space).ok());
  auto after = WeatEffectSize(space);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(std::abs(*after), 0.5)
      << "projecting out the bias direction must collapse the effect";
}

// -------------------------------------------------- Temporal scheduling

TEST(CarbonScheduleTest, RejectsBadInput) {
  HardwareProfile hw = StandardHardware()[2];
  TrainingJob job{1e17};
  EXPECT_FALSE(CarbonAwareStartTime(job, hw, 1.2, {}, 24).ok());
  EXPECT_FALSE(CarbonAwareStartTime(job, hw, 0.5, {100.0}, 24).ok());
}

TEST(CarbonScheduleTest, InfeasibleDeadlineIsNotFound) {
  HardwareProfile hw{"slow", 1e12, 100.0, 0.5};  // 2e12 flops/hour-ish
  TrainingJob job{1e18};                         // ~555 hours
  std::vector<double> forecast(24, 100.0);
  auto choice = CarbonAwareStartTime(job, hw, 1.2, forecast, 24);
  EXPECT_FALSE(choice.ok());
  EXPECT_EQ(choice.status().code(), StatusCode::kNotFound);
}

TEST(CarbonScheduleTest, PicksTheCleanWindow) {
  HardwareProfile hw{"unit", 2e12, 1000.0, 0.5};  // 1e12 effective
  TrainingJob job{1e12 * 3600.0 * 3.0};           // exactly 3 hours
  // Dirty day with a clean overnight window at hours 10-13.
  std::vector<double> forecast(24, 500.0);
  forecast[10] = 50.0;
  forecast[11] = 40.0;
  forecast[12] = 60.0;
  auto choice = CarbonAwareStartTime(job, hw, 1.5, forecast, 24);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->start_hour, 10);
  // kWh/h = 1000 W * 1.5 / 1000 = 1.5; CO2 = 1.5 * (50+40+60) = 225 g.
  EXPECT_NEAR(choice->co2_grams, 225.0, 1e-6);
}

TEST(CarbonScheduleTest, DeadlineLimitsTheSearch) {
  HardwareProfile hw{"unit", 2e12, 1000.0, 0.5};
  TrainingJob job{1e12 * 3600.0 * 2.0};  // 2 hours
  std::vector<double> forecast(24, 300.0);
  forecast[20] = 10.0;
  forecast[21] = 10.0;
  auto unrestricted = CarbonAwareStartTime(job, hw, 1.0, forecast, 24);
  auto restricted = CarbonAwareStartTime(job, hw, 1.0, forecast, 10);
  ASSERT_TRUE(unrestricted.ok() && restricted.ok());
  EXPECT_EQ(unrestricted->start_hour, 20);
  EXPECT_LT(restricted->start_hour, 10);
  EXPECT_GT(restricted->co2_grams, unrestricted->co2_grams);
}

}  // namespace
}  // namespace dlsys
