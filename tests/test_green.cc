#include "src/green/energy.h"

#include <gtest/gtest.h>

#include "src/nn/train.h"

namespace dlsys {
namespace {

TEST(HardwareTest, ProfilesAreSane) {
  for (const auto& hw : StandardHardware()) {
    EXPECT_GT(hw.EffectiveFlops(), 0.0);
    EXPECT_GT(hw.FlopsPerWatt(), 0.0);
    EXPECT_LE(hw.utilization, 1.0);
  }
}

TEST(RegionTest, RegionsSpanCleanToDirty) {
  auto regions = StandardRegions();
  ASSERT_GE(regions.size(), 2u);
  double lo = 1e300, hi = 0.0;
  for (const auto& r : regions) {
    lo = std::min(lo, r.grams_co2_per_kwh);
    hi = std::max(hi, r.grams_co2_per_kwh);
    EXPECT_GE(r.pue, 1.0);
  }
  EXPECT_GT(hi / lo, 10.0) << "regions should differ by >10x in intensity";
}

TEST(FootprintTest, RejectsBadInput) {
  TrainingJob job{1e15};
  HardwareProfile bad{"bad", 0.0, 100.0, 0.5};
  Region region{"r", 1.2, 100.0};
  EXPECT_FALSE(EstimateFootprint(job, bad, region).ok());
  Region bad_region{"r", 0.5, 100.0};
  EXPECT_FALSE(
      EstimateFootprint(job, StandardHardware()[0], bad_region).ok());
}

TEST(FootprintTest, KnownValuesComputeExactly) {
  TrainingJob job{3.6e15};  // chosen so runtime = 3600 s on this profile
  HardwareProfile hw{"unit", 2e12, 500.0, 0.5};  // 1e12 effective
  Region region{"unit", 2.0, 100.0};
  auto fp = EstimateFootprint(job, hw, region);
  ASSERT_TRUE(fp.ok());
  EXPECT_DOUBLE_EQ(fp->runtime_seconds, 3600.0);
  EXPECT_DOUBLE_EQ(fp->energy_joules, 3600.0 * 500.0);     // 1.8 MJ
  EXPECT_DOUBLE_EQ(fp->facility_kwh, 1.8e6 * 2.0 / 3.6e6);  // 1 kWh
  EXPECT_DOUBLE_EQ(fp->co2_grams, 100.0);
}

TEST(FootprintTest, Co2ScalesLinearlyWithFlops) {
  HardwareProfile hw = StandardHardware()[1];
  Region region = StandardRegions()[2];
  auto small = EstimateFootprint({1e15}, hw, region);
  auto large = EstimateFootprint({1e16}, hw, region);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_NEAR(large->co2_grams / small->co2_grams, 10.0, 1e-9);
}

TEST(FootprintTest, EfficientHardwareEmitsLess) {
  // Same job and region: higher FLOPs/W hardware must emit less CO2.
  TrainingJob job{1e16};
  Region region = StandardRegions()[2];
  auto hardware = StandardHardware();
  const HardwareProfile& cpu = hardware[0];
  const HardwareProfile& gpu = hardware[2];
  ASSERT_GT(gpu.FlopsPerWatt(), cpu.FlopsPerWatt());
  auto cpu_fp = EstimateFootprint(job, cpu, region);
  auto gpu_fp = EstimateFootprint(job, gpu, region);
  ASSERT_TRUE(cpu_fp.ok() && gpu_fp.ok());
  EXPECT_LT(gpu_fp->co2_grams, cpu_fp->co2_grams);
}

TEST(TrainingJobTest, DerivedFromNetworkFlops) {
  Sequential net = MakeMlp(8, {32}, 4);
  TrainingJob job = TrainingJob::ForNetwork(net, 1000, 10);
  EXPECT_DOUBLE_EQ(job.total_flops,
                   3.0 * static_cast<double>(net.FlopsPerExample()) * 1000 *
                       10);
  EXPECT_GT(job.total_flops, 0.0);
}

TEST(PlacementTest, CarbonAwareBeatsNaive) {
  TrainingJob job{1e17};
  auto hardware = StandardHardware();
  auto regions = StandardRegions();
  auto naive = FastestPlacement(job, hardware, regions);
  auto aware = CarbonAwarePlacement(job, hardware, regions, 1e12);
  ASSERT_TRUE(naive.ok() && aware.ok());
  EXPECT_LE(aware->footprint.co2_grams, naive->footprint.co2_grams);
  // Clean-region pick: the aware scheduler should land in hydro/wind.
  EXPECT_LE(regions[static_cast<size_t>(aware->region_index)]
                .grams_co2_per_kwh,
            100.0);
}

TEST(PlacementTest, DeadlineForcesFasterDirtierChoice) {
  TrainingJob job{1e18};
  auto hardware = StandardHardware();
  // Two-region world: clean region exists but the deadline may require
  // the fastest hardware anyway; tight deadline must still be honored.
  auto regions = StandardRegions();
  auto relaxed = CarbonAwarePlacement(job, hardware, regions, 1e12);
  ASSERT_TRUE(relaxed.ok());
  const double fast_runtime =
      job.total_flops / hardware[3].EffectiveFlops();
  auto tight = CarbonAwarePlacement(job, hardware, regions,
                                    fast_runtime * 1.01);
  ASSERT_TRUE(tight.ok());
  EXPECT_LE(tight->footprint.runtime_seconds, fast_runtime * 1.01);
  EXPECT_GE(tight->footprint.co2_grams, relaxed->footprint.co2_grams);
}

TEST(PlacementTest, ImpossibleDeadlineIsNotFound) {
  TrainingJob job{1e18};
  auto placement =
      CarbonAwarePlacement(job, StandardHardware(), StandardRegions(), 1.0);
  EXPECT_FALSE(placement.ok());
  EXPECT_EQ(placement.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dlsys
