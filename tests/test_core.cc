#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/core/tradeoff.h"

namespace dlsys {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad value");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad value");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad value");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_EQ(Status::OK(), Status());
}

Status FailsWhen(bool fail) {
  if (fail) return Status::Internal("inner failure");
  return Status::OK();
}

Status UsesReturnNotOk(bool fail) {
  DLSYS_RETURN_NOT_OK(FailsWhen(fail));
  return Status::AlreadyExists("reached the end");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(UsesReturnNotOk(true).code(), StatusCode::kInternal);
  EXPECT_EQ(UsesReturnNotOk(false).code(), StatusCode::kAlreadyExists);
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, SeededStreamsAreIdentical) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(5), b(6);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, IndexInRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Index(17), 17u);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(9);
  int64_t hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(10);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(11);
  Rng child = a.Fork();
  Rng b(11);
  Rng child_b = b.Fork();
  // Forks of identical parents match each other...
  EXPECT_EQ(child.Next(), child_b.Next());
  // ...but differ from the parent's continued stream.
  EXPECT_NE(a.Next(), child.Next());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// --------------------------------------------------------------- Metrics

TEST(MetricsTest, SetGetAddHas) {
  MetricsReport r;
  EXPECT_FALSE(r.Has("a"));
  EXPECT_EQ(r.Get("a", -1.0), -1.0);
  r.Set("a", 2.0);
  r.Add("a", 3.0);
  EXPECT_TRUE(r.Has("a"));
  EXPECT_EQ(r.Get("a"), 5.0);
}

TEST(MetricsTest, MergeWithPrefix) {
  MetricsReport a, b;
  b.Set("x", 1.0);
  a.Merge(b, "sub");
  EXPECT_EQ(a.Get("sub.x"), 1.0);
  a.Merge(b);
  EXPECT_EQ(a.Get("x"), 1.0);
}

TEST(MetricsTest, UnprefixedMergeOverwrites) {
  // Documented semantics: an unprefixed merge means "update these
  // metrics", so later values win.
  MetricsReport a, b;
  a.Set("x", 1.0);
  b.Set("x", 2.0);
  a.Merge(b);
  EXPECT_EQ(a.Get("x"), 2.0);
}

TEST(MetricsTest, PrefixedMergeCollisionAborts) {
  // A prefixed merge namespaces a sub-report; a collision means the
  // namespace failed and one metric would silently shadow another.
  MetricsReport a, b;
  b.Set("x", 1.0);
  a.Merge(b, "sub");
  EXPECT_DEATH(a.Merge(b, "sub"), "collision");

  MetricsReport c;
  c.Set("sub.x", 7.0);  // pre-existing key that the prefix maps onto
  EXPECT_DEATH(c.Merge(b, "sub"), "collision");
}

TEST(MetricsTest, ToStringContainsKeys) {
  MetricsReport r;
  r.Set("quality.accuracy", 0.5);
  EXPECT_NE(r.ToString().find("quality.accuracy"), std::string::npos);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(w.Seconds(), 0.0);
  const double before = w.Seconds();
  w.Reset();
  EXPECT_LE(w.Seconds(), before);
}

// -------------------------------------------------------------- Tradeoff

TEST(TradeoffTest, RegisterAndFind) {
  TradeoffRegistry registry;
  ASSERT_TRUE(registry
                  .Register({"quant-8", TradeoffClass::kAccuracyVsEfficiency,
                             "2.1", {}})
                  .ok());
  EXPECT_FALSE(registry
                   .Register({"quant-8",
                              TradeoffClass::kAccuracyVsEfficiency,
                              "2.1",
                              {}})
                   .ok())
      << "duplicate registration must fail";
  EXPECT_TRUE(registry.Find("quant-8").ok());
  EXPECT_FALSE(registry.Find("missing").ok());
}

TEST(TradeoffTest, RecordAppendsRuns) {
  TradeoffRegistry registry;
  registry.Register({"t", TradeoffClass::kTimeVsMemory, "2.3", {}});
  MetricsReport run;
  run.Set("x", 1.0);
  ASSERT_TRUE(registry.Record("t", run).ok());
  EXPECT_FALSE(registry.Record("missing", run).ok());
  EXPECT_EQ((*registry.Find("t"))->runs.size(), 1u);
}

TEST(TradeoffTest, InClassFilters) {
  TradeoffRegistry registry;
  registry.Register({"a", TradeoffClass::kTimeVsMemory, "2.3", {}});
  registry.Register({"b", TradeoffClass::kOptimizationVsRuntime, "2.2", {}});
  registry.Register({"c", TradeoffClass::kTimeVsMemory, "2.3", {}});
  EXPECT_EQ(registry.InClass(TradeoffClass::kTimeVsMemory).size(), 2u);
  EXPECT_EQ(registry.InClass(TradeoffClass::kOptimizationVsRuntime).size(),
            1u);
}

TEST(TradeoffTest, ClassNames) {
  EXPECT_STREQ(TradeoffClassName(TradeoffClass::kAccuracyVsEfficiency),
               "accuracy-vs-efficiency");
  EXPECT_STREQ(TradeoffClassName(TradeoffClass::kTimeVsMemory),
               "time-vs-memory");
}

TEST(TradeoffTest, PointsUseLatestRun) {
  TradeoffRegistry registry;
  registry.Register({"t", TradeoffClass::kAccuracyVsEfficiency, "2.1", {}});
  MetricsReport run1, run2;
  run1.Set("cost", 10.0);
  run1.Set("quality", 0.5);
  run2.Set("cost", 5.0);
  run2.Set("quality", 0.6);
  registry.Record("t", run1);
  registry.Record("t", run2);
  auto points = registry.Points("cost", "quality");
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].x, 5.0);
  EXPECT_EQ(points[0].y, 0.6);
}

TEST(ParetoTest, FiltersDominatedPoints) {
  std::vector<FrontierPoint> points = {
      {"a", 1.0, 0.5},  // frontier (cheapest)
      {"b", 2.0, 0.4},  // dominated by a
      {"c", 3.0, 0.9},  // frontier
      {"d", 2.5, 0.7},  // frontier
      {"e", 4.0, 0.9},  // dominated by c (same y, higher x)
  };
  auto frontier = ParetoFrontier(points);
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_EQ(frontier[0].technique, "a");
  EXPECT_EQ(frontier[1].technique, "d");
  EXPECT_EQ(frontier[2].technique, "c");
}

TEST(ParetoTest, EmptyAndSingle) {
  EXPECT_TRUE(ParetoFrontier({}).empty());
  auto one = ParetoFrontier({{"x", 1.0, 1.0}});
  EXPECT_EQ(one.size(), 1u);
}

// ------------------------------------------------------ LatencyHistogram

TEST(LatencyHistogramTest, EmptyReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum_ms(), 0.0);
  EXPECT_EQ(h.mean_ms(), 0.0);
  EXPECT_EQ(h.min_ms(), 0.0);
  EXPECT_EQ(h.max_ms(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
}

TEST(LatencyHistogramTest, SingleObservationIsExactEverywhere) {
  LatencyHistogram h;
  h.Record(3.7);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.sum_ms(), 3.7);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 3.7);
  // min/max clamping makes every quantile of a singleton exact.
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 3.7) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, QuantileWithinBucketResolution) {
  // Geometric buckets with ratio 2^(1/4) bound the quantile's relative
  // error by ratio - 1 < 19% (the header's documented contract).
  Rng rng(7);
  LatencyHistogram h;
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const double v = std::exp(rng.Gaussian(1.0, 1.5));  // spans ~4 decades
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(values.size()))) - 1;
    const double exact = values[rank];
    const double approx = h.Quantile(q);
    EXPECT_GE(approx, exact * 0.99) << "q=" << q;   // never below its rank's
    EXPECT_LE(approx, exact * 1.20) << "q=" << q;   // bucket upper edge
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), values.front());
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), values.back());
}

TEST(LatencyHistogramTest, BelowFirstBucketLandsInUnderflow) {
  // Values below the first geometric edge (1us) share the underflow
  // bucket; exact min/max clamping still reports them faithfully.
  LatencyHistogram h;
  h.Record(1e-7);
  h.Record(5e-4);  // still < 1e-3 ms
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.min_ms(), 1e-7);
  EXPECT_DOUBLE_EQ(h.max_ms(), 5e-4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1e-7);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 5e-4);
  // Interior quantiles of underflow-only data stay within [min, max].
  EXPECT_GE(h.Quantile(0.5), h.min_ms());
  EXPECT_LE(h.Quantile(0.5), h.max_ms());
}

TEST(LatencyHistogramTest, QuantilesAreMonotone) {
  Rng rng(11);
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(std::exp(rng.Gaussian(0.0, 2.0)));
  const double qs[] = {0.0, 0.5, 0.99, 1.0};
  double prev = -1.0;
  for (double q : qs) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev) << "quantiles must be non-decreasing, q=" << q;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), h.min_ms());
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max_ms());
}

TEST(LatencyHistogramTest, MergeEqualsCombinedRecording) {
  Rng rng(8);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 300; ++i) {
    const double v = rng.Uniform(0.0, 50.0);
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum_ms(), combined.sum_ms());
  EXPECT_DOUBLE_EQ(a.min_ms(), combined.min_ms());
  EXPECT_DOUBLE_EQ(a.max_ms(), combined.max_ms());
  for (double q : {0.25, 0.5, 0.75, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), combined.Quantile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, TracksExactMomentsAndExtremes) {
  LatencyHistogram h;
  h.Record(0.0);  // underflow bucket
  h.Record(2.0);
  h.Record(10.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum_ms(), 12.0);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 4.0);
  EXPECT_DOUBLE_EQ(h.min_ms(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_ms(), 10.0);
}

TEST(LatencyHistogramTest, ReportIntoWritesUniformKeys) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  MetricsReport report;
  h.ReportInto(&report, "serve.latency");
  EXPECT_EQ(report.Get("serve.latency.count"), 100.0);
  EXPECT_DOUBLE_EQ(report.Get("serve.latency.mean_ms"), 50.5);
  EXPECT_DOUBLE_EQ(report.Get("serve.latency.max_ms"), 100.0);
  EXPECT_GT(report.Get("serve.latency.p50_ms"), 0.0);
  EXPECT_GE(report.Get("serve.latency.p99_ms"),
            report.Get("serve.latency.p95_ms"));
  EXPECT_GE(report.Get("serve.latency.p95_ms"),
            report.Get("serve.latency.p50_ms"));
}

}  // namespace
}  // namespace dlsys
