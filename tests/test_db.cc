#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/db/bloom.h"
#include "src/db/btree.h"
#include "src/db/histogram.h"
#include "src/db/table.h"
#include "src/db/tunable_db.h"

namespace dlsys {
namespace {

// ----------------------------------------------------------------- BTree

TEST(BTreeTest, EmptyTreeFindsNothing) {
  BTree tree;
  EXPECT_FALSE(tree.Find(1).ok());
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.RangeScan(0, 100).empty());
}

TEST(BTreeTest, InsertAndFind) {
  BTree tree(4);
  for (int64_t k = 0; k < 100; ++k) tree.Insert(k * 3, k);
  EXPECT_EQ(tree.size(), 100);
  for (int64_t k = 0; k < 100; ++k) {
    auto v = tree.Find(k * 3);
    ASSERT_TRUE(v.ok()) << "key " << k * 3;
    EXPECT_EQ(*v, k);
  }
  EXPECT_FALSE(tree.Find(1).ok());
  EXPECT_FALSE(tree.Find(-5).ok());
}

TEST(BTreeTest, OverwriteKeepsSizeStable) {
  BTree tree;
  tree.Insert(7, 1);
  tree.Insert(7, 2);
  EXPECT_EQ(tree.size(), 1);
  EXPECT_EQ(*tree.Find(7), 2);
}

TEST(BTreeTest, HeightGrowsLogarithmically) {
  BTree tree(8);
  for (int64_t k = 0; k < 4096; ++k) tree.Insert(k, k);
  EXPECT_GE(tree.height(), 3);
  EXPECT_LE(tree.height(), 8);
}

// Model check: random operation sequences against std::map, across
// fanouts (property-based sweep).
class BTreeModelCheck : public ::testing::TestWithParam<int64_t> {};

TEST_P(BTreeModelCheck, MatchesStdMapOnRandomOps) {
  const int64_t fanout = GetParam();
  BTree tree(fanout);
  std::map<int64_t, int64_t> model;
  Rng rng(1000 + static_cast<uint64_t>(fanout));
  for (int64_t op = 0; op < 3000; ++op) {
    const int64_t key = static_cast<int64_t>(rng.Index(500));
    const double action = rng.Uniform();
    if (action < 0.6) {
      const int64_t value = static_cast<int64_t>(rng.Index(1 << 20));
      tree.Insert(key, value);
      model[key] = value;
    } else if (action < 0.9) {
      auto got = tree.Find(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(got.ok());
      } else {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, it->second);
      }
    } else {
      const int64_t lo = static_cast<int64_t>(rng.Index(500));
      const int64_t hi = lo + static_cast<int64_t>(rng.Index(100));
      std::vector<int64_t> got = tree.RangeScan(lo, hi);
      std::vector<int64_t> expect;
      for (auto it = model.lower_bound(lo);
           it != model.end() && it->first <= hi; ++it) {
        expect.push_back(it->second);
      }
      EXPECT_EQ(got, expect);
    }
  }
  EXPECT_EQ(tree.size(), static_cast<int64_t>(model.size()));
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeModelCheck,
                         ::testing::Values(4, 8, 16, 64, 256));

TEST(BTreeTest, BulkLoadEquivalentToInserts) {
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t k = 0; k < 1000; ++k) pairs.push_back({k * 2, k});
  BTree tree = BTree::BulkLoad(pairs, 32);
  EXPECT_EQ(tree.size(), 1000);
  EXPECT_EQ(*tree.Find(500 * 2), 500);
  auto scan = tree.RangeScan(0, 10);
  EXPECT_EQ(scan.size(), 6u);  // keys 0,2,4,6,8,10
}

TEST(BTreeTest, MemoryBytesPositiveAndGrows) {
  BTree small(16), large(16);
  for (int64_t k = 0; k < 100; ++k) small.Insert(k, k);
  for (int64_t k = 0; k < 10000; ++k) large.Insert(k, k);
  EXPECT_GT(small.MemoryBytes(), 0);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

// ----------------------------------------------------------------- Bloom

TEST(BloomTest, NoFalseNegativesEver) {
  BloomFilter bloom = BloomFilter::ForKeys(1000, 10.0);
  Rng rng(2);
  std::vector<int64_t> members;
  for (int64_t i = 0; i < 1000; ++i) {
    members.push_back(static_cast<int64_t>(rng.Next()));
    bloom.Insert(members.back());
  }
  for (int64_t key : members) {
    EXPECT_TRUE(bloom.MayContain(key)) << key;
  }
}

// Property sweep: measured FPR tracks the theoretical curve for several
// bits-per-key budgets.
class BloomFprSweep : public ::testing::TestWithParam<double> {};

TEST_P(BloomFprSweep, FprNearTheory) {
  const double bits_per_key = GetParam();
  const int64_t n = 5000;
  BloomFilter bloom = BloomFilter::ForKeys(n, bits_per_key);
  Rng rng(3);
  std::set<int64_t> members;
  while (static_cast<int64_t>(members.size()) < n) {
    members.insert(static_cast<int64_t>(rng.Next() >> 1));
  }
  for (int64_t key : members) bloom.Insert(key);
  std::vector<int64_t> non_members;
  while (static_cast<int64_t>(non_members.size()) < 20000) {
    const int64_t key = static_cast<int64_t>(rng.Next() >> 1);
    if (!members.count(key)) non_members.push_back(key);
  }
  const double fpr = bloom.MeasureFpr(non_members);
  const double theory = std::pow(0.6185, bits_per_key);  // 0.6185^(b/n)
  EXPECT_LT(fpr, theory * 2.5 + 0.002) << "bits/key " << bits_per_key;
  EXPECT_GT(fpr, theory * 0.2 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BitsPerKey, BloomFprSweep,
                         ::testing::Values(4.0, 8.0, 12.0, 16.0));

TEST(BloomTest, MoreBitsFewerFalsePositives) {
  Rng rng(4);
  std::vector<int64_t> members, probes;
  for (int64_t i = 0; i < 2000; ++i) {
    members.push_back(static_cast<int64_t>(rng.Next() | 1));
  }
  for (int64_t i = 0; i < 10000; ++i) {
    probes.push_back(static_cast<int64_t>(rng.Next() & ~1ULL));
  }
  BloomFilter small = BloomFilter::ForKeys(2000, 4.0);
  BloomFilter big = BloomFilter::ForKeys(2000, 14.0);
  for (int64_t k : members) {
    small.Insert(k);
    big.Insert(k);
  }
  EXPECT_LT(big.MeasureFpr(probes), small.MeasureFpr(probes));
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, FullRangeSumsToOne) {
  Rng rng(5);
  std::vector<double> col(5000);
  for (double& v : col) v = rng.Gaussian();
  Histogram ew = Histogram::EquiWidth(col, 32);
  Histogram ed = Histogram::EquiDepth(col, 32);
  EXPECT_NEAR(ew.EstimateRange(-100, 100), 1.0, 1e-9);
  EXPECT_NEAR(ed.EstimateRange(-100, 100), 1.0, 1e-9);
}

TEST(HistogramTest, EmptyRangeIsZero) {
  std::vector<double> col = {1, 2, 3, 4, 5};
  Histogram h = Histogram::EquiWidth(col, 4);
  EXPECT_DOUBLE_EQ(h.EstimateRange(10, 20), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateRange(3, 2), 0.0);
}

TEST(HistogramTest, UniformDataEstimatesAreAccurate) {
  Rng rng(6);
  std::vector<double> col(20000);
  for (double& v : col) v = rng.Uniform();
  Histogram h = Histogram::EquiDepth(col, 64);
  EXPECT_NEAR(h.EstimateRange(0.2, 0.5), 0.3, 0.02);
  EXPECT_NEAR(h.EstimateRange(0.0, 0.25), 0.25, 0.02);
}

TEST(HistogramTest, EquiDepthHandlesSkew) {
  // 90% of mass at ~0, tail to 100: equi-depth keeps resolution at the
  // head where equi-width wastes buckets on the tail.
  Rng rng(7);
  std::vector<double> col(20000);
  for (double& v : col) {
    v = rng.Bernoulli(0.9) ? rng.Uniform() : rng.Uniform(0, 100);
  }
  Histogram ew = Histogram::EquiWidth(col, 16);
  Histogram ed = Histogram::EquiDepth(col, 16);
  // True fraction in [0, 0.5]: ~0.9 * 0.5 + 0.1 * 0.005 = ~0.4505.
  const double truth = 0.4505;
  EXPECT_LT(std::abs(ed.EstimateRange(0, 0.5) - truth),
            std::abs(ew.EstimateRange(0, 0.5) - truth));
}

TEST(AviTest, IndependentColumnsEstimateWell) {
  Rng rng(8);
  Table t = MakeCorrelatedTable(20000, 3, 0.0, &rng);
  AviEstimator avi(t, 64);
  Rng wrng(9);
  auto queries = MakeWorkload(t, 30, &wrng);
  double total_qerr = 0.0;
  for (const auto& q : queries) {
    total_qerr += QError(avi.Estimate(q), TrueSelectivity(t, q));
  }
  EXPECT_LT(total_qerr / 30.0, 4.0)
      << "AVI should be decent on independent columns";
}

TEST(AviTest, CorrelationBreaksIndependenceAssumption) {
  Rng rng(10);
  Table indep = MakeCorrelatedTable(20000, 4, 0.0, &rng);
  Rng rng2(10);
  Table corr = MakeCorrelatedTable(20000, 4, 0.95, &rng2);
  AviEstimator avi_i(indep, 64);
  AviEstimator avi_c(corr, 64);
  Rng wrng(11);
  auto wq_i = MakeWorkload(indep, 40, &wrng);
  Rng wrng2(11);
  auto wq_c = MakeWorkload(corr, 40, &wrng2);
  auto mean_qerr = [](const AviEstimator& e, const Table& t,
                      const std::vector<RangeQuery>& qs) {
    double s = 0.0;
    for (const auto& q : qs) s += QError(e.Estimate(q), TrueSelectivity(t, q));
    return s / static_cast<double>(qs.size());
  };
  EXPECT_GT(mean_qerr(avi_c, corr, wq_c), mean_qerr(avi_i, indep, wq_i))
      << "correlated attributes must hurt the AVI estimator";
}

// ----------------------------------------------------------------- Table

TEST(TableTest, QErrorProperties) {
  EXPECT_DOUBLE_EQ(QError(0.5, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.1, 0.2), 2.0);
  EXPECT_DOUBLE_EQ(QError(0.2, 0.1), 2.0);
  EXPECT_GE(QError(0.0, 0.5), 1.0);  // floored, no division blowup
}

TEST(TableTest, WorkloadSelectivitiesSpread) {
  Rng rng(12);
  Table t = MakeCorrelatedTable(5000, 3, 0.5, &rng);
  Rng wrng(13);
  auto queries = MakeWorkload(t, 60, &wrng);
  int64_t tiny = 0, large = 0;
  for (const auto& q : queries) {
    const double sel = TrueSelectivity(t, q);
    if (sel < 0.01) ++tiny;
    if (sel > 0.05) ++large;
  }
  EXPECT_GT(tiny, 5) << "workload should include selective queries";
  EXPECT_GT(large, 5) << "workload should include broad queries";
}

TEST(TableTest, CorrelationKnobActuallyCorrelates) {
  Rng rng(14);
  Table t = MakeCorrelatedTable(10000, 2, 0.9, &rng);
  // Pearson correlation of the two columns should be clearly positive.
  double mx = 0, my = 0;
  for (int64_t r = 0; r < t.rows; ++r) {
    mx += t.value(r, 0);
    my += t.value(r, 1);
  }
  mx /= t.rows;
  my /= t.rows;
  double sxy = 0, sxx = 0, syy = 0;
  for (int64_t r = 0; r < t.rows; ++r) {
    const double dx = t.value(r, 0) - mx, dy = t.value(r, 1) - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  EXPECT_GT(sxy / std::sqrt(sxx * syy), 0.7);
}

// ------------------------------------------------------------- TunableDb

TEST(TunableDbTest, ValidatesKnobs) {
  TunableDb db({0.8, 0.3, 512});
  EXPECT_TRUE(db.Validate({0, 0, 0}).ok());
  EXPECT_FALSE(db.Validate({-1, 0, 0}).ok());
  EXPECT_FALSE(db.Validate({0, 99, 0}).ok());
}

TEST(TunableDbTest, DeterministicLatency) {
  TunableDb db({0.8, 0.3, 512});
  DbKnobs k{3, 2, 1};
  EXPECT_DOUBLE_EQ(db.LatencyMs(k), db.LatencyMs(k));
}

TEST(TunableDbTest, BiggerBufferHelpsReadHeavyWorkload) {
  TunableDb db({0.95, 0.2, 2048});
  const double small = db.LatencyMs({0, 2, 2});
  const double large = db.LatencyMs({7, 2, 2});
  EXPECT_LT(large, small);
}

TEST(TunableDbTest, BestKnobsIsActuallyOptimal) {
  TunableDb db({0.7, 0.4, 1024});
  const DbKnobs best = db.BestKnobs();
  const double best_lat = db.LatencyMs(best);
  const auto sizes = db.GridSizes();
  for (int64_t b = 0; b < sizes[0]; ++b) {
    for (int64_t p = 0; p < sizes[1]; ++p) {
      for (int64_t t = 0; t < sizes[2]; ++t) {
        EXPECT_GE(db.LatencyMs({b, p, t}), best_lat - 1e-12);
      }
    }
  }
}

TEST(TunableDbTest, WorkloadChangesOptimum) {
  TunableDb scan_heavy({0.95, 0.9, 512}, 7);
  TunableDb point_heavy({0.95, 0.0, 512}, 7);
  // Scan-heavy workloads prefer larger pages than point-read workloads.
  EXPECT_GE(scan_heavy.BestKnobs().page_idx,
            point_heavy.BestKnobs().page_idx);
}

}  // namespace
}  // namespace dlsys
