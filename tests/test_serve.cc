// Tests for the serving layer (src/serve): RCU hot-swap correctness
// (every completed request's output is bitwise the version it was
// admitted under, at any DLSYS_THREADS), bounded-queue and deadline
// admission, deterministic bit-for-bit load replay, and thread-safety of
// registry publish/acquire under real concurrency (the TSan target).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/rng.h"
#include "src/nn/train.h"
#include "src/obs/attribution.h"
#include "src/runtime/runtime.h"
#include "src/serve/admission.h"
#include "src/serve/loadgen.h"
#include "src/serve/registry.h"
#include "src/serve/scheduler.h"
#include "src/serve/server.h"
#include "src/serve/slots.h"

namespace dlsys {
namespace {

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.bytes())) == 0;
}

/// A small trained-free MLP; distinct seeds give distinct weights.
Sequential MakeNet(uint64_t seed) {
  Sequential net = MakeMlp(16, {24}, 4);
  Rng rng(seed);
  net.Init(&rng);
  return net;
}

// ------------------------------------------------------------- registry

TEST(ModelRegistryTest, PublishAcquireAndVersioning) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Acquire("m"), nullptr);
  EXPECT_EQ(registry.LatestVersion("m"), 0);

  Sequential net = MakeNet(1);
  auto snap1 = CompileSnapshot(net, {16}, /*replicas=*/2);
  ASSERT_TRUE(snap1.ok()) << snap1.status().ToString();
  auto v1 = registry.Publish("m", std::move(snap1).value());
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1);
  EXPECT_EQ(registry.swap_count(), 0);  // first publication is not a swap

  std::shared_ptr<ModelSnapshot> held = registry.Acquire("m");
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->version, 1);
  EXPECT_EQ(held->model, "m");
  EXPECT_EQ(held->in_elems, 16);
  EXPECT_EQ(held->out_elems, 4);
  ASSERT_EQ(held->replicas.size(), 2u);

  auto snap2 = CompileSnapshot(MakeNet(2), {16}, 2);
  ASSERT_TRUE(snap2.ok());
  auto v2 = registry.Publish("m", std::move(snap2).value());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2);
  EXPECT_EQ(registry.swap_count(), 1);
  EXPECT_EQ(registry.LatestVersion("m"), 2);
  EXPECT_EQ(registry.Acquire("m")->version, 2);

  // RCU guarantee: the pre-swap snapshot we hold is untouched and usable.
  EXPECT_EQ(held->version, 1);
  Tensor x({16});
  Rng rng(3);
  x.FillGaussian(&rng, 1.0f);
  Tensor out({1, 4});
  EXPECT_TRUE(
      held->replicas[0].engine->PredictInto(x.data(), 1, out.data()).ok());

  auto other = CompileSnapshot(MakeNet(4), {16}, 1);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(registry.Publish("a", std::move(other).value()).ok());
  EXPECT_EQ(registry.ModelNames(), (std::vector<std::string>{"a", "m"}));
}

TEST(ModelRegistryTest, PublishAndCompileErrors) {
  ModelRegistry registry;
  Sequential net = MakeNet(1);
  EXPECT_EQ(CompileSnapshot(net, {16}, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CompileSnapshot(net, {4, 4}, 1).status().code(),
            StatusCode::kInvalidArgument);  // shape does not thread through

  EXPECT_EQ(registry.Publish("m", nullptr).status().code(),
            StatusCode::kInvalidArgument);
  auto snap = CompileSnapshot(net, {16}, 1);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(registry.Publish("", std::move(snap).value()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ModelRegistryTest, ConcurrentPublishAndAcquireAreRaceFree) {
  // The TSan target for the registry alone: one publisher hot-swapping in
  // a loop while readers acquire and *use* snapshots. Each reader drives
  // its own replica index, so engine workspaces are never shared.
  constexpr int kReaders = 3;
  ModelRegistry registry;
  auto first = CompileSnapshot(MakeNet(10), {16}, kReaders);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(registry.Publish("m", std::move(first).value()).ok());

  std::atomic<bool> stop{false};
  std::thread publisher([&registry, &stop]() {
    for (int i = 0; i < 8; ++i) {
      auto snap = CompileSnapshot(MakeNet(11 + static_cast<uint64_t>(i)),
                                  {16}, kReaders);
      ASSERT_TRUE(snap.ok());
      ASSERT_TRUE(registry.Publish("m", std::move(snap).value()).ok());
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&registry, &stop, r]() {
      Rng rng(100 + static_cast<uint64_t>(r));
      Tensor x({16});
      Tensor out({1, 4});
      int64_t last_version = 0;
      while (!stop.load()) {
        std::shared_ptr<ModelSnapshot> snap = registry.Acquire("m");
        ASSERT_NE(snap, nullptr);
        EXPECT_GE(snap->version, last_version);  // versions only move up
        last_version = snap->version;
        x.FillGaussian(&rng, 1.0f);
        ASSERT_TRUE(snap->replicas[static_cast<size_t>(r)]
                        .engine->PredictInto(x.data(), 1, out.data())
                        .ok());
      }
    });
  }
  publisher.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(registry.LatestVersion("m"), 9);
  EXPECT_EQ(registry.swap_count(), 8);
}

// ------------------------------------------------------- config validation

TEST(ServerConfigTest, ValidateCatchesEachBadField) {
  EXPECT_TRUE(ValidateServerConfig(ServerConfig{}).ok());

  ServerConfig c;
  c.workers = 0;
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.batch.max_batch = 0;
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.queue_capacity = 3;
  c.batch.max_batch = 8;  // queue bound must fit one full batch
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.batch.max_delay_ms = -0.5;
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.default_deadline_ms = 0.0;
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.default_deadline_ms = 1.0 / 0.0;
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.cost.fixed_ms = -1.0;
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.cost.per_example_ms = -1.0;
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  ModelRegistry registry;
  c = ServerConfig{};
  c.workers = 0;
  EXPECT_FALSE(Server::Create(&registry, c).ok());
  EXPECT_FALSE(Server::Create(nullptr, ServerConfig{}).ok());
}

// ------------------------------------------------------------- admission

TEST(ServerTest, ShedsWhenQueueIsFullInsteadOfQueuingUnboundedly) {
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  config.batch.max_batch = 4;
  config.batch.max_delay_ms = 1000.0;  // only full batches dispatch
  config.default_deadline_ms = 1e6;    // deadline never the limiter here
  config.cost = {1.0, 0.0};
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<Server> server = std::move(created).value();
  ASSERT_TRUE(server->Publish("m", MakeNet(1), {16}).ok());

  Rng rng(2);
  Tensor x({16});
  int admitted = 0, shed = 0;
  for (int i = 0; i < 10; ++i) {
    x.FillGaussian(&rng, 1.0f);
    const Server::SubmitResult r = server->Submit("m", x, 0.0);
    if (r.outcome == Server::Outcome::kAdmitted) {
      ++admitted;
    } else {
      EXPECT_EQ(r.outcome, Server::Outcome::kShedQueueFull) << "i=" << i;
      ++shed;
    }
  }
  // First batch of 4 dispatches on the spot (frees the queue), next 4
  // wait for the busy worker, and the rest bounce off the full queue.
  EXPECT_EQ(admitted, 8);
  EXPECT_EQ(shed, 2);
  server->Drain();
  EXPECT_EQ(server->completions().size(), 8u);  // no admitted request lost

  const MetricsReport m = server->metrics();
  EXPECT_EQ(m.Get("serve.offered"), 10.0);
  EXPECT_EQ(m.Get("serve.admitted"), 8.0);
  EXPECT_EQ(m.Get("serve.shed.queue_full"), 2.0);
  EXPECT_EQ(m.Get("serve.batches"), 2.0);
  EXPECT_EQ(m.Get("serve.latency.count"), 8.0);
}

TEST(ServerTest, ShedsWhenPredictedFinishMissesDeadline) {
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 64;
  config.batch.max_batch = 1;
  config.batch.max_delay_ms = 0.0;
  config.default_deadline_ms = 15.0;
  config.cost = {10.0, 0.0};  // each dispatch occupies the worker 10ms
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Server> server = std::move(created).value();
  ASSERT_TRUE(server->Publish("m", MakeNet(1), {16}).ok());

  Rng rng(3);
  Tensor x({16});
  x.FillGaussian(&rng, 1.0f);
  EXPECT_EQ(server->Submit("m", x, 0.0).outcome, Server::Outcome::kAdmitted);
  // The worker is now busy until t=10; a second request would finish at
  // t=20, past its t=15 deadline — shed at admission, not queued to fail.
  EXPECT_EQ(server->Submit("m", x, 0.0).outcome,
            Server::Outcome::kShedDeadline);
  // By t=6 the worker frees at 10 and a new request's deadline is 21.
  EXPECT_EQ(server->Submit("m", x, 6.0).outcome, Server::Outcome::kAdmitted);
  server->Drain();
  EXPECT_EQ(server->completions().size(), 2u);
  EXPECT_EQ(server->metrics().Get("serve.shed.deadline_infeasible"), 1.0);
  EXPECT_EQ(server->metrics().Get("serve.deadline_missed"), 0.0);
}

TEST(AdmissionTest, StructuredShedReasonsAndNames) {
  EXPECT_STREQ(ShedReasonName(ShedReason::kQueueFull), "queue_full");
  EXPECT_STREQ(ShedReasonName(ShedReason::kDeadlineInfeasible),
               "deadline_infeasible");
  EXPECT_STREQ(ShedReasonName(ShedReason::kDraining), "draining");
  EXPECT_STREQ(ShedReasonName(ShedReason::kUnhealthyReplica),
               "unhealthy_replica");

  // The pure decision function attributes each shed to exactly one
  // reason, tested in priority order: draining trumps queue state,
  // queue bound trumps deadline feasibility.
  ServerConfig config;
  config.queue_capacity = 2;
  config.batch.max_batch = 1;
  config.cost = {10.0, 0.0};
  AdmissionInputs in;
  in.prospective_batch = 1;
  in.deadline_budget_ms = 100.0;
  EXPECT_EQ(DecideAdmission(config, in), AdmissionDecision::kAdmit);
  in.draining = true;
  in.queue_depth = 2;
  EXPECT_EQ(DecideAdmission(config, in), AdmissionDecision::kShedDraining);
  in.draining = false;
  EXPECT_EQ(DecideAdmission(config, in), AdmissionDecision::kShedQueueFull);
  in.queue_depth = 0;
  in.deadline_budget_ms = 5.0;  // modeled 10ms service can never make it
  EXPECT_EQ(DecideAdmission(config, in), AdmissionDecision::kShedDeadline);
}

TEST(ServerTest, DrainingShedsNewWorkButFinishesQueuedWork) {
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.batch.max_batch = 4;
  config.batch.max_delay_ms = 1000.0;  // hold the batch open
  config.default_deadline_ms = 1e6;
  config.cost = {1.0, 0.0};
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Server> server = std::move(created).value();
  ASSERT_TRUE(server->Publish("m", MakeNet(1), {16}).ok());

  Rng rng(4);
  Tensor x({16});
  x.FillGaussian(&rng, 1.0f);
  EXPECT_EQ(server->Submit("m", x, 0.0).outcome, Server::Outcome::kAdmitted);
  EXPECT_EQ(server->Submit("m", x, 0.0).outcome, Server::Outcome::kAdmitted);
  EXPECT_EQ(server->queue_depth(), 2);

  server->SetDraining(true);
  EXPECT_TRUE(server->draining());
  EXPECT_EQ(server->Submit("m", x, 1.0).outcome,
            Server::Outcome::kShedDraining);
  EXPECT_EQ(server->metrics().Get("serve.shed.draining"), 1.0);

  // The graceful half of a scale-down: everything admitted before the
  // drain still completes.
  server->Drain();
  EXPECT_EQ(server->completions().size(), 2u);
  EXPECT_EQ(server->queue_depth(), 0);

  server->SetDraining(false);
  // Drain advanced the simulated clock; resume past it.
  EXPECT_EQ(server->Submit("m", x, 2000.0).outcome,
            Server::Outcome::kAdmitted);
}

TEST(ServerTest, DropQueuedLosesOnlyUndispatchedRequests) {
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.batch.max_batch = 2;
  config.batch.max_delay_ms = 1000.0;
  config.default_deadline_ms = 1e6;
  config.cost = {1.0, 0.0};
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Server> server = std::move(created).value();
  ASSERT_TRUE(server->Publish("m", MakeNet(1), {16}).ok());

  Rng rng(5);
  Tensor x({16});
  x.FillGaussian(&rng, 1.0f);
  // First two form a full batch and dispatch immediately; the third
  // stays queued behind the busy worker.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server->Submit("m", x, 0.0).outcome,
              Server::Outcome::kAdmitted);
  }
  EXPECT_EQ(server->queue_depth(), 1);
  EXPECT_EQ(server->DropQueued(), 1);  // the crash loses its queue...
  EXPECT_EQ(server->queue_depth(), 0);
  EXPECT_EQ(server->DropQueued(), 0);
  server->Drain();
  // ...but not the already-dispatched batch.
  EXPECT_EQ(server->completions().size(), 2u);
}

TEST(ServerTest, CostScaleSlowsFutureDecisionsOnly) {
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.batch.max_batch = 1;
  config.batch.max_delay_ms = 0.0;
  config.default_deadline_ms = 1e6;
  config.cost = {2.0, 1.0};
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Server> server = std::move(created).value();
  ASSERT_TRUE(server->Publish("m", MakeNet(1), {16}).ok());

  Rng rng(6);
  Tensor x({16});
  x.FillGaussian(&rng, 1.0f);
  EXPECT_EQ(server->Submit("m", x, 0.0).outcome, Server::Outcome::kAdmitted);
  server->AdvanceTo(10.0);
  ASSERT_EQ(server->completions().size(), 1u);
  // Healthy modeled service: fixed 2 + per-example 1.
  EXPECT_DOUBLE_EQ(server->completions()[0].finish_ms, 3.0);

  // A gray failure quadruples the modeled cost for future dispatches.
  server->SetCostScale(4.0);
  EXPECT_DOUBLE_EQ(server->cost_scale(), 4.0);
  EXPECT_EQ(server->Submit("m", x, 10.0).outcome,
            Server::Outcome::kAdmitted);
  EXPECT_DOUBLE_EQ(server->earliest_worker_free_ms(), 22.0);  // 10 + 4*3
  server->Drain();
  ASSERT_EQ(server->completions().size(), 2u);
  EXPECT_DOUBLE_EQ(server->completions()[1].finish_ms, 22.0);

  server->SetCostScale(1.0);
  EXPECT_EQ(server->Submit("m", x, 30.0).outcome,
            Server::Outcome::kAdmitted);
  server->Drain();
  ASSERT_EQ(server->completions().size(), 3u);
  EXPECT_DOUBLE_EQ(server->completions()[2].finish_ms, 33.0);
}

TEST(ServerTest, UnknownModelIsReported) {
  ModelRegistry registry;
  auto created = Server::Create(&registry, ServerConfig{});
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Server> server = std::move(created).value();
  Tensor x({16});
  EXPECT_EQ(server->Submit("ghost", x, 0.0).outcome,
            Server::Outcome::kNoSuchModel);
  EXPECT_EQ(server->metrics().Get("serve.no_such_model"), 1.0);
}

// ------------------------------------------------------ hot-swap under load

struct SwapTrace {
  std::vector<Server::Outcome> outcomes;
  std::vector<int64_t> versions;          // per completion, dispatch order
  std::vector<double> finishes;           // per completion
  std::vector<int64_t> ids;               // per completion
  std::vector<std::vector<float>> outputs;
  MetricsReport metrics;
};

/// Drives 200 requests with a v1→v2 publish before request 100 and
/// returns the full observable trace.
SwapTrace RunSwapScenario(const Sequential& net1, const Sequential& net2,
                          const std::vector<Tensor>& inputs) {
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.batch.max_batch = 4;
  config.batch.max_delay_ms = 0.5;
  config.default_deadline_ms = 1e6;  // nothing sheds; we count completions
  auto created = Server::Create(&registry, config);
  EXPECT_TRUE(created.ok());
  std::unique_ptr<Server> server = std::move(created).value();
  EXPECT_TRUE(server->Publish("m", net1, {16}).ok());

  SwapTrace trace;
  double t = 0.0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    t += 0.05;
    if (i == 100) EXPECT_TRUE(server->Publish("m", net2, {16}).ok());
    trace.outcomes.push_back(server->Submit("m", inputs[i], t).outcome);
  }
  server->Drain();
  for (const Server::Completion& c : server->completions()) {
    trace.versions.push_back(c.version);
    trace.finishes.push_back(c.finish_ms);
    trace.ids.push_back(c.id);
    trace.outputs.emplace_back(c.output.data(),
                               c.output.data() + c.output.size());
  }
  trace.metrics = server->metrics();
  return trace;
}

TEST(ServerTest, HotSwapUnderLoadIsLosslessAndBitwiseVersionFaithful) {
  const Sequential net1 = MakeNet(21);
  const Sequential net2 = MakeNet(22);
  std::vector<Tensor> inputs;
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    Tensor x({16});
    x.FillGaussian(&rng, 1.0f);
    inputs.push_back(std::move(x));
  }
  // Per-version references: the engine's row outputs are bitwise equal to
  // single-example predictions, so a per-request reference is exact.
  auto ref1 = InferenceEngine::Compile(net1, {16});
  auto ref2 = InferenceEngine::Compile(net2, {16});
  ASSERT_TRUE(ref1.ok() && ref2.ok());
  InferenceEngine engines[2] = {std::move(ref1).value(),
                                std::move(ref2).value()};

  SwapTrace first;
  for (int threads : {1, 2, 8}) {
    RuntimeConfig::SetThreads(threads);
    SwapTrace trace = RunSwapScenario(net1, net2, inputs);

    // (a) zero requests lost across the swap...
    ASSERT_EQ(trace.outcomes.size(), 200u);
    for (size_t i = 0; i < trace.outcomes.size(); ++i) {
      EXPECT_EQ(trace.outcomes[i], Server::Outcome::kAdmitted) << i;
    }
    ASSERT_EQ(trace.versions.size(), 200u);
    EXPECT_EQ(trace.metrics.Get("serve.admitted"), 200.0);
    EXPECT_EQ(trace.metrics.Get("serve.swaps"), 1.0);
    // ...and both versions actually served.
    EXPECT_GT(trace.metrics.Get("serve.m.served_v1"), 0.0);
    EXPECT_GT(trace.metrics.Get("serve.m.served_v2"), 0.0);

    for (size_t i = 0; i < trace.versions.size(); ++i) {
      const int64_t id = trace.ids[i];
      // Version binding happens at admission: requests offered before the
      // publish stay on v1, later ones are v2, with no mixing.
      EXPECT_EQ(trace.versions[i], id < 100 ? 1 : 2) << "id=" << id;
      // Output is bitwise the bound version's prediction.
      Tensor one({1, 16});
      const Tensor& src = inputs[static_cast<size_t>(id)];
      std::copy(src.data(), src.data() + 16, one.data());
      const Tensor want =
          std::move(engines[trace.versions[i] - 1].Predict(one)).value();
      ASSERT_EQ(trace.outputs[i].size(), 4u);
      EXPECT_EQ(std::memcmp(trace.outputs[i].data(), want.data(),
                            4 * sizeof(float)),
                0)
          << "id=" << id << " threads=" << threads;
    }

    // (c) the whole trace — decisions, schedule, outputs — is identical
    // at every thread count.
    if (threads == 1) {
      first = std::move(trace);
    } else {
      EXPECT_EQ(trace.versions, first.versions) << "threads=" << threads;
      EXPECT_EQ(trace.finishes, first.finishes) << "threads=" << threads;
      EXPECT_EQ(trace.ids, first.ids) << "threads=" << threads;
      EXPECT_EQ(trace.outputs, first.outputs) << "threads=" << threads;
    }
  }
  RuntimeConfig::SetThreads(1);
}

TEST(ServerTest, ConcurrentPublishDuringServingKeepsVersionsBitwise) {
  // The end-to-end TSan scenario: the serving loop runs on this thread
  // while another thread hot-swaps between two networks. Which version a
  // request binds depends on the race — but whichever it binds, its
  // output must be bitwise that version's prediction.
  const Sequential nets[2] = {MakeNet(31), MakeNet(32)};
  auto ref0 = InferenceEngine::Compile(nets[0], {16});
  auto ref1 = InferenceEngine::Compile(nets[1], {16});
  ASSERT_TRUE(ref0.ok() && ref1.ok());
  InferenceEngine refs[2] = {std::move(ref0).value(),
                             std::move(ref1).value()};

  ModelRegistry registry;
  ServerConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.batch.max_batch = 4;
  config.batch.max_delay_ms = 0.2;
  config.default_deadline_ms = 1e6;
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Server> server = std::move(created).value();
  ASSERT_TRUE(server->Publish("m", nets[0], {16}).ok());

  std::thread swapper([&server, &nets]() {
    for (int i = 0; i < 6; ++i) {
      // v2 binds nets[1], v3 nets[0], ... — version v serves nets[1 - v%2].
      ASSERT_TRUE(server->Publish("m", nets[(i + 1) % 2], {16}).ok());
    }
  });

  std::vector<Tensor> inputs;
  Rng rng(33);
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    Tensor x({16});
    x.FillGaussian(&rng, 1.0f);
    t += 0.05;
    ASSERT_EQ(server->Submit("m", x, t).outcome, Server::Outcome::kAdmitted);
    inputs.push_back(std::move(x));
  }
  swapper.join();
  server->Drain();

  ASSERT_EQ(server->completions().size(), 300u);
  for (const Server::Completion& c : server->completions()) {
    ASSERT_GE(c.version, 1);
    ASSERT_LE(c.version, 7);
    InferenceEngine& ref = refs[1 - c.version % 2];
    Tensor one({1, 16});
    const Tensor& src = inputs[static_cast<size_t>(c.id)];
    std::copy(src.data(), src.data() + 16, one.data());
    const Tensor want = std::move(ref.Predict(one)).value();
    EXPECT_EQ(std::memcmp(c.output.data(), want.data(), 4 * sizeof(float)),
              0)
        << "id=" << c.id << " version=" << c.version;
  }
  EXPECT_EQ(server->registry()->swap_count(), 6);
}

// -------------------------------------------------------- load harnesses

TEST(LoadGenTest, OpenLoopReplaysBitForBit) {
  auto run = []() {
    ModelRegistry registry;
    ServerConfig config;
    config.workers = 2;
    config.queue_capacity = 32;
    config.batch.max_batch = 8;
    config.batch.max_delay_ms = 0.3;
    config.default_deadline_ms = 5.0;
    auto created = Server::Create(&registry, config);
    EXPECT_TRUE(created.ok());
    std::unique_ptr<Server> server = std::move(created).value();
    EXPECT_TRUE(server->Publish("m", MakeNet(41), {16}).ok());
    OpenLoopConfig load;
    load.seed = 5;
    load.requests = 300;
    load.rate_rps = 20000.0;  // hot enough that some requests shed
    load.model = "m";
    LoadReport report = RunOpenLoop(server.get(), load);
    SwapTrace trace;  // reuse the container for the comparison
    for (const Server::Completion& c : server->completions()) {
      trace.versions.push_back(c.version);
      trace.finishes.push_back(c.finish_ms);
      trace.ids.push_back(c.id);
      trace.outputs.emplace_back(c.output.data(),
                                 c.output.data() + c.output.size());
    }
    return std::make_pair(report, trace);
  };
  auto [r1, t1] = run();
  auto [r2, t2] = run();

  EXPECT_EQ(r1.offered, 300);
  EXPECT_EQ(r1.offered, r1.admitted + r1.shed);
  EXPECT_EQ(r1.completed, r1.admitted);  // every admitted request finishes
  EXPECT_GT(r1.completed, 0);

  // Bit-for-bit replay: same counts, same schedule, same outputs.
  EXPECT_EQ(r1.admitted, r2.admitted);
  EXPECT_EQ(r1.shed, r2.shed);
  EXPECT_EQ(r1.deadline_missed, r2.deadline_missed);
  EXPECT_EQ(r1.duration_ms, r2.duration_ms);
  EXPECT_EQ(r1.latency.count(), r2.latency.count());
  EXPECT_EQ(r1.latency.sum_ms(), r2.latency.sum_ms());
  EXPECT_EQ(t1.ids, t2.ids);
  EXPECT_EQ(t1.versions, t2.versions);
  EXPECT_EQ(t1.finishes, t2.finishes);
  EXPECT_EQ(t1.outputs, t2.outputs);
}

TEST(LoadGenTest, ClosedLoopCompletesEveryClientBudget) {
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 2;
  config.queue_capacity = 32;
  config.batch.max_batch = 4;
  config.batch.max_delay_ms = 0.2;
  config.default_deadline_ms = 50.0;
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Server> server = std::move(created).value();
  ASSERT_TRUE(server->Publish("m", MakeNet(51), {16}).ok());

  ClosedLoopConfig load;
  load.seed = 6;
  load.clients = 3;
  load.requests_per_client = 20;
  load.think_ms = 1.0;
  load.model = "m";
  const LoadReport report = RunClosedLoop(server.get(), load);
  // Closed-loop offered load self-limits well under capacity here, so
  // nothing sheds and every attempt completes.
  EXPECT_EQ(report.offered, 60);
  EXPECT_EQ(report.admitted, 60);
  EXPECT_EQ(report.shed, 0);
  EXPECT_EQ(report.completed, 60);
  EXPECT_EQ(report.latency.count(), 60);
  EXPECT_GT(report.sim_throughput_rps, 0.0);
}

// ------------------------------------------------- slot scheduler QoS

TEST(ServerConfigTest, ValidateCatchesBadQosFields) {
  ServerConfig c;
  c.scheduler.use_slots = true;
  EXPECT_TRUE(ValidateServerConfig(c).ok());

  c = ServerConfig{};
  c.scheduler.slots_per_worker = -1;
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.scheduler.priority_classes = 0;
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.scheduler.default_policy.burst = 0.5;  // must hold a whole request
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.scheduler.default_policy.weight = 0.0;
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.scheduler.default_policy.rate_rps = 1.0 / 0.0;
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.scheduler.default_policy.priority = 1;  // out of [0, priority_classes)
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.scheduler.tenants[""] = TenantPolicy{};
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.scheduler.priority_classes = 2;
  c.scheduler.tenants["a"].priority = 2;  // valid classes are {0, 1}
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);

  c = ServerConfig{};
  c.scheduler.tenants["a"].weight = -1.0;
  EXPECT_EQ(ValidateServerConfig(c).code(), StatusCode::kInvalidArgument);
}

SlotRequest MakeSlotRequest(int64_t id, const std::string& tenant,
                            int priority = 0) {
  SlotRequest r;
  r.id = id;
  r.tenant = tenant;
  r.priority = priority;
  return r;
}

TEST(TenantSchedulerTest, TokenBucketGatesAndRefillsDeterministically) {
  SlotSchedulerConfig config;
  config.use_slots = true;
  config.default_policy.rate_rps = 100.0;  // one token per 10 simulated ms
  config.default_policy.burst = 1.0;
  TenantScheduler sched(config);
  for (int64_t id = 0; id < 3; ++id) {
    sched.Enqueue(MakeSlotRequest(id, "a"));
  }
  EXPECT_EQ(sched.depth(), 3);

  // The bucket starts full: the first pick is free, then the quota gates.
  auto first = sched.PickNext(0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 0);
  EXPECT_FALSE(sched.PickNext(5.0).has_value());  // only 0.5 tokens back
  EXPECT_DOUBLE_EQ(sched.NextEligibleMs(5.0), 10.0);

  auto second = sched.PickNext(10.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, 1);
  EXPECT_DOUBLE_EQ(sched.NextEligibleMs(10.0), 20.0);
  // The backlog-aware horizon sees the still-queued request ahead: one
  // more request behind it needs two token arrivals from an empty bucket.
  EXPECT_DOUBLE_EQ(sched.QuotaBacklogMs("a", 10.0), 30.0);
  EXPECT_EQ(sched.served("a"), 2);
  EXPECT_EQ(sched.depth(), 1);
}

TEST(TenantSchedulerTest, DeficitWeightedFairSharesFollowWeights) {
  SlotSchedulerConfig config;
  config.use_slots = true;
  config.enforce_quotas = false;
  config.tenants["a"].weight = 2.0;
  config.tenants["b"].weight = 1.0;
  TenantScheduler sched(config);
  for (int64_t id = 0; id < 60; ++id) {
    sched.Enqueue(MakeSlotRequest(id, id % 2 == 0 ? "a" : "b"));
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(sched.PickNext(0.0).has_value()) << i;
  }
  // Both tenants stayed backlogged the whole time, so DWFQ hands out
  // slots in exact weight proportion: 2/3 to a, 1/3 to b.
  EXPECT_EQ(sched.served("a"), 20);
  EXPECT_EQ(sched.served("b"), 10);
}

TEST(TenantSchedulerTest, StrictPriorityYieldsOnlyToEligibleWork) {
  SlotSchedulerConfig config;
  config.use_slots = true;
  config.priority_classes = 2;
  config.tenants["hi"].priority = 0;
  config.tenants["hi"].rate_rps = 100.0;
  config.tenants["hi"].burst = 1.0;
  config.tenants["lo"].priority = 1;
  TenantScheduler sched(config);
  sched.Enqueue(MakeSlotRequest(0, "lo", 1));
  sched.Enqueue(MakeSlotRequest(1, "hi", 0));
  sched.Enqueue(MakeSlotRequest(2, "hi", 0));
  sched.Enqueue(MakeSlotRequest(3, "lo", 1));

  // Class 0 wins despite the higher request id...
  auto p1 = sched.PickNext(0.0);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->tenant, "hi");
  // ...but a quota-blocked class 0 does not hold class 1 hostage:
  // priority is strict over *eligible* work only.
  auto p2 = sched.PickNext(0.0);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->tenant, "lo");
  // Once the bucket refills, class 0 preempts again.
  auto p3 = sched.PickNext(10.0);
  ASSERT_TRUE(p3.has_value());
  EXPECT_EQ(p3->tenant, "hi");
}

TEST(TenantSchedulerTest, FifoControlServesGloballyByRequestId) {
  SlotSchedulerConfig config;
  config.use_slots = true;
  config.fair_queueing = false;
  config.enforce_quotas = false;
  config.tenants["a"].weight = 5.0;  // ignored by the FIFO control path
  TenantScheduler sched(config);
  sched.Enqueue(MakeSlotRequest(0, "a"));
  sched.Enqueue(MakeSlotRequest(1, "b"));
  sched.Enqueue(MakeSlotRequest(2, "a"));
  for (int64_t want = 0; want < 3; ++want) {
    auto pick = sched.PickNext(0.0);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(pick->id, want);
  }
}

// ------------------------------------------- continuous batching slots

struct SlotTrace {
  std::vector<int64_t> ids;
  std::vector<double> dispatches;
  std::vector<double> finishes;
  std::vector<double> arrivals;
  std::vector<int> workers;
  std::vector<int64_t> batch_sizes;
  std::vector<std::vector<float>> outputs;
  std::vector<std::pair<double, int>> occupancy;
  int peak_occupancy = 0;
  LoadReport report;
};

/// Sustained 1.5x-overload open loop against the slot scheduler.
SlotTrace RunSlotScenario() {
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 2;
  config.queue_capacity = 512;  // hold the full overload backlog
  config.batch.max_batch = 4;   // = slot lanes per worker
  config.default_deadline_ms = 1e6;
  config.scheduler.use_slots = true;
  auto created = Server::Create(&registry, config);
  EXPECT_TRUE(created.ok());
  std::unique_ptr<Server> server = std::move(created).value();
  EXPECT_TRUE(server->Publish("m", MakeNet(61), {16}).ok());

  // Capacity: 2 workers * 4 lanes / 0.09 ms per step ~ 89 req/ms.
  OpenLoopConfig load;
  load.seed = 9;
  load.requests = 300;
  load.rate_rps = 133'000.0;  // ~1.5x capacity: the pool never starves
  load.model = "m";

  SlotTrace trace;
  trace.report = RunOpenLoop(server.get(), load);
  for (const Server::Completion& c : server->completions()) {
    trace.ids.push_back(c.id);
    trace.dispatches.push_back(c.dispatch_ms);
    trace.finishes.push_back(c.finish_ms);
    trace.arrivals.push_back(c.arrival_ms);
    trace.workers.push_back(c.worker);
    trace.batch_sizes.push_back(c.batch_size);
    trace.outputs.emplace_back(c.output.data(),
                               c.output.data() + c.output.size());
  }
  EXPECT_NE(server->slot_pool(), nullptr);
  trace.occupancy = server->slot_pool()->occupancy_timeline();
  trace.peak_occupancy = server->slot_pool()->peak_occupancy();
  return trace;
}

TEST(SlotServerTest, ContinuousBatchingNeverDrainsAndReplaysBitwise) {
  SlotTrace first;
  for (int threads : {1, 2, 8}) {
    RuntimeConfig::SetThreads(threads);
    SlotTrace trace = RunSlotScenario();

    ASSERT_EQ(trace.report.offered, 300);
    EXPECT_EQ(trace.report.shed, 0);
    EXPECT_EQ(trace.report.completed, 300);
    // Under sustained overload every lane fills.
    EXPECT_EQ(trace.peak_occupancy, 8);

    // The continuous-batching acceptance: once load is established, slot
    // occupancy never touches zero — freed lanes refill the same instant
    // their step completes, with no drain barrier between batches.
    ASSERT_EQ(trace.ids.size(), 300u);
    double t_lo = 0.0;
    for (size_t i = 0; i < trace.ids.size(); ++i) {
      if (trace.ids[i] >= 20) t_lo = std::max(t_lo, trace.dispatches[i]);
      if (trace.ids[i] >= 21) break;
    }
    const double t_hi =
        *std::max_element(trace.dispatches.begin(), trace.dispatches.end());
    int checked = 0;
    for (const auto& [t, occ] : trace.occupancy) {
      if (t < t_lo || t > t_hi) continue;
      EXPECT_GT(occ, 0) << "pool drained at t=" << t;
      ++checked;
    }
    EXPECT_GT(checked, 50);

    // A request that arrived mid-step rides the very next step of the
    // same worker the instant the in-flight one finishes.
    bool joined_mid_step = false;
    for (size_t i = 0; i < trace.ids.size() && !joined_mid_step; ++i) {
      for (size_t j = 0; j < trace.ids.size(); ++j) {
        if (trace.workers[j] != trace.workers[i]) continue;
        if (trace.dispatches[j] != trace.finishes[i]) continue;
        if (trace.arrivals[j] > trace.dispatches[i] &&
            trace.arrivals[j] < trace.finishes[i]) {
          joined_mid_step = true;
          break;
        }
      }
    }
    EXPECT_TRUE(joined_mid_step);

    // Bit-for-bit replay at every thread count: the whole schedule, the
    // outputs, and the occupancy timeline.
    if (threads == 1) {
      first = std::move(trace);
    } else {
      EXPECT_EQ(trace.ids, first.ids) << "threads=" << threads;
      EXPECT_EQ(trace.dispatches, first.dispatches) << "threads=" << threads;
      EXPECT_EQ(trace.finishes, first.finishes) << "threads=" << threads;
      EXPECT_EQ(trace.workers, first.workers) << "threads=" << threads;
      EXPECT_EQ(trace.batch_sizes, first.batch_sizes)
          << "threads=" << threads;
      EXPECT_EQ(trace.outputs, first.outputs) << "threads=" << threads;
      EXPECT_EQ(trace.occupancy, first.occupancy) << "threads=" << threads;
    }
  }
  RuntimeConfig::SetThreads(1);
}

// --------------------------------------------------- multi-tenant QoS

/// Hot-tenant overload: t0 offers 8x the load of t1..t3; per-tenant
/// quotas cap everyone at 1500 rps against ~8000 rps capacity.
TenantedLoadReport RunHotTenantMix(bool fair) {
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.batch.max_batch = 4;
  config.default_deadline_ms = 5.0;
  config.cost.fixed_ms = 0.2;
  config.cost.per_example_ms = 0.2;  // step(4) = 1 ms -> ~8 req/ms fleet
  config.scheduler.use_slots = true;
  config.scheduler.fair_queueing = fair;
  config.scheduler.enforce_quotas = fair;
  config.scheduler.default_policy.rate_rps = 1500.0;
  config.scheduler.default_policy.burst = 4.0;
  auto created = Server::Create(&registry, config);
  EXPECT_TRUE(created.ok());
  std::unique_ptr<Server> server = std::move(created).value();
  EXPECT_TRUE(server->Publish("m", MakeNet(71), {16}).ok());

  TenantedLoadConfig load;
  load.seed = 11;
  load.requests = 600;
  load.rate_rps = 11'000.0;  // hot tenant ~8000, cold tenants ~1000 each
  load.deadline_ms = 5.0;
  load.model = "m";
  load.mix = HotTenantMix(4, 8.0);
  return RunTenantedOpenLoop(server.get(), load);
}

TEST(SlotServerTest, WeightedFairnessBoundsHotTenantSkew) {
  // With DWFQ + quotas on, the hot tenant's excess converts into sheds
  // charged to itself: per-tenant goodput stays within a small ratio.
  const TenantedLoadReport fair = RunHotTenantMix(/*fair=*/true);
  ASSERT_EQ(fair.by_tenant.size(), 4u);
  for (const auto& [tenant, per] : fair.by_tenant) {
    EXPECT_GT(per.completed - per.deadline_missed, 0) << tenant;
  }
  EXPECT_LE(fair.max_min_goodput_ratio, 2.0)
      << "WFQ + quotas must bound tenant goodput skew";

  // Control: with fair queueing and quotas off, service follows arrival
  // share and the hot tenant starves the rest (~8:1).
  const TenantedLoadReport fifo = RunHotTenantMix(/*fair=*/false);
  EXPECT_GT(fifo.max_min_goodput_ratio, 3.0)
      << "FIFO control should show the starvation WFQ prevents";
  EXPECT_GT(fair.max_min_goodput_ratio, 0.0);
}

TEST(SlotServerTest, TenantStatsAndMetricsAccountEveryRequest) {
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 2;
  config.batch.max_batch = 4;
  config.default_deadline_ms = 1e6;
  config.scheduler.use_slots = true;
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Server> server = std::move(created).value();
  ASSERT_TRUE(server->Publish("m", MakeNet(81), {16}).ok());

  TenantedLoadConfig load;
  load.seed = 13;
  load.requests = 120;
  load.rate_rps = 5'000.0;
  load.model = "m";
  load.mix = BalancedTenantMix(3);
  const TenantedLoadReport report = RunTenantedOpenLoop(server.get(), load);

  // The server's per-tenant accounting matches the loadgen's exactly.
  const auto& stats = server->tenant_stats();
  ASSERT_EQ(stats.size(), 3u);
  int64_t offered = 0;
  MetricsReport metrics = server->metrics();
  for (const auto& [tenant, ts] : stats) {
    const auto it = report.by_tenant.find(tenant);
    ASSERT_NE(it, report.by_tenant.end()) << tenant;
    EXPECT_EQ(ts.offered, it->second.offered) << tenant;
    EXPECT_EQ(ts.admitted, it->second.admitted) << tenant;
    EXPECT_EQ(ts.completed, it->second.completed) << tenant;
    EXPECT_EQ(ts.deadline_missed, it->second.deadline_missed) << tenant;
    EXPECT_EQ(ts.latency.count(), it->second.latency.count()) << tenant;
    offered += ts.offered;
    // The structured per-tenant keys flow through metrics().
    EXPECT_EQ(metrics.Get("serve.tenant." + tenant + ".offered"),
              static_cast<double>(ts.offered))
        << tenant;
    EXPECT_EQ(metrics.Get("serve.tenant." + tenant + ".completed"),
              static_cast<double>(ts.completed))
        << tenant;
  }
  EXPECT_EQ(offered, 120);
  // Completions carry the tenant id.
  for (const Server::Completion& c : server->completions()) {
    EXPECT_TRUE(stats.count(c.tenant) == 1) << c.tenant;
  }
}

// ----------------------------------- critical-path completion contract

/// Standalone-server path record from a completion: no network hops, so
/// send == admit and deliver == finish.
obs::RequestPathRecord RecordFromCompletion(const Server::Completion& c) {
  obs::RequestPathRecord rec;
  rec.rid = c.rid;
  rec.tenant = c.tenant;
  rec.slot = c.slot;
  rec.send_ns = obs::SimNs(c.arrival_ms);
  rec.admit_ns = obs::SimNs(c.arrival_ms);
  rec.quota_open_ns = obs::SimNs(c.quota_open_ms);
  rec.dispatch_ns = obs::SimNs(c.dispatch_ms);
  rec.finish_ns = obs::SimNs(c.finish_ms);
  rec.deliver_ns = obs::SimNs(c.finish_ms);
  rec.deadline_ok = !c.deadline_missed;
  return rec;
}

TEST(SlotServerTest, CompletionBoundariesDecomposeBitwise) {
  RuntimeConfig::SetThreads(1);
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 64;
  config.batch.max_batch = 2;
  config.default_deadline_ms = 1e6;
  config.cost.fixed_ms = 1.0;
  config.cost.per_example_ms = 0.25;
  config.scheduler.use_slots = true;
  config.scheduler.enforce_quotas = true;
  // 1 token per 2 ms against 0.2 ms arrival spacing: the token bucket
  // must delay most of the burst, making quota_open > arrival.
  config.scheduler.default_policy.rate_rps = 500.0;
  config.scheduler.default_policy.burst = 1.0;
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Server> server = std::move(created).value();
  ASSERT_TRUE(server->Publish("m", MakeNet(101), {16}).ok());

  Rng rng(102);
  Tensor x({16});
  constexpr int kRequests = 20;
  for (int i = 0; i < kRequests; ++i) {
    x.FillGaussian(&rng, 1.0f);
    // A RequestTrace rekeys the lifecycle under the caller's rid.
    const obs::RequestTrace rtrace{500 + i, 0};
    ASSERT_EQ(server
                  ->Submit("m", x, static_cast<double>(i) * 0.2,
                           /*deadline_budget_ms=*/0.0, "a", &rtrace)
                  .outcome,
              Server::Outcome::kAdmitted);
  }
  server->Drain();

  const std::vector<Server::Completion>& done = server->completions();
  ASSERT_EQ(done.size(), static_cast<size_t>(kRequests));
  std::vector<int64_t> rids;
  int64_t quota_delayed = 0;
  for (const Server::Completion& c : done) {
    rids.push_back(c.rid);
    // The quota boundary is clamped into [arrival, dispatch].
    EXPECT_GE(c.quota_open_ms, c.arrival_ms);
    EXPECT_LE(c.quota_open_ms, c.dispatch_ms);
    EXPECT_GE(c.slot, 0) << "slot mode must stamp the lane";
    const obs::RequestPathRecord rec = RecordFromCompletion(c);
    const obs::PathComponents comp = obs::DecomposePath(rec);
    // The decomposition sums bitwise to the served latency, with the
    // network components exactly zero for a standalone server.
    EXPECT_EQ(comp.total_ns(), rec.finish_ns - rec.send_ns);
    EXPECT_EQ(comp[obs::PathComponent::kRouteHop], 0);
    EXPECT_EQ(comp[obs::PathComponent::kAdmission], 0);
    EXPECT_EQ(comp[obs::PathComponent::kReturnHop], 0);
    EXPECT_EQ(comp[obs::PathComponent::kQuotaDelay] +
                  comp[obs::PathComponent::kSlotWait] +
                  comp[obs::PathComponent::kExecute],
              obs::SimNs(c.finish_ms) - obs::SimNs(c.arrival_ms));
    if (comp[obs::PathComponent::kQuotaDelay] > 0) ++quota_delayed;
  }
  EXPECT_GT(quota_delayed, kRequests / 2)
      << "the overloaded bucket should show up as quota delay, not slot "
         "wait";
  std::sort(rids.begin(), rids.end());
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(rids[static_cast<size_t>(i)], 500 + i)
        << "completions must carry the fleet rid from RequestTrace";
  }
}

TEST(ServerTest, LegacyModeChargesQueueWaitToSlotWait) {
  RuntimeConfig::SetThreads(1);
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 32;
  config.batch.max_batch = 4;
  config.default_deadline_ms = 1e6;
  config.cost.fixed_ms = 1.0;
  config.cost.per_example_ms = 0.25;
  auto created = Server::Create(&registry, config);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Server> server = std::move(created).value();
  ASSERT_TRUE(server->Publish("m", MakeNet(103), {16}).ok());
  Rng rng(104);
  Tensor x({16});
  for (int i = 0; i < 8; ++i) {
    x.FillGaussian(&rng, 1.0f);
    ASSERT_EQ(server->Submit("m", x, static_cast<double>(i) * 0.1).outcome,
              Server::Outcome::kAdmitted);
  }
  server->Drain();
  for (const Server::Completion& c : server->completions()) {
    EXPECT_EQ(c.slot, -1);
    EXPECT_EQ(c.rid, c.id) << "no RequestTrace: rid falls back to the id";
    // Legacy batching has no quota stage: the whole queue wait is slot
    // wait, so quota_open degenerates to the arrival.
    EXPECT_DOUBLE_EQ(c.quota_open_ms, c.arrival_ms);
    const obs::PathComponents comp =
        obs::DecomposePath(RecordFromCompletion(c));
    EXPECT_EQ(comp[obs::PathComponent::kQuotaDelay], 0);
    EXPECT_EQ(comp.total_ns(),
              obs::SimNs(c.finish_ms) - obs::SimNs(c.arrival_ms));
  }
}

TEST(LoadGenTest, TenantedOpenLoopReplaysBitForBit) {
  const std::vector<TenantShare> mix = HotTenantMix(3, 4.0);
  const std::vector<std::string> a = AssignTenants(mix, 17, 3000);
  const std::vector<std::string> b = AssignTenants(mix, 17, 3000);
  EXPECT_EQ(a, b);
  std::map<std::string, int64_t> counts;
  for (const std::string& t : a) ++counts[t];
  // Shares 4:1:1 over 3000 draws: the hot tenant gets about 2000.
  EXPECT_GT(counts["t0"], 1800);
  EXPECT_LT(counts["t0"], 2200);
  EXPECT_GT(counts["t1"], 350);
  EXPECT_GT(counts["t2"], 350);

  const auto run = [&]() {
    ModelRegistry registry;
    ServerConfig config;
    config.workers = 2;
    config.batch.max_batch = 4;
    config.scheduler.use_slots = true;
    auto created = Server::Create(&registry, config);
    EXPECT_TRUE(created.ok());
    std::unique_ptr<Server> server = std::move(created).value();
    EXPECT_TRUE(server->Publish("m", MakeNet(91), {16}).ok());
    TenantedLoadConfig load;
    load.seed = 19;
    load.requests = 200;
    load.rate_rps = 60'000.0;  // hot enough that some requests shed
    load.deadline_ms = 2.0;
    load.model = "m";
    load.mix = mix;
    return RunTenantedOpenLoop(server.get(), load);
  };
  const TenantedLoadReport r1 = run();
  const TenantedLoadReport r2 = run();

  EXPECT_EQ(r1.total.offered, 200);
  EXPECT_EQ(r1.total.offered, r1.total.admitted + r1.total.shed);
  EXPECT_EQ(r1.total.completed, r1.total.admitted);
  EXPECT_EQ(r1.total.admitted, r2.total.admitted);
  EXPECT_EQ(r1.total.shed, r2.total.shed);
  EXPECT_EQ(r1.total.duration_ms, r2.total.duration_ms);
  EXPECT_EQ(r1.max_min_goodput_ratio, r2.max_min_goodput_ratio);
  ASSERT_EQ(r1.by_tenant.size(), r2.by_tenant.size());
  for (const auto& [tenant, per] : r1.by_tenant) {
    const auto it = r2.by_tenant.find(tenant);
    ASSERT_NE(it, r2.by_tenant.end()) << tenant;
    EXPECT_EQ(per.offered, it->second.offered) << tenant;
    EXPECT_EQ(per.admitted, it->second.admitted) << tenant;
    EXPECT_EQ(per.completed, it->second.completed) << tenant;
    EXPECT_EQ(per.deadline_missed, it->second.deadline_missed) << tenant;
    EXPECT_EQ(per.latency.sum_ms(), it->second.latency.sum_ms()) << tenant;
  }
}

}  // namespace
}  // namespace dlsys
