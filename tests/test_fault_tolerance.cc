#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/data/synthetic.h"
#include "src/distributed/cluster.h"
#include "src/distributed/faults.h"
#include "src/distributed/network_model.h"
#include "src/nn/train.h"

namespace dlsys {
namespace {

// ------------------------------------------------------- FaultInjector

TEST(FaultInjectorTest, ReplaysBitForBitFromSeed) {
  FaultPlan plan;
  plan.seed = 99;
  plan.crash_prob = 0.05;
  plan.drop_prob = 0.2;
  FaultInjector a(plan, 8);
  FaultInjector b(plan, 8);
  for (int64_t w = 0; w < 8; ++w) {
    for (int64_t r = 0; r < 50; ++r) {
      EXPECT_EQ(a.CrashesAt(w, r, 0), b.CrashesAt(w, r, 0));
      EXPECT_EQ(a.FailedAttempts(w, r, 0, 5), b.FailedAttempts(w, r, 0, 5));
    }
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiffer) {
  FaultPlan p1, p2;
  p1.seed = 1;
  p2.seed = 2;
  p1.crash_prob = p2.crash_prob = 0.1;
  FaultInjector a(p1, 4);
  FaultInjector b(p2, 4);
  int differing = 0;
  for (int64_t w = 0; w < 4; ++w) {
    for (int64_t r = 0; r < 200; ++r) {
      if (a.CrashesAt(w, r, 0) != b.CrashesAt(w, r, 0)) ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, ScheduledCrashFiresOnceThenConsumed) {
  FaultPlan plan;
  plan.crashes = {{7, 2}};
  FaultInjector inj(plan, 4);
  EXPECT_FALSE(inj.CrashesAt(2, 6, 0));
  EXPECT_TRUE(inj.CrashesAt(2, 7, 0));
  EXPECT_FALSE(inj.CrashesAt(1, 7, 0));
  inj.ConsumeCrash(2, 7);
  EXPECT_FALSE(inj.CrashesAt(2, 7, 0)) << "consumed events must not refire";
}

TEST(FaultInjectorTest, StragglerSlowdownAndDefaults) {
  FaultPlan plan;
  plan.stragglers = {{1, 4.0}};
  FaultInjector inj(plan, 3);
  EXPECT_DOUBLE_EQ(inj.Slowdown(0), 1.0);
  EXPECT_DOUBLE_EQ(inj.Slowdown(1), 4.0);
  EXPECT_DOUBLE_EQ(inj.Slowdown(2), 1.0);
}

TEST(FaultInjectorTest, FailedAttemptsRespectsCap) {
  FaultPlan plan;
  plan.seed = 3;
  plan.drop_prob = 1.0;  // every attempt drops
  FaultInjector inj(plan, 2);
  EXPECT_EQ(inj.FailedAttempts(0, 0, 0, 5), 5);
  plan.drop_prob = 0.0;
  FaultInjector clean(plan, 2);
  EXPECT_EQ(clean.FailedAttempts(0, 0, 0, 5), 0);
}

TEST(FaultInjectorTest, DrawsAreStableAcrossWorkerCountChanges) {
  // Draws hash (seed, worker, round, ...) only — never the injector's
  // worker count — so a fleet that resizes (autoscaling) keeps every
  // overlapping (worker, round) answer bit-identical. This is what makes
  // chaos schedules independent of how many replica slots exist.
  FaultPlan plan;
  plan.seed = 42;
  plan.crash_prob = 0.08;
  plan.drop_prob = 0.25;
  FaultInjector small(plan, 4);
  FaultInjector large(plan, 16);
  for (int64_t w = 0; w < 4; ++w) {
    for (int64_t r = 0; r < 100; ++r) {
      EXPECT_EQ(small.CrashesAt(w, r, 0), large.CrashesAt(w, r, 0))
          << "w=" << w << " r=" << r;
      EXPECT_EQ(small.CrashesAt(w, r, 3), large.CrashesAt(w, r, 3));
      for (int64_t m = 0; m < 3; ++m) {
        EXPECT_EQ(small.FailedAttempts(w, r, m, 5),
                  large.FailedAttempts(w, r, m, 5));
      }
    }
  }
}

TEST(FaultInjectorTest, GenerationsDecorrelateProbabilisticDraws) {
  FaultPlan plan;
  plan.seed = 5;
  plan.crash_prob = 0.1;
  FaultInjector inj(plan, 4);
  int differing = 0;
  for (int64_t w = 0; w < 4; ++w) {
    for (int64_t r = 0; r < 200; ++r) {
      if (inj.CrashesAt(w, r, 0) != inj.CrashesAt(w, r, 1)) ++differing;
    }
  }
  // A restarted incarnation must not deterministically re-crash at the
  // same (worker, round) points.
  EXPECT_GT(differing, 0);
}

TEST(FaultPlanTest, SerializeParseRoundTripsBitwise) {
  FaultPlan plan;
  plan.seed = 0xDEADBEEFCAFEULL;
  plan.crashes = {{3, 1}, {17, 0}};
  plan.crash_prob = 0.013;
  // An awkward float on purpose: hex-float serialization must round-trip
  // it bit-for-bit, not to six decimal places.
  plan.drop_prob = 0.1 + 0.2;
  plan.stragglers = {{2, 3.7}};

  auto parsed = ParseFaultPlan(SerializeFaultPlan(plan));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const FaultPlan& back = parsed.value();
  EXPECT_EQ(back.seed, plan.seed);
  ASSERT_EQ(back.crashes.size(), 2u);
  EXPECT_EQ(back.crashes[0].round, 3);
  EXPECT_EQ(back.crashes[0].worker, 1);
  EXPECT_EQ(back.crashes[1].round, 17);
  EXPECT_EQ(back.crashes[1].worker, 0);
  EXPECT_EQ(back.crash_prob, plan.crash_prob);  // exact, not approximate
  EXPECT_EQ(back.drop_prob, plan.drop_prob);
  ASSERT_EQ(back.stragglers.size(), 1u);
  EXPECT_EQ(back.stragglers[0].worker, 2);
  EXPECT_EQ(back.stragglers[0].slowdown, plan.stragglers[0].slowdown);

  // Serialization is canonical: a second round trip emits the same text.
  EXPECT_EQ(SerializeFaultPlan(back), SerializeFaultPlan(plan));
}

TEST(FaultPlanTest, InjectorRebuiltFromSerializedPlanReplaysMidRun) {
  // The checkpoint/restore property: serialize the plan mid-run, rebuild
  // an injector on the other side, consume the already-fired crashes, and
  // every subsequent answer matches the uninterrupted original.
  FaultPlan plan;
  plan.seed = 77;
  plan.crashes = {{5, 1}, {40, 2}};
  plan.crash_prob = 0.05;
  plan.drop_prob = 0.15;
  FaultInjector original(plan, 4);
  // Run the original forward to round 20, consuming the round-5 crash.
  EXPECT_TRUE(original.CrashesAt(1, 5, 0));
  original.ConsumeCrash(1, 5);

  auto restored_plan = ParseFaultPlan(SerializeFaultPlan(plan));
  ASSERT_TRUE(restored_plan.ok());
  FaultInjector restored(restored_plan.value(), 4);
  restored.ConsumeCrash(1, 5);  // replay the consumed-crash log

  for (int64_t w = 0; w < 4; ++w) {
    for (int64_t r = 20; r < 60; ++r) {
      EXPECT_EQ(original.CrashesAt(w, r, 1), restored.CrashesAt(w, r, 1))
          << "w=" << w << " r=" << r;
      EXPECT_EQ(original.FailedAttempts(w, r, 0, 5),
                restored.FailedAttempts(w, r, 0, 5));
      EXPECT_DOUBLE_EQ(original.Slowdown(w), restored.Slowdown(w));
    }
  }
  // The unconsumed scheduled crash still fires exactly once on both.
  EXPECT_TRUE(original.CrashesAt(2, 40, 1));
  EXPECT_TRUE(restored.CrashesAt(2, 40, 1));
}

TEST(FaultPlanTest, ParseRejectsMalformedText) {
  EXPECT_FALSE(ParseFaultPlan("warp_drive 9").ok());
  EXPECT_FALSE(ParseFaultPlan("seed").ok());
  EXPECT_FALSE(ParseFaultPlan("crash 3").ok());
  EXPECT_FALSE(ParseFaultPlan("crash_prob banana").ok());
  // Empty text is a valid (empty) plan.
  auto empty = ParseFaultPlan("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().Empty());
}

TEST(FaultPlanTest, ValidationRejectsBadPlans) {
  FaultPlan plan;
  plan.crash_prob = 1.5;
  EXPECT_EQ(ValidateFaultPlan(plan, 4).code(),
            StatusCode::kInvalidArgument);
  plan = FaultPlan{};
  plan.drop_prob = -0.1;
  EXPECT_FALSE(ValidateFaultPlan(plan, 4).ok());
  plan = FaultPlan{};
  plan.crashes = {{3, 9}};  // worker out of range
  EXPECT_FALSE(ValidateFaultPlan(plan, 4).ok());
  plan = FaultPlan{};
  plan.stragglers = {{0, 0.5}};  // slowdown < 1
  EXPECT_FALSE(ValidateFaultPlan(plan, 4).ok());
  plan = FaultPlan{};
  plan.crashes = {{-1, 0}};
  EXPECT_FALSE(ValidateFaultPlan(plan, 4).ok());
}

// -------------------------------------------------- NetworkModel retries

TEST(NetworkRetryTest, PenaltyIsZeroWithoutDrops) {
  NetworkModel net;
  EXPECT_DOUBLE_EQ(net.RetryPenaltySeconds(0), 0.0);
  EXPECT_DOUBLE_EQ(net.TransferWithRetries(1000, 0),
                   net.TransferSeconds(1000));
}

TEST(NetworkRetryTest, BackoffDoublesPerAttempt) {
  NetworkModel net;
  net.timeout_seconds = 0.01;
  net.backoff_base_seconds = 0.001;
  // attempt 1: 0.01 + 0.001; attempt 2 adds 0.01 + 0.002.
  EXPECT_NEAR(net.RetryPenaltySeconds(1), 0.011, 1e-12);
  EXPECT_NEAR(net.RetryPenaltySeconds(2), 0.023, 1e-12);
  EXPECT_LT(net.RetryPenaltySeconds(2), net.RetryPenaltySeconds(3));
}

// ------------------------------------------------ cluster config checks

TEST(ClusterValidationTest, RejectsInvalidConfigs) {
  ClusterConfig config;
  config.rounds = 0;
  EXPECT_EQ(ValidateClusterConfig(config).code(),
            StatusCode::kInvalidArgument);
  config = ClusterConfig{};
  config.batch_size = -1;
  EXPECT_FALSE(ValidateClusterConfig(config).ok());
  config = ClusterConfig{};
  config.lr = 0.0;
  EXPECT_FALSE(ValidateClusterConfig(config).ok());
  config = ClusterConfig{};
  config.recovery = RecoveryPolicy::kRestartFromCheckpoint;
  EXPECT_FALSE(ValidateClusterConfig(config).ok())
      << "restart policy needs checkpoint_interval > 0";
  config.checkpoint_interval = 4;
  EXPECT_FALSE(ValidateClusterConfig(config).ok())
      << "checkpointing needs a checkpoint_dir";
  config.checkpoint_dir = "/tmp";
  EXPECT_TRUE(ValidateClusterConfig(config).ok());
  config = ClusterConfig{};
  config.faults.crash_prob = 2.0;
  EXPECT_FALSE(ValidateClusterConfig(config).ok());
}

// ---------------------------------------------------- recovery policies

Dataset FaultData(uint64_t seed) {
  Rng rng(seed);
  return MakeGaussianBlobs(800, 8, 4, 3.0, &rng);
}

Sequential FaultArch(uint64_t seed) {
  Sequential net = MakeMlp(8, {16}, 4);
  Rng rng(seed);
  net.Init(&rng);
  return net;
}

TEST(RecoveryTest, CrashWithoutPolicyIsFatal) {
  Dataset data = FaultData(1);
  Sequential arch = FaultArch(2);
  ClusterConfig config;
  config.workers = 4;
  config.rounds = 20;
  config.faults.crashes = {{5, 1}};
  auto result = TrainOnCluster(arch, data, config, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(RecoveryTest, RestartFromCheckpointMatchesFaultFreeBitwise) {
  Dataset data = FaultData(3);
  Sequential arch = FaultArch(4);
  ClusterConfig config;
  config.workers = 4;
  config.rounds = 30;
  auto fault_free = TrainOnCluster(arch, data, config, nullptr);
  ASSERT_TRUE(fault_free.ok());

  ClusterConfig faulty = config;
  faulty.faults.crashes = {{13, 2}};
  faulty.recovery = RecoveryPolicy::kRestartFromCheckpoint;
  faulty.checkpoint_interval = 5;
  faulty.checkpoint_dir = ::testing::TempDir();
  auto recovered = TrainOnCluster(arch, data, faulty, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // Rollback + replay reproduces the fault-free trajectory exactly.
  EXPECT_EQ(recovered->model.GetParameterVector(),
            fault_free->model.GetParameterVector());
  EXPECT_DOUBLE_EQ(recovered->report.Get(fault_metric::kCrashes), 1.0);
  EXPECT_DOUBLE_EQ(recovered->report.Get(fault_metric::kRollbacks), 1.0);
  // Crash at round 13 with checkpoints every 5 -> rolls back to round 10.
  EXPECT_DOUBLE_EQ(recovered->report.Get(fault_metric::kWastedRounds), 3.0);
  EXPECT_GT(recovered->report.Get(fault_metric::kRecoverySeconds), 0.0);
  EXPECT_GT(recovered->report.Get(fault_metric::kCheckpointCount), 0.0);
  EXPECT_GT(recovered->report.Get(metric::kTrainSeconds),
            fault_free->report.Get(metric::kTrainSeconds) -
                fault_free->report.Get("resource.compute_seconds"));
}

TEST(RecoveryTest, RestartReplaySameSeedIsDeterministic) {
  // Acceptance criterion: the same FaultPlan seed replayed twice must
  // produce bitwise-identical final parameters, crashes included.
  Dataset data = FaultData(5);
  Sequential arch = FaultArch(6);
  ClusterConfig config;
  config.workers = 4;
  config.rounds = 25;
  config.recovery = RecoveryPolicy::kRestartFromCheckpoint;
  config.checkpoint_interval = 4;
  config.checkpoint_dir = ::testing::TempDir();
  config.faults.seed = 77;
  config.faults.crash_prob = 0.01;
  config.faults.drop_prob = 0.05;
  config.faults.crashes = {{9, 0}};
  auto first = TrainOnCluster(arch, data, config, nullptr);
  auto second = TrainOnCluster(arch, data, config, nullptr);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->model.GetParameterVector(),
            second->model.GetParameterVector());
  EXPECT_DOUBLE_EQ(first->report.Get(fault_metric::kCrashes),
                   second->report.Get(fault_metric::kCrashes));
  EXPECT_DOUBLE_EQ(first->report.Get(fault_metric::kDroppedMessages),
                   second->report.Get(fault_metric::kDroppedMessages));
}

TEST(RecoveryTest, RestartWorksUnderLocalSgd) {
  Dataset data = FaultData(7);
  Sequential arch = FaultArch(8);
  ClusterConfig config;
  config.workers = 4;
  config.rounds = 64;
  config.strategy = SyncStrategy::kLocalSgd;
  config.local_steps = 8;
  auto fault_free = TrainOnCluster(arch, data, config, nullptr);
  ASSERT_TRUE(fault_free.ok());
  ClusterConfig faulty = config;
  faulty.faults.crashes = {{5, 3}};  // averaging-block granularity
  faulty.recovery = RecoveryPolicy::kRestartFromCheckpoint;
  faulty.checkpoint_interval = 2;
  faulty.checkpoint_dir = ::testing::TempDir();
  auto recovered = TrainOnCluster(arch, data, faulty, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->model.GetParameterVector(),
            fault_free->model.GetParameterVector());
  EXPECT_DOUBLE_EQ(recovered->report.Get(fault_metric::kWastedRounds), 1.0);
}

TEST(RecoveryTest, DropAndContinueShrinksClusterAndStillLearns) {
  Dataset data = FaultData(9);
  auto split = Split(data, 0.8);
  Sequential arch = FaultArch(10);
  ClusterConfig config;
  config.workers = 4;
  config.rounds = 150;
  config.recovery = RecoveryPolicy::kDropAndContinue;
  config.faults.crashes = {{20, 1}, {60, 3}};
  auto result = TrainOnCluster(arch, split.train, config, nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->report.Get(fault_metric::kLiveWorkers), 2.0);
  EXPECT_DOUBLE_EQ(result->report.Get(fault_metric::kCrashes), 2.0);
  EXPECT_DOUBLE_EQ(result->report.Get(fault_metric::kRollbacks), 0.0);
  Sequential model = result->model.Clone();
  EXPECT_GT(Evaluate(&model, split.test).accuracy, 0.85)
      << "survivors inherit the dead workers' data and keep learning";
}

TEST(RecoveryTest, AllWorkersCrashedIsInternal) {
  Dataset data = FaultData(11);
  Sequential arch = FaultArch(12);
  ClusterConfig config;
  config.workers = 2;
  config.rounds = 20;
  config.recovery = RecoveryPolicy::kDropAndContinue;
  config.faults.crashes = {{3, 0}, {3, 1}};
  auto result = TrainOnCluster(arch, data, config, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(RecoveryTest, SkipStaleExcludesStragglerAndCutsBarrierTime) {
  Dataset data = FaultData(13);
  auto split = Split(data, 0.8);
  Sequential arch = FaultArch(14);
  ClusterConfig config;
  config.workers = 4;
  config.rounds = 100;
  config.step_seconds = 1e-3;
  config.faults.stragglers = {{2, 100.0}};  // 0.1 s per round, way late

  ClusterConfig wait_config = config;  // kNone: barrier waits for it
  auto waited = TrainOnCluster(arch, split.train, wait_config, nullptr);
  ASSERT_TRUE(waited.ok());
  EXPECT_DOUBLE_EQ(waited->report.Get(fault_metric::kExcludedWorkerRounds),
                   0.0);

  ClusterConfig skip_config = config;
  skip_config.recovery = RecoveryPolicy::kSkipStale;
  skip_config.stale_timeout_seconds = 0.01;
  auto skipped = TrainOnCluster(arch, split.train, skip_config, nullptr);
  ASSERT_TRUE(skipped.ok());
  EXPECT_DOUBLE_EQ(
      skipped->report.Get(fault_metric::kExcludedWorkerRounds), 100.0);
  EXPECT_LT(skipped->report.Get(fault_metric::kStragglerSeconds),
            waited->report.Get(fault_metric::kStragglerSeconds))
      << "cutting the straggler must shrink simulated barrier time";
  Sequential model = skipped->model.Clone();
  EXPECT_GT(Evaluate(&model, split.test).accuracy, 0.85)
      << "three fresh gradients per round still converge";
}

TEST(RecoveryTest, DroppedMessagesCostRetransmitTime) {
  Dataset data = FaultData(15);
  Sequential arch = FaultArch(16);
  ClusterConfig config;
  config.workers = 4;
  config.rounds = 40;
  auto clean = TrainOnCluster(arch, data, config, nullptr);
  ASSERT_TRUE(clean.ok());
  EXPECT_DOUBLE_EQ(clean->report.Get(fault_metric::kDroppedMessages), 0.0);
  EXPECT_DOUBLE_EQ(clean->report.Get(fault_metric::kStragglerSeconds), 0.0);

  ClusterConfig lossy = config;
  lossy.faults.seed = 21;
  lossy.faults.drop_prob = 0.3;
  auto dropped = TrainOnCluster(arch, data, lossy, nullptr);
  ASSERT_TRUE(dropped.ok());
  EXPECT_GT(dropped->report.Get(fault_metric::kDroppedMessages), 0.0);
  EXPECT_GT(dropped->report.Get(fault_metric::kStragglerSeconds), 0.0)
      << "lost messages must cost retransmit time, not silently succeed";
  // Losses delay the barrier but never change the math.
  EXPECT_EQ(dropped->model.GetParameterVector(),
            clean->model.GetParameterVector());
}

TEST(RecoveryTest, CheckpointCadenceAndCost) {
  Dataset data = FaultData(17);
  Sequential arch = FaultArch(18);
  ClusterConfig config;
  config.workers = 2;
  config.rounds = 20;
  config.checkpoint_interval = 5;
  config.checkpoint_dir = ::testing::TempDir();
  auto result = TrainOnCluster(arch, data, config, nullptr);
  ASSERT_TRUE(result.ok());
  // Initial checkpoint at round 0 plus rounds 5, 10, 15 (20 = end, skipped).
  EXPECT_DOUBLE_EQ(result->report.Get(fault_metric::kCheckpointCount), 4.0);
  EXPECT_GT(result->report.Get(fault_metric::kCheckpointSeconds), 0.0);
}

TEST(RecoveryTest, BadCheckpointDirSurfacesIOError) {
  Dataset data = FaultData(19);
  Sequential arch = FaultArch(20);
  ClusterConfig config;
  config.workers = 2;
  config.rounds = 10;
  config.checkpoint_interval = 2;
  config.checkpoint_dir = "/nonexistent/dir/for/dlsys";
  auto result = TrainOnCluster(arch, data, config, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace dlsys
