// Coverage of smaller public-API surfaces not exercised elsewhere:
// FLOP reporting, inference-mode batchnorm, dropout cloning, summaries,
// and ensemble inference bookkeeping.

#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/ensemble/ensemble.h"
#include "src/nn/conv.h"
#include "src/nn/layers.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"
#include "src/tensor/ops.h"

namespace dlsys {
namespace {

TEST(FlopsTest, DenseFlopsFormula) {
  Dense dense(10, 20);
  EXPECT_EQ(dense.FlopsPerExample(), 2 * 10 * 20);
}

TEST(FlopsTest, ConvFlopsTrackLastForwardExtent) {
  Conv2D conv(2, 4, 3, 1, 1);
  EXPECT_EQ(conv.FlopsPerExample(), 0) << "no forward yet";
  Rng rng(1);
  conv.Init(&rng);
  Tensor x({1, 2, 8, 8});
  conv.Forward(x, CacheMode::kNoCache);
  // 2 * out_ch * Ho * Wo * in_ch * k * k = 2*4*8*8*2*9.
  EXPECT_EQ(conv.FlopsPerExample(), 2 * 4 * 8 * 8 * 2 * 9);
}

TEST(FlopsTest, SequentialSumsLayers) {
  Sequential net = MakeMlp(4, {8}, 2);
  EXPECT_EQ(net.FlopsPerExample(), 2 * 4 * 8 + 2 * 8 * 2);
}

TEST(BatchNormTest, InferenceUsesRunningStats) {
  BatchNorm1d bn(3, /*momentum=*/0.0);  // running stats = last batch
  Rng rng(2);
  bn.Init(&rng);
  Tensor x({64, 3});
  x.FillGaussian(&rng, 2.0f);
  for (int64_t i = 0; i < x.size(); ++i) x[i] += 5.0f;  // shifted input
  bn.Forward(x, CacheMode::kCache);  // sets running stats to batch stats
  Tensor y = bn.Forward(x, CacheMode::kNoCache);
  // With momentum 0 the running stats equal the batch stats, so the
  // inference output is standardized: near-zero column means.
  for (int64_t j = 0; j < 3; ++j) {
    double mean = 0.0;
    for (int64_t i = 0; i < 64; ++i) mean += y[i * 3 + j];
    EXPECT_NEAR(mean / 64.0, 0.0, 0.05);
  }
}

TEST(BatchNormTest, CloneCarriesRunningStats) {
  BatchNorm1d bn(2);
  Rng rng(3);
  bn.Init(&rng);
  Tensor x({32, 2});
  x.FillGaussian(&rng, 1.0f);
  bn.Forward(x, CacheMode::kCache);
  auto clone = bn.Clone();
  Tensor a = bn.Forward(x, CacheMode::kNoCache);
  Tensor b = clone->Forward(x, CacheMode::kNoCache);
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(DropoutTest, CloneReproducesMaskSequence) {
  Dropout a(0.5f, 77);
  auto b_layer = a.Clone();
  Tensor x({8, 8}, 1.0f);
  Tensor ya = a.Forward(x, CacheMode::kCache);
  Tensor yb = b_layer->Forward(x, CacheMode::kCache);
  for (int64_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(SummaryTest, ListsEveryLayer) {
  Sequential net = MakeMlp(4, {8, 8}, 2);
  const std::string summary = net.Summary();
  EXPECT_NE(summary.find("dense(4->8)"), std::string::npos);
  EXPECT_NE(summary.find("relu"), std::string::npos);
  EXPECT_NE(summary.find("dense(8->2)"), std::string::npos);
}

TEST(TensorToStringTest, TruncatesLongTensors) {
  Tensor t({100}, 1.0f);
  const std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("[100]"), std::string::npos);
}

TEST(EnsembleInferenceTest, ProbabilitiesAreNormalized) {
  Rng rng(5);
  Dataset data = MakeGaussianBlobs(200, 4, 3, 3.0, &rng);
  MemberBuilder builder = [](int64_t) { return MakeMlp(4, {8}, 3); };
  TrainConfig tc;
  tc.epochs = 3;
  auto run = TrainFullEnsemble(builder, 3, data, tc, 0.05, 7);
  ASSERT_TRUE(run.ok());
  auto& e = const_cast<Ensemble&>(run->ensemble);
  Tensor probs = e.PredictProbs(data.x);
  for (int64_t i = 0; i < 10; ++i) {
    double row = 0.0;
    for (int64_t c = 0; c < 3; ++c) row += probs.at(i, c);
    EXPECT_NEAR(row, 1.0, 1e-5);
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_GE(probs.at(i, c), 0.0f);
    }
  }
  EXPECT_GT(e.MeasureInferenceSeconds(data), 0.0);
  EXPECT_EQ(e.ModelBytes(), 3 * e.member(0).ModelBytes());
}

TEST(MaxPoolTest, RejectsWindowLargerThanInput) {
  MaxPool2D pool(4);
  Tensor x({1, 1, 2, 2});
  EXPECT_DEATH(pool.Forward(x, CacheMode::kNoCache), "window");
}

TEST(DenseTest, RejectsWrongInputWidth) {
  Dense dense(4, 2);
  Rng rng(6);
  dense.Init(&rng);
  Tensor x({2, 5});
  EXPECT_DEATH(dense.Forward(x, CacheMode::kNoCache), "shape");
}

}  // namespace
}  // namespace dlsys
