#include <gtest/gtest.h>

#include <cmath>

#include "src/data/synthetic.h"
#include "src/memsched/checkpoint.h"
#include "src/memsched/offload.h"
#include "src/nn/layers.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace dlsys {
namespace {

Sequential DeepMlp(int64_t depth, int64_t width) {
  Sequential net;
  int64_t prev = 8;
  for (int64_t i = 0; i < depth; ++i) {
    net.Emplace<Dense>(prev, width);
    net.Emplace<ReLU>();
    prev = width;
  }
  net.Emplace<Dense>(prev, 4);
  return net;
}

TEST(CheckpointPlanTest, SqrtNSegmentCount) {
  CheckpointPlan plan = PlanSqrtN(16);
  EXPECT_EQ(plan.NumSegments(), 4);
  EXPECT_EQ(plan.segment_starts[0], 0);
  CheckpointPlan one = PlanSqrtN(1);
  EXPECT_EQ(one.NumSegments(), 1);
}

TEST(CheckpointPlanTest, PredictedPeakFallsWithMoreSegments) {
  std::vector<LayerMemCost> costs(16);
  for (auto& c : costs) {
    c.cached_bytes = 1000;
    c.input_bytes = 100;
    c.flops = 10;
  }
  CheckpointPlan none = PlanNone(16);
  CheckpointPlan sqrtn = PlanSqrtN(16);
  EXPECT_LT(sqrtn.PredictedPeakBytes(costs), none.PredictedPeakBytes(costs));
  // sqrt plan: 4 boundaries * 100 + 4 * 1000 = 4400 vs 100 + 16000.
  EXPECT_EQ(none.PredictedPeakBytes(costs), 100 + 16000);
  EXPECT_EQ(sqrtn.PredictedPeakBytes(costs), 400 + 4000);
}

TEST(CheckpointPlanTest, RecomputeGrowsWithSegments) {
  std::vector<LayerMemCost> costs(16);
  for (auto& c : costs) c.flops = 10;
  EXPECT_EQ(PlanNone(16).RecomputeFlops(costs), 0);
  // sqrt(16) = 4 segments: the first 3 segments (12 layers) recompute.
  EXPECT_EQ(PlanSqrtN(16).RecomputeFlops(costs), 120);
}

TEST(ProbeTest, MeasuresPositiveCostsAndLeavesNoCaches) {
  Sequential net = DeepMlp(4, 32);
  Rng rng(1);
  net.Init(&rng);
  Tensor x({16, 8});
  x.FillGaussian(&rng, 1.0f);
  auto costs = ProbeLayerCosts(&net, x);
  ASSERT_EQ(static_cast<int64_t>(costs.size()), net.size());
  EXPECT_GT(costs[0].cached_bytes, 0);
  EXPECT_EQ(costs[0].input_bytes, 16 * 8 * 4);
  EXPECT_EQ(net.CachedBytes(), 0);
}

TEST(PlanForBudgetTest, GenerousBudgetGivesOneSegment) {
  std::vector<LayerMemCost> costs(8);
  for (auto& c : costs) {
    c.cached_bytes = 100;
    c.input_bytes = 10;
    c.flops = 1;
  }
  auto plan = PlanForBudget(costs, 1 << 20);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->NumSegments(), 1);
}

TEST(PlanForBudgetTest, TightBudgetGivesMoreSegments) {
  std::vector<LayerMemCost> costs(16);
  for (auto& c : costs) {
    c.cached_bytes = 1000;
    c.input_bytes = 10;
    c.flops = 1;
  }
  auto generous = PlanForBudget(costs, 16160);
  auto tight = PlanForBudget(costs, 4200);
  ASSERT_TRUE(generous.ok() && tight.ok());
  EXPECT_LT(generous->NumSegments(), tight->NumSegments());
  EXPECT_LE(tight->PredictedPeakBytes(costs), 4200);
}

TEST(PlanForBudgetTest, ImpossibleBudgetIsResourceExhausted) {
  std::vector<LayerMemCost> costs(4);
  for (auto& c : costs) {
    c.cached_bytes = 1000;
    c.input_bytes = 500;
  }
  auto plan = PlanForBudget(costs, 100);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kResourceExhausted);
}

TEST(PlanForBudgetTest, FewerSegmentsThanBudgetAllows) {
  // The planner must pick the least-recompute plan meeting the budget,
  // never more segments than needed.
  std::vector<LayerMemCost> costs(8);
  for (auto& c : costs) {
    c.cached_bytes = 100;
    c.input_bytes = 1;
    c.flops = 5;
  }
  auto plan = PlanForBudget(costs, 405);  // 4 boundaries + 400 cache fits
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->NumSegments(), 3);
}

TEST(CheckpointedStepTest, RejectsMalformedPlans) {
  Sequential net = DeepMlp(2, 8);
  Rng rng(2);
  net.Init(&rng);
  Dataset batch = MakeGaussianBlobs(8, 8, 4, 3.0, &rng);
  Sgd opt(0.01);
  CheckpointPlan bad;
  bad.segment_starts = {1};
  EXPECT_FALSE(CheckpointedStep(&net, &opt, batch, bad).ok());
  bad.segment_starts = {0, 3, 2};
  EXPECT_FALSE(CheckpointedStep(&net, &opt, batch, bad).ok());
  bad.segment_starts = {0, 100};
  EXPECT_FALSE(CheckpointedStep(&net, &opt, batch, bad).ok());
}

TEST(CheckpointedStepTest, GradientsMatchPlainTrainingBitForBit) {
  Rng rng(3);
  Dataset batch = MakeGaussianBlobs(32, 8, 4, 3.0, &rng);

  Sequential plain = DeepMlp(6, 16);
  Rng init_rng(7);
  plain.Init(&init_rng);
  Sequential ckpt = plain.Clone();

  Sgd opt_a(0.05);
  Sgd opt_b(0.05);

  // Plain step.
  plain.ZeroGrads();
  Tensor logits = plain.Forward(batch.x, CacheMode::kCache);
  LossGrad lg = SoftmaxCrossEntropy(logits, batch.y);
  plain.Backward(lg.grad);
  opt_a.Step(plain.Params(), plain.Grads());

  // Checkpointed step with sqrt(n) segments.
  auto loss = CheckpointedStep(&ckpt, &opt_b, batch, PlanSqrtN(ckpt.size()));
  ASSERT_TRUE(loss.ok());
  EXPECT_FLOAT_EQ(static_cast<float>(*loss), static_cast<float>(lg.loss));
  EXPECT_EQ(plain.GetParameterVector(), ckpt.GetParameterVector())
      << "recompute must reproduce identical gradients";
}

TEST(CheckpointedStepTest, PeakMemoryDropsWithCheckpointing) {
  Rng rng(4);
  Dataset batch = MakeGaussianBlobs(128, 8, 4, 3.0, &rng);
  Sequential net = DeepMlp(16, 64);
  Rng init_rng(5);
  net.Init(&init_rng);
  Sequential net2 = net.Clone();
  Sgd opt(0.01);

  MemoryTracker::Global().ResetPeak();
  ASSERT_TRUE(CheckpointedStep(&net, &opt, batch, PlanNone(net.size())).ok());
  const int64_t peak_plain = MemoryTracker::Global().peak_bytes();

  MemoryTracker::Global().ResetPeak();
  ASSERT_TRUE(
      CheckpointedStep(&net2, &opt, batch, PlanSqrtN(net2.size())).ok());
  const int64_t peak_ckpt = MemoryTracker::Global().peak_bytes();

  EXPECT_LT(peak_ckpt, peak_plain)
      << "sqrt(n) checkpointing must lower the activation peak";
}

TEST(CheckpointedStepTest, TrainingConvergesUnderCheckpointing) {
  Rng rng(6);
  Dataset data = MakeGaussianBlobs(400, 8, 4, 3.5, &rng);
  auto split = Split(data, 0.8);
  Sequential net = DeepMlp(4, 24);
  net.Init(&rng);
  Sgd opt(0.05);
  CheckpointPlan plan = PlanSqrtN(net.size());
  Rng shuffle(8);
  Dataset shuffled = split.train;
  for (int epoch = 0; epoch < 12; ++epoch) {
    ShuffleDataset(&shuffled, &shuffle);
    for (BatchIterator it(shuffled, 32); !it.Done(); it.Next()) {
      ASSERT_TRUE(CheckpointedStep(&net, &opt, it.Get(), plan).ok());
    }
  }
  EXPECT_GT(Evaluate(&net, split.test).accuracy, 0.85);
}

// ------------------------------------------------------------- Offload

TEST(OffloadTest, NoOffloadNoOverhead) {
  std::vector<LayerMemCost> costs(4);
  for (auto& c : costs) c.cached_bytes = 1000;
  std::vector<bool> none(4, false);
  SlowTier tier;
  OffloadEstimate est = EstimateOffload(costs, none, tier, 0.1);
  EXPECT_EQ(est.device_peak_bytes, 4000);
  EXPECT_EQ(est.transferred_bytes, 0);
  EXPECT_DOUBLE_EQ(est.overhead_seconds, 0.0);
}

TEST(OffloadTest, FullOffloadLeavesStagingBuffer) {
  std::vector<LayerMemCost> costs(4);
  for (size_t i = 0; i < 4; ++i) {
    costs[i].cached_bytes = 1000 * static_cast<int64_t>(i + 1);
  }
  std::vector<bool> all(4, true);
  SlowTier tier{1e9, 0.0};
  OffloadEstimate est = EstimateOffload(costs, all, tier, 0.0);
  EXPECT_EQ(est.device_peak_bytes, 4000);  // largest single cache
  EXPECT_EQ(est.transferred_bytes, 2 * 10000);
  EXPECT_DOUBLE_EQ(est.transfer_seconds, 2e-5);
  EXPECT_DOUBLE_EQ(est.overhead_seconds, 2e-5);
}

TEST(OffloadTest, OverlapHidesTransfersBehindCompute) {
  std::vector<LayerMemCost> costs(2);
  costs[0].cached_bytes = 1000000;
  costs[1].cached_bytes = 1000000;
  std::vector<bool> all(2, true);
  SlowTier tier{1e9, 0.0};  // 4 ms of transfers
  OffloadEstimate slow = EstimateOffload(costs, all, tier, 0.001);
  OffloadEstimate hidden = EstimateOffload(costs, all, tier, 0.01);
  EXPECT_GT(slow.overhead_seconds, 0.0);
  EXPECT_DOUBLE_EQ(hidden.overhead_seconds, 0.0);
}

TEST(OffloadTest, ChooseOffloadSetFitsBudget) {
  std::vector<LayerMemCost> costs(5);
  for (size_t i = 0; i < 5; ++i) {
    costs[i].cached_bytes = 1000 * static_cast<int64_t>(i + 1);
  }
  // Total 15000. Budget 8000 requires offloading some layers.
  auto set = ChooseOffloadSet(costs, 8000);
  ASSERT_TRUE(set.ok());
  SlowTier tier;
  OffloadEstimate est = EstimateOffload(costs, *set, tier, 0.0);
  EXPECT_LE(est.device_peak_bytes, 8000);
  // Largest-first: layer 4 (5000) must be offloaded.
  EXPECT_TRUE((*set)[4]);
}

TEST(OffloadTest, ImpossibleBudgetFails) {
  std::vector<LayerMemCost> costs(3);
  for (auto& c : costs) c.cached_bytes = 10000;
  // Staging buffer alone (10000) exceeds the budget.
  EXPECT_FALSE(ChooseOffloadSet(costs, 5000).ok());
}

TEST(OffloadTest, BudgetSweepIsMonotoneInOverhead) {
  // Tighter budgets can only increase transferred bytes.
  std::vector<LayerMemCost> costs(8);
  for (size_t i = 0; i < 8; ++i) {
    costs[i].cached_bytes = 500 * static_cast<int64_t>(i + 1);
  }
  SlowTier tier;
  int64_t prev_transfer = -1;
  for (int64_t budget : {18000, 12000, 8000, 5000}) {
    auto set = ChooseOffloadSet(costs, budget);
    ASSERT_TRUE(set.ok()) << "budget " << budget;
    OffloadEstimate est = EstimateOffload(costs, *set, tier, 0.0);
    if (prev_transfer >= 0) {
      EXPECT_GE(est.transferred_bytes, prev_transfer);
    }
    prev_transfer = est.transferred_bytes;
  }
}

}  // namespace
}  // namespace dlsys
