// Tests for the CPU execution runtime (src/runtime): ParallelFor coverage,
// bitwise determinism of the blocked GEMM/conv kernels across thread
// counts, parity with the retained naive references, and end-to-end
// training-loss reproducibility under threading.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/data/synthetic.h"
#include "src/nn/conv.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"
#include "src/runtime/runtime.h"
#include "src/tensor/ops.h"

namespace dlsys {
namespace {

/// Bitwise equality of two tensors (distinguishes -0.0 from +0.0 and
/// compares NaN payloads, unlike operator==).
bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.bytes())) == 0;
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  RuntimeConfig::SetThreads(8);
  for (int64_t total : {0, 1, 7, 64, 1000, 4097}) {
    for (int64_t grain : {1, 3, 64}) {
      std::vector<int> counts(static_cast<size_t>(total), 0);
      ParallelFor(0, total, grain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          counts[static_cast<size_t>(i)] += 1;
        }
      });
      for (int64_t i = 0; i < total; ++i) {
        ASSERT_EQ(counts[static_cast<size_t>(i)], 1)
            << "index " << i << " total " << total << " grain " << grain;
      }
    }
  }
}

TEST(ParallelForTest, NonZeroBeginIsCoveredExactly) {
  RuntimeConfig::SetThreads(4);
  std::vector<int> counts(100, 0);
  ParallelFor(25, 90, 4, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) counts[static_cast<size_t>(i)] += 1;
  });
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(counts[static_cast<size_t>(i)], (i >= 25 && i < 90) ? 1 : 0);
  }
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  RuntimeConfig::SetThreads(4);
  std::vector<int> counts(64 * 16, 0);
  ParallelFor(0, 64, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      ParallelFor(0, 16, 1, [&](int64_t jlo, int64_t jhi) {
        for (int64_t j = jlo; j < jhi; ++j) {
          counts[static_cast<size_t>(i * 16 + j)] += 1;
        }
      });
    }
  });
  for (int v : counts) EXPECT_EQ(v, 1);
}

TEST(RuntimeConfigTest, SetThreadsClampsToOne) {
  RuntimeConfig::SetThreads(0);
  EXPECT_EQ(RuntimeConfig::Threads(), 1);
  RuntimeConfig::SetThreads(-3);
  EXPECT_EQ(RuntimeConfig::Threads(), 1);
  RuntimeConfig::SetThreads(2);
  EXPECT_EQ(RuntimeConfig::Threads(), 2);
  RuntimeConfig::SetThreads(1);
}

/// Runs all three GEMM variants at the given thread count.
struct GemmOutputs {
  Tensor c, c_ta, c_tb;
};

GemmOutputs RunGemms(const Tensor& a, const Tensor& b, const Tensor& at,
                     const Tensor& bt, int threads) {
  RuntimeConfig::SetThreads(threads);
  GemmOutputs out;
  out.c = MatMul(a, b);
  out.c_ta = MatMulTransA(at, b);
  out.c_tb = MatMulTransB(a, bt);
  RuntimeConfig::SetThreads(1);
  return out;
}

TEST(GemmDeterminismTest, BitwiseIdenticalAcrossThreadCountsAndToNaive) {
  Rng rng(11);
  // Deliberately awkward extents: odd sizes exercise the edge-tile paths.
  const int64_t m = 123, k = 77, n = 45;
  Tensor a({m, k}), b({k, n});
  a.FillGaussian(&rng, 1.0f);
  b.FillGaussian(&rng, 1.0f);
  Tensor at = Transpose(a);  // (k, m) for MatMulTransA
  Tensor bt = Transpose(b);  // (n, k) for MatMulTransB

  const Tensor ref = NaiveMatMul(a, b);
  const Tensor ref_ta = NaiveMatMulTransA(at, b);
  const Tensor ref_tb = NaiveMatMulTransB(a, bt);

  for (int threads : {1, 2, 8}) {
    GemmOutputs out = RunGemms(a, b, at, bt, threads);
    EXPECT_TRUE(BitwiseEqual(out.c, ref)) << "MatMul threads=" << threads;
    EXPECT_TRUE(BitwiseEqual(out.c_ta, ref_ta))
        << "MatMulTransA threads=" << threads;
    EXPECT_TRUE(BitwiseEqual(out.c_tb, ref_tb))
        << "MatMulTransB threads=" << threads;
  }
}

TEST(GemmDeterminismTest, LargeSquareMatchesNaive) {
  Rng rng(12);
  Tensor a({256, 256}), b({256, 256});
  a.FillGaussian(&rng, 1.0f);
  b.FillGaussian(&rng, 1.0f);
  const Tensor ref = NaiveMatMul(a, b);
  for (int threads : {1, 4}) {
    RuntimeConfig::SetThreads(threads);
    EXPECT_TRUE(BitwiseEqual(MatMul(a, b), ref)) << "threads=" << threads;
  }
  RuntimeConfig::SetThreads(1);
}

/// The seed repo's Conv2D forward loop nest, retained as the naive
/// reference: same accumulation order as the runtime-dispatched kernel.
Tensor NaiveConvForward(const Tensor& x, const Tensor& w, const Tensor& bias,
                        int64_t stride, int64_t pad) {
  const int64_t n = x.dim(0), in_ch = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int64_t out_ch = w.dim(0), kernel = w.dim(2);
  const int64_t ho = (h + 2 * pad - kernel) / stride + 1;
  const int64_t wo = (wd + 2 * pad - kernel) / stride + 1;
  Tensor y({n, out_ch, ho, wo});
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t oc = 0; oc < out_ch; ++oc) {
      for (int64_t oy = 0; oy < ho; ++oy) {
        for (int64_t ox = 0; ox < wo; ++ox) {
          double acc = bias[oc];
          const int64_t iy0 = oy * stride - pad;
          const int64_t ix0 = ox * stride - pad;
          for (int64_t ic = 0; ic < in_ch; ++ic) {
            for (int64_t ky = 0; ky < kernel; ++ky) {
              const int64_t iy = iy0 + ky;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kernel; ++kx) {
                const int64_t ix = ix0 + kx;
                if (ix < 0 || ix >= wd) continue;
                acc += x[((img * in_ch + ic) * h + iy) * wd + ix] *
                       w[((oc * in_ch + ic) * kernel + ky) * kernel + kx];
              }
            }
          }
          y[((img * out_ch + oc) * ho + oy) * wo + ox] =
              static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

TEST(ConvDeterminismTest, BitwiseIdenticalAcrossThreadCountsAndToNaive) {
  Rng rng(13);
  Conv2D conv(5, 7, 3, 1, 1);
  conv.Init(&rng);
  Tensor x({3, 5, 9, 9});
  x.FillGaussian(&rng, 1.0f);
  std::vector<Tensor*> params = conv.Params();  // {weights, bias}
  const Tensor ref = NaiveConvForward(x, *params[0], *params[1],
                                      /*stride=*/1, /*pad=*/1);
  for (int threads : {1, 2, 8}) {
    RuntimeConfig::SetThreads(threads);
    Tensor y = conv.Forward(x, CacheMode::kNoCache);
    EXPECT_TRUE(BitwiseEqual(y, ref)) << "threads=" << threads;
  }
  RuntimeConfig::SetThreads(1);
}

/// The seed repo's fused serial Conv2D backward loop nest, retained as the
/// reference for the three-pass parallel implementation.
struct ConvGrads {
  Tensor dx, dw, db;
};

ConvGrads NaiveConvBackward(const Tensor& x, const Tensor& w,
                            const Tensor& grad, int64_t stride, int64_t pad) {
  const int64_t n = x.dim(0), in_ch = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int64_t out_ch = w.dim(0), kernel = w.dim(2);
  const int64_t ho = grad.dim(2), wo = grad.dim(3);
  ConvGrads out{Tensor(x.shape()), Tensor(w.shape()), Tensor({out_ch})};
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t oc = 0; oc < out_ch; ++oc) {
      for (int64_t oy = 0; oy < ho; ++oy) {
        for (int64_t ox = 0; ox < wo; ++ox) {
          const float g = grad[((img * out_ch + oc) * ho + oy) * wo + ox];
          if (g == 0.0f) continue;
          out.db[oc] += g;
          const int64_t iy0 = oy * stride - pad;
          const int64_t ix0 = ox * stride - pad;
          for (int64_t ic = 0; ic < in_ch; ++ic) {
            for (int64_t ky = 0; ky < kernel; ++ky) {
              const int64_t iy = iy0 + ky;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kernel; ++kx) {
                const int64_t ix = ix0 + kx;
                if (ix < 0 || ix >= wd) continue;
                const int64_t xi = ((img * in_ch + ic) * h + iy) * wd + ix;
                const int64_t wi =
                    ((oc * in_ch + ic) * kernel + ky) * kernel + kx;
                out.dw[wi] += g * x[xi];
                out.dx[xi] += g * w[wi];
              }
            }
          }
        }
      }
    }
  }
  return out;
}

TEST(ConvDeterminismTest, BackwardBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(14);
  Conv2D conv(4, 6, 3, 1, 1);
  conv.Init(&rng);
  Tensor x({2, 4, 8, 8});
  x.FillGaussian(&rng, 1.0f);
  Tensor grad({2, 6, 8, 8});
  grad.FillGaussian(&rng, 1.0f);
  // Roughly half the gradient zeroed, as a ReLU upstream would leave it:
  // this exercises the g == 0 skip the parallel passes must preserve.
  for (int64_t i = 0; i < grad.size(); i += 2) grad[i] = 0.0f;

  std::vector<Tensor*> params = conv.Params();  // {weights, bias}
  const ConvGrads ref =
      NaiveConvBackward(x, *params[0], grad, /*stride=*/1, /*pad=*/1);

  for (int threads : {1, 2, 8}) {
    RuntimeConfig::SetThreads(threads);
    conv.ZeroGrads();
    conv.Forward(x, CacheMode::kCache);
    Tensor dx = conv.Backward(grad);
    std::vector<Tensor*> grads = conv.Grads();  // {dw, db}
    EXPECT_TRUE(BitwiseEqual(dx, ref.dx)) << "dx threads=" << threads;
    EXPECT_TRUE(BitwiseEqual(*grads[0], ref.dw)) << "dw threads=" << threads;
    EXPECT_TRUE(BitwiseEqual(*grads[1], ref.db)) << "db threads=" << threads;
  }
  RuntimeConfig::SetThreads(1);
}

TEST(PoolDeterminismTest, BackwardBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(15);
  Tensor x({3, 4, 8, 8});
  x.FillGaussian(&rng, 1.0f);
  Tensor grad({3, 4, 4, 4});
  grad.FillGaussian(&rng, 1.0f);

  // Serial reference scatter: recompute each window argmax (first-maximum
  // tie break, as the forward pass records) and add the gradient there.
  const int64_t n = 3, c = 4, h = 8, w = 8, window = 2, ho = 4, wo = 4;
  Tensor ref(x.shape());
  for (int64_t t = 0; t < n * c; ++t) {
    for (int64_t oy = 0; oy < ho; ++oy) {
      for (int64_t ox = 0; ox < wo; ++ox) {
        float best = x[t * h * w + oy * window * w + ox * window];
        int64_t best_idx = t * h * w + oy * window * w + ox * window;
        for (int64_t ky = 0; ky < window; ++ky) {
          for (int64_t kx = 0; kx < window; ++kx) {
            const int64_t xi =
                t * h * w + (oy * window + ky) * w + ox * window + kx;
            if (x[xi] > best) {
              best = x[xi];
              best_idx = xi;
            }
          }
        }
        ref[best_idx] += grad[t * ho * wo + oy * wo + ox];
      }
    }
  }

  MaxPool2D pool(2);
  for (int threads : {1, 2, 8}) {
    RuntimeConfig::SetThreads(threads);
    pool.Forward(x, CacheMode::kCache);
    Tensor dx = pool.Backward(grad);
    EXPECT_TRUE(BitwiseEqual(dx, ref)) << "threads=" << threads;
  }
  RuntimeConfig::SetThreads(1);
}

TEST(OpsDeterminismTest, OneHotMeanRowsSliceRowsAcrossThreads) {
  Rng rng(16);
  std::vector<int64_t> labels(300);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int64_t>(i % 7);
  }
  Tensor m({137, 23});
  m.FillGaussian(&rng, 1.0f);

  RuntimeConfig::SetThreads(1);
  const Tensor onehot_ref = OneHot(labels, 7);
  const Tensor mean_ref = MeanRows(m);
  const Tensor slice_ref = SliceRows(m, 19, 101);

  for (int threads : {2, 8}) {
    RuntimeConfig::SetThreads(threads);
    EXPECT_TRUE(BitwiseEqual(OneHot(labels, 7), onehot_ref))
        << "OneHot threads=" << threads;
    EXPECT_TRUE(BitwiseEqual(MeanRows(m), mean_ref))
        << "MeanRows threads=" << threads;
    EXPECT_TRUE(BitwiseEqual(SliceRows(m, 19, 101), slice_ref))
        << "SliceRows threads=" << threads;
  }
  RuntimeConfig::SetThreads(1);
}

/// Trains a small MLP for 5 epochs at the given thread count and returns
/// the final loss.
double TrainFinalLoss(int threads) {
  RuntimeConfig::SetThreads(threads);
  Rng rng(21);
  Dataset data = MakeGaussianBlobs(512, 16, 4, 2.5, &rng);
  Sequential net = MakeMlp(16, {32}, 4);
  Rng init_rng(22);
  net.Init(&init_rng);
  Sgd opt(0.05, 0.9);
  TrainConfig config;
  config.epochs = 5;
  config.batch_size = 32;
  MetricsReport report = Train(&net, &opt, data, config);
  RuntimeConfig::SetThreads(1);
  return report.Get(metric::kLoss);
}

TEST(TrainingDeterminismTest, FiveEpochFinalLossIdenticalAcrossThreads) {
  const double loss1 = TrainFinalLoss(1);
  const double loss8 = TrainFinalLoss(8);
  EXPECT_GT(loss1, 0.0);
  // Exact double equality: the runtime's static partitioning makes every
  // kernel bitwise reproducible, so the whole training trajectory is too.
  EXPECT_EQ(loss1, loss8);
}

}  // namespace
}  // namespace dlsys
